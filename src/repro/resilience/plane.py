"""The resilience plane: breakers + degradation ladder, as one object.

:class:`ResiliencePlane` bundles what the serving stack consults on
every request — one :class:`~repro.resilience.breaker.TierBreaker` per
guarded tier (``pool``, ``cascade``, ``diff``) and one
:class:`~repro.resilience.degrade.DegradationController` — plus the
counters a run reports through
:class:`~repro.serve.metrics.ServeStats` (``stats.resilience`` is the
plane itself, the same live-attachment idiom the cascade and diff
stats use).

The plane is deliberately stateful-across-runs, like the cascade's
rule cache: a fleet replay shares one plane across epochs so breakers
tripped at the peak stay tripped into the next epoch.  It is off by
default; :func:`resolve_resilience` turns it on for chaos replays and
under the ``PERCIVAL_RESILIENCE`` knob, so the plain serving path
stays bit-identical to the pre-resilience stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.resilience.breaker import BreakerSettings, TierBreaker
from repro.resilience.chaos import ChaosEvent
from repro.resilience.degrade import DegradationController, LadderSettings

#: tiers guarded by a circuit breaker (memo stays unguarded: a dict
#: probe has no failure mode worth a breaker in front of it)
GUARDED_TIERS = ("pool", "cascade", "diff")


class ResiliencePlane:
    """Per-tier breakers, the brownout ladder, and their accounting."""

    def __init__(
        self,
        breaker_settings: Optional[BreakerSettings] = None,
        ladder: "LadderSettings | DegradationController | None" = None,
    ) -> None:
        self.breakers: Dict[str, TierBreaker] = {
            tier: TierBreaker(tier, breaker_settings)
            for tier in GUARDED_TIERS
        }
        if isinstance(ladder, DegradationController):
            self.controller = ladder
        else:
            self.controller = DegradationController(ladder)
        #: chaos events observed firing during runs on this plane
        self.chaos_injected = 0
        self.chaos_faults: List[str] = []
        #: tier calls that raised and were absorbed (breaker food)
        self.tier_errors = 0
        #: requests shed by the ladder (drop-below-fold / shed levels),
        #: a subset of the ledger's ``shed`` column
        self.degraded_sheds = 0
        #: flushes routed in-process because the pool breaker was open
        self.pool_bypassed = 0
        #: flushes whose compute raised and settled as explicit failures
        self.failed_batches = 0

    def rebase(self, now_ms: float) -> None:
        """Re-anchor breaker cooldowns and the ladder dwell clock at
        the start of a run whose virtual clock restarted (each fleet
        epoch begins at zero; the plane carries over)."""
        for breaker in self.breakers.values():
            breaker.rebase(now_ms)
        self.controller.rebase(now_ms)

    def note_chaos(self, fired: List[ChaosEvent]) -> None:
        self.chaos_injected += len(fired)
        self.chaos_faults.extend(event.fault for event in fired)

    def breaker_trips(self) -> int:
        return sum(breaker.trips for breaker in self.breakers.values())

    def breaker_states(self) -> Dict[str, str]:
        return {name: b.state for name, b in self.breakers.items()}

    def describe(self) -> str:
        states = ", ".join(
            f"{name}={state}" for name, state in self.breaker_states().items()
        )
        return (
            f"level={self.controller.level_name}"
            f" transitions={len(self.controller.transitions)}"
            f" breakers[{states}]"
            f" chaos={self.chaos_injected}"
            f" tier_errors={self.tier_errors}"
        )


def resolve_resilience(
    resilience: "ResiliencePlane | None | bool",
    config,
    chaos_active: bool = False,
) -> Optional[ResiliencePlane]:
    """Normalize a ``resilience=`` constructor argument.

    ``None`` defers to the environment: the ``PERCIVAL_RESILIENCE``
    knob turns the plane on, and an active chaos schedule implies it
    (a chaos replay without breakers or the ladder would just measure
    unmitigated damage).  ``False`` pins the plane off regardless — the
    bit-identical pre-resilience path.  A plane instance is used as-is
    (the fleet simulator shares one across epochs this way).
    """
    from repro.core.config import configured_resilience_enabled

    if resilience is False:
        return None
    if isinstance(resilience, ResiliencePlane):
        return resilience
    if resilience is not None:
        raise TypeError(
            "resilience must be a ResiliencePlane, None (auto),"
            " or False (off)"
        )
    if chaos_active or configured_resilience_enabled(
        getattr(config, "resilience_enabled", None)
    ):
        return ResiliencePlane()
    return None
