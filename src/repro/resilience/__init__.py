"""``repro.resilience``: fault injection, breakers, and brownouts.

The failure-domain story of the serving stack, in three deterministic
pieces (see ``docs/resilience.md``):

* :class:`ChaosSchedule` / :class:`ChaosCursor` — seeded, virtual-
  clock-driven fault injection (worker death/stall, pipe corruption,
  tier outages, publish failures, latency spikes) behind the
  ``PERCIVAL_CHAOS`` knob, with a bit-identical off-path;
* :class:`TierBreaker` — closed/open/half-open circuit breakers with
  failure-count windows and a deterministic exponential reopen
  schedule, guarding pool dispatch, cascade rule serving, and diff
  inheritance;
* :class:`DegradationController` — the SLO-driven graceful-degradation
  ladder (widen deadlines → no diff → no cascade → drop below-fold →
  shed), stepping down on breach and back up on recovery.

The standing invariant all three preserve: a fault may move *where or
whether* work happens — never the value of a served P(ad) — and the
conservation ledger (submitted = answered + shed + failed) balances
under every schedule.
"""

from repro.resilience.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerSettings,
    TierBreaker,
)
from repro.resilience.chaos import (
    FAULT_LATENCY_SPIKE,
    FAULT_PIPE_CORRUPT,
    FAULT_PUBLISH_FAIL,
    FAULT_TIER_ERROR,
    FAULT_TIER_OUTAGE,
    FAULT_WORKER_DEATH,
    FAULT_WORKER_STALL,
    FAULTS,
    ChaosCursor,
    ChaosEvent,
    ChaosInjectedError,
    ChaosSchedule,
    resolve_chaos,
)
from repro.resilience.degrade import (
    LEVELS,
    DegradationController,
    LadderSettings,
    LadderTransition,
)
from repro.resilience.plane import (
    GUARDED_TIERS,
    ResiliencePlane,
    resolve_resilience,
)

__all__ = [
    "BreakerSettings",
    "ChaosCursor",
    "ChaosEvent",
    "ChaosInjectedError",
    "ChaosSchedule",
    "DegradationController",
    "FAULTS",
    "FAULT_LATENCY_SPIKE",
    "FAULT_PIPE_CORRUPT",
    "FAULT_PUBLISH_FAIL",
    "FAULT_TIER_ERROR",
    "FAULT_TIER_OUTAGE",
    "FAULT_WORKER_DEATH",
    "FAULT_WORKER_STALL",
    "GUARDED_TIERS",
    "LEVELS",
    "LadderSettings",
    "LadderTransition",
    "ResiliencePlane",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "TierBreaker",
    "resolve_chaos",
    "resolve_resilience",
]
