"""Per-tier circuit breakers for the serving stack.

A :class:`TierBreaker` sits in front of one speed tier (the worker
pool, the cascade's rule serving, the differ's snapshot inheritance)
and answers one question per request: *should this tier be consulted
right now?*  The classic three-state machine:

* **closed** — the tier serves; the breaker keeps a rolling window of
  the last ``window`` outcomes and trips **open** when
  ``trip_failures`` of them failed.
* **open** — the tier is skipped outright (callers take the next tier
  down, which every tier has by construction: the serve stack's
  bit-identical off-paths are exactly the fallback).  After
  ``cooldown_ms`` the breaker moves to half-open.
* **half-open** — exactly one probe request is admitted.  Success
  closes the breaker (window cleared, cooldown reset); failure reopens
  it with the cooldown doubled, up to ``max_cooldown_ms`` — a
  deterministic exponential reopen schedule, no jitter.

Like :class:`~repro.serve.queue.BatchQueue`, the breaker never reads a
wall clock: every method takes ``now_ms`` explicitly, so the
virtual-clock serve loop, the asyncio front (real milliseconds), and
unit tests all drive the same deterministic state machine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerSettings:
    """Failure-window and reopen-schedule knobs of one breaker."""

    #: rolling outcome window the trip condition is evaluated over
    window: int = 16
    #: failures inside the window that trip the breaker open
    trip_failures: int = 4
    #: how long an open breaker rejects before probing, initially
    cooldown_ms: float = 50.0
    #: cooldown multiplier after each failed half-open probe
    cooldown_backoff: float = 2.0
    #: ceiling of the exponential reopen schedule
    max_cooldown_ms: float = 1000.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 1 <= self.trip_failures <= self.window:
            raise ValueError("need 1 <= trip_failures <= window")
        if self.cooldown_ms <= 0:
            raise ValueError("cooldown_ms must be > 0")
        if self.cooldown_backoff < 1.0:
            raise ValueError("cooldown_backoff must be >= 1")
        if self.max_cooldown_ms < self.cooldown_ms:
            raise ValueError("max_cooldown_ms must be >= cooldown_ms")


class TierBreaker:
    """Closed/open/half-open breaker over explicit virtual time."""

    def __init__(
        self, name: str, settings: BreakerSettings | None = None
    ) -> None:
        self.name = name
        self.settings = settings or BreakerSettings()
        self._window: Deque[bool] = deque(maxlen=self.settings.window)
        self._state = STATE_CLOSED
        self._opened_at_ms = 0.0
        self._cooldown_ms = self.settings.cooldown_ms
        self._probe_in_flight = False
        #: times the breaker tripped closed -> open or reopened after a
        #: failed probe
        self.trips = 0
        #: half-open probe requests admitted
        self.probes = 0
        #: requests rejected while open (or while a probe was in flight)
        self.rejections = 0
        self.successes = 0
        self.failures = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """The *recorded* state; ``allow`` transitions open -> half-open
        lazily when the cooldown has elapsed."""
        return self._state

    @property
    def cooldown_ms(self) -> float:
        """Current reopen cooldown (doubles per failed probe)."""
        return self._cooldown_ms

    def reopen_at_ms(self) -> float | None:
        """Virtual time the next half-open probe becomes admissible, or
        ``None`` unless the breaker is open."""
        if self._state != STATE_OPEN:
            return None
        return self._opened_at_ms + self._cooldown_ms

    def peek(self, now_ms: float) -> bool:
        """Would ``allow`` admit at ``now_ms``?  Non-mutating: no state
        transition, no probe claimed, no rejection counted — for
        callers gating side-channel work (feedback writes) that must
        not consume the half-open probe."""
        if self._state == STATE_CLOSED:
            return True
        if self._state == STATE_OPEN:
            return now_ms - self._opened_at_ms >= self._cooldown_ms
        return not self._probe_in_flight

    def rebase(self, now_ms: float) -> None:
        """Clamp the open-state anchor for a clock that restarted (a
        plane shared across fleet epochs: each epoch's virtual clock
        begins at zero again).  An open breaker's cooldown restarts at
        ``now_ms``; closed/half-open states carry over unchanged."""
        if self._state == STATE_OPEN:
            self._opened_at_ms = min(self._opened_at_ms, now_ms)

    # ------------------------------------------------------------------
    # The gate
    # ------------------------------------------------------------------
    def allow(self, now_ms: float) -> bool:
        """May the tier be consulted at ``now_ms``?

        Closed always admits.  Open rejects until the cooldown elapses,
        then flips half-open and admits exactly one probe; while that
        probe's outcome is unrecorded, everything else is rejected.
        """
        if self._state == STATE_CLOSED:
            return True
        if self._state == STATE_OPEN:
            if now_ms - self._opened_at_ms < self._cooldown_ms:
                self.rejections += 1
                return False
            self._state = STATE_HALF_OPEN
            self._probe_in_flight = False
        if self._probe_in_flight:
            self.rejections += 1
            return False
        self._probe_in_flight = True
        self.probes += 1
        return True

    def record(self, now_ms: float, ok: bool) -> None:
        """Record the outcome of one admitted tier call."""
        if ok:
            self.successes += 1
        else:
            self.failures += 1
        if self._state == STATE_HALF_OPEN and self._probe_in_flight:
            self._probe_in_flight = False
            if ok:
                self._state = STATE_CLOSED
                self._window.clear()
                self._cooldown_ms = self.settings.cooldown_ms
            else:
                self._reopen(now_ms, escalate=True)
            return
        if self._state != STATE_CLOSED:
            # an outcome from a call admitted before the trip; it may
            # not flap the state machine
            return
        self._window.append(ok)
        if self._window.count(False) >= self.settings.trip_failures:
            self._reopen(now_ms, escalate=False)

    def _reopen(self, now_ms: float, escalate: bool) -> None:
        self._state = STATE_OPEN
        self._opened_at_ms = now_ms
        self.trips += 1
        if escalate:
            self._cooldown_ms = min(
                self._cooldown_ms * self.settings.cooldown_backoff,
                self.settings.max_cooldown_ms,
            )
        self._window.clear()
