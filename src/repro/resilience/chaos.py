"""Deterministic fault injection for the serving stack.

A :class:`ChaosSchedule` is an immutable, time-sorted list of
:class:`ChaosEvent`\\ s — *planned* faults at virtual ticks, in the
same discrete-event style the serve loop itself runs on.  A schedule is
pure data; each replay obtains a fresh :class:`ChaosCursor` that walks
the events as the clock advances and applies them:

===============  =======================================================
fault            effect when fired
===============  =======================================================
worker-death     arms one pool worker to exit the next time it receives
                 a sub-batch — the parent sees EOF *mid-gather*, raises
                 ``WorkerPoolError``, and the blocker falls back
                 in-process (the deterministic mid-batch kill)
worker-stall     arms one worker to sleep past the pool timeout before
                 replying (slow-worker timeout path)
pipe-corrupt     makes one worker emit an unsolicited reply, so the
                 parent's next gather is out-of-sync and discards it
publish-fail     the pool's next weight publication raises, and its
                 published fingerprint reads unpublished until then
tier-outage      the named tier (``diff``/``cascade``/``memo``) answers
                 nothing for ``duration_ms`` from the event's tick
tier-error       the named tier's next serving call raises
                 :class:`ChaosInjectedError` (breaker food)
latency-spike    batch compute cost is multiplied by ``magnitude`` for
                 ``duration_ms`` from the event's tick
===============  =======================================================

None of these can change a served P(ad): pool faults reroute the same
batch through the in-process reference path, tier faults skip a cache
in front of that path, and latency spikes scale virtual time only.
What they *do* change is where work happens, when it completes, and —
through the degradation ladder — whether low-priority work is shed,
all of which the conservation ledger accounts for explicitly.

Durations and spike windows anchor on the event's ``at_ms``, not on
the moment the cursor happens to observe it, so a clock that jumps
straight past a short outage correctly sees it already expired.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

FAULT_WORKER_DEATH = "worker-death"
FAULT_WORKER_STALL = "worker-stall"
FAULT_PIPE_CORRUPT = "pipe-corrupt"
FAULT_PUBLISH_FAIL = "publish-fail"
FAULT_TIER_OUTAGE = "tier-outage"
FAULT_TIER_ERROR = "tier-error"
FAULT_LATENCY_SPIKE = "latency-spike"

FAULTS = frozenset(
    {
        FAULT_WORKER_DEATH,
        FAULT_WORKER_STALL,
        FAULT_PIPE_CORRUPT,
        FAULT_PUBLISH_FAIL,
        FAULT_TIER_OUTAGE,
        FAULT_TIER_ERROR,
        FAULT_LATENCY_SPIKE,
    }
)

#: tiers a tier-outage / tier-error may target
TIER_TARGETS = ("diff", "cascade", "memo")


class ChaosInjectedError(RuntimeError):
    """A deliberately injected tier failure (never a real defect)."""


@dataclass(frozen=True)
class ChaosEvent:
    """One planned fault at a virtual tick."""

    at_ms: float
    fault: str
    #: fault-specific: a tier name for tier faults, a worker index
    #: (as a string) for pool faults, unused otherwise
    target: str = ""
    #: window length for tier-outage / latency-spike
    duration_ms: float = 0.0
    #: compute-cost multiplier for latency-spike
    magnitude: float = 4.0

    def __post_init__(self) -> None:
        if self.fault not in FAULTS:
            raise ValueError(f"unknown chaos fault {self.fault!r}")
        if self.at_ms < 0:
            raise ValueError("at_ms must be >= 0")
        if self.duration_ms < 0:
            raise ValueError("duration_ms must be >= 0")
        if self.magnitude <= 0:
            raise ValueError("magnitude must be > 0")
        if self.fault in (FAULT_TIER_OUTAGE, FAULT_TIER_ERROR):
            if self.target not in TIER_TARGETS:
                raise ValueError(
                    f"{self.fault} target must be one of {TIER_TARGETS},"
                    f" got {self.target!r}"
                )

    @property
    def worker_index(self) -> int:
        """Pool-fault worker index (defaults to worker 0)."""
        try:
            return int(self.target or 0)
        except ValueError:
            return 0

    def describe(self) -> str:
        parts = [f"t={self.at_ms:g}ms {self.fault}"]
        if self.target:
            parts.append(f"target={self.target}")
        if self.duration_ms:
            parts.append(f"for {self.duration_ms:g}ms")
        if self.fault == FAULT_LATENCY_SPIKE:
            parts.append(f"x{self.magnitude:g}")
        return " ".join(parts)


class ChaosSchedule:
    """Immutable, sorted fault plan; ``cursor()`` per replay."""

    def __init__(self, events: Sequence[ChaosEvent]) -> None:
        self.events: Tuple[ChaosEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.at_ms, e.fault, e.target))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ChaosEvent]:
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ChaosSchedule) and self.events == other.events
        )

    def __hash__(self) -> int:
        return hash(self.events)

    def cursor(self) -> "ChaosCursor":
        """A fresh per-replay walker over the schedule."""
        return ChaosCursor(self.events)

    def describe(self) -> str:
        if not self.events:
            return "chaos schedule: (empty)"
        lines = "\n".join(f"  {event.describe()}" for event in self.events)
        return f"chaos schedule ({len(self.events)} events):\n{lines}"

    @classmethod
    def seeded(
        cls,
        seed: int,
        horizon_ms: float = 160.0,
        events: int = 8,
    ) -> "ChaosSchedule":
        """A deterministic pseudo-random fault mix over ``horizon_ms``.

        The same seed always yields the same schedule — this is what
        ``PERCIVAL_CHAOS=<seed>`` resolves to, and what the CI chaos
        leg replays against fault-free goldens.
        """
        if events < 0:
            raise ValueError("events must be >= 0")
        if horizon_ms <= 0:
            raise ValueError("horizon_ms must be > 0")
        rng = random.Random(int(seed))
        faults = sorted(FAULTS)
        planned: List[ChaosEvent] = []
        for _ in range(int(events)):
            fault = rng.choice(faults)
            at_ms = round(rng.uniform(0.0, horizon_ms), 1)
            if fault in (FAULT_TIER_OUTAGE, FAULT_TIER_ERROR):
                target = rng.choice(TIER_TARGETS)
            elif fault in (
                FAULT_WORKER_DEATH,
                FAULT_WORKER_STALL,
                FAULT_PIPE_CORRUPT,
            ):
                target = str(rng.randrange(4))
            else:
                target = ""
            duration_ms = (
                round(rng.uniform(horizon_ms * 0.05, horizon_ms * 0.25), 1)
                if fault in (FAULT_TIER_OUTAGE, FAULT_LATENCY_SPIKE)
                else 0.0
            )
            magnitude = (
                round(rng.uniform(2.0, 8.0), 2)
                if fault == FAULT_LATENCY_SPIKE
                else 1.0
            )
            planned.append(
                ChaosEvent(
                    at_ms=at_ms,
                    fault=fault,
                    target=target,
                    duration_ms=duration_ms,
                    magnitude=magnitude,
                )
            )
        return cls(planned)


class ChaosCursor:
    """Walks one replay through a schedule as its clock advances.

    The serve loop folds :meth:`next_at_ms` into its discrete-event
    candidates and calls :meth:`fire_due` once per iteration, so faults
    land at their planned virtual tick even between arrivals.  Pool
    faults are applied to the attached pool immediately (armed on the
    worker, fired on its next dispatch); tier faults and spikes are
    windows/flags the loop polls via :meth:`tier_out`,
    :meth:`take_tier_error`, and :meth:`latency_multiplier`.
    """

    def __init__(self, events: Sequence[ChaosEvent]) -> None:
        self._events = tuple(events)
        self._index = 0
        #: tier -> outage end (anchored on the event's at_ms)
        self._outages: Dict[str, float] = {}
        #: armed one-shot tier errors, consumed at the next tier call
        self._armed_errors: Dict[str, int] = {}
        #: (spike end, magnitude) windows
        self._spikes: List[Tuple[float, float]] = []
        #: every event fired so far, in firing order
        self.fired: List[ChaosEvent] = []

    def next_at_ms(self) -> Optional[float]:
        if self._index >= len(self._events):
            return None
        return self._events[self._index].at_ms

    def fire_due(
        self, now_ms: float, pool: object = None
    ) -> List[ChaosEvent]:
        """Fire every event with ``at_ms <= now_ms``; returns them."""
        fired: List[ChaosEvent] = []
        while (
            self._index < len(self._events)
            and self._events[self._index].at_ms <= now_ms
        ):
            event = self._events[self._index]
            self._index += 1
            self._apply(event, pool)
            fired.append(event)
            self.fired.append(event)
        return fired

    # ------------------------------------------------------------------
    # Poll surface for the serve loop
    # ------------------------------------------------------------------
    def tier_out(self, tier: str, now_ms: float) -> bool:
        until = self._outages.get(tier)
        return until is not None and now_ms < until

    def take_tier_error(self, tier: str) -> bool:
        """Consume one armed tier error, if any."""
        armed = self._armed_errors.get(tier, 0)
        if armed <= 0:
            return False
        self._armed_errors[tier] = armed - 1
        return True

    def latency_multiplier(self, now_ms: float) -> float:
        """Compute-cost multiplier of the spikes active at ``now_ms``
        (overlapping spikes take the worst one, they do not compound)."""
        self._spikes = [s for s in self._spikes if s[0] > now_ms]
        if not self._spikes:
            return 1.0
        return max(magnitude for _, magnitude in self._spikes)

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def _apply(self, event: ChaosEvent, pool: object) -> None:
        if event.fault == FAULT_TIER_OUTAGE:
            until = event.at_ms + event.duration_ms
            self._outages[event.target] = max(
                self._outages.get(event.target, 0.0), until
            )
        elif event.fault == FAULT_TIER_ERROR:
            self._armed_errors[event.target] = (
                self._armed_errors.get(event.target, 0) + 1
            )
        elif event.fault == FAULT_LATENCY_SPIKE:
            self._spikes.append(
                (event.at_ms + event.duration_ms, event.magnitude)
            )
        elif event.fault == FAULT_WORKER_DEATH:
            arm = getattr(pool, "chaos_arm_worker_death", None)
            if arm is not None:
                arm(event.worker_index)
        elif event.fault == FAULT_WORKER_STALL:
            arm = getattr(pool, "chaos_arm_worker_stall", None)
            if arm is not None:
                arm(event.worker_index)
        elif event.fault == FAULT_PIPE_CORRUPT:
            corrupt = getattr(pool, "chaos_corrupt_pipe", None)
            if corrupt is not None:
                corrupt(event.worker_index)
        elif event.fault == FAULT_PUBLISH_FAIL:
            fail = getattr(pool, "chaos_fail_next_publish", None)
            if fail is not None:
                fail()


def resolve_chaos(
    chaos: "ChaosSchedule | None | bool",
    config,
) -> Optional[ChaosSchedule]:
    """Normalize a ``chaos=`` constructor argument.

    ``None`` defers to the ``PERCIVAL_CHAOS`` environment knob (a seed
    for :meth:`ChaosSchedule.seeded`; unset/off means no chaos — the
    bit-identical fault-free path); ``False`` pins chaos off regardless
    of the environment; a :class:`ChaosSchedule` is used as-is.
    """
    from repro.core.config import configured_chaos_seed

    if chaos is False:
        return None
    if isinstance(chaos, ChaosSchedule):
        return chaos
    if chaos is not None:
        raise TypeError(
            "chaos must be a ChaosSchedule, None (auto), or False (off)"
        )
    seed = configured_chaos_seed(getattr(config, "chaos_seed", None))
    if seed is None:
        return None
    return ChaosSchedule.seeded(seed)
