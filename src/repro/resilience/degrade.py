"""SLO-driven graceful-degradation ladder for the serve loop.

Under sustained pressure the serving stack should shed *features*
before it sheds *requests*.  :class:`DegradationController` encodes
that policy as a ladder of named brownout levels, each strictly more
austere than the one above:

========  ==================  ============================================
level     name                effect on the serve stack
========  ==================  ============================================
0         normal              everything on
1         widen-deadlines     batch deadlines scale by ``widen_factor``
                              (bigger batches, better amortization,
                              worse per-request wait)
2         no-diff             snapshot/diff tier skipped
3         no-cascade          cascade rule tier (and its audits) skipped
4         drop-below-fold     below-the-fold requests shed at admission
5         shed                every queue-bound request shed (cheap
                              tiers that survive earlier levels may
                              still answer)
========  ==================  ============================================

Stepping down is triggered by an SLO breach — the configured percentile
of recent *computed* latencies over ``slo_ms``, or explicit pressure
(queue overflow shed, breaker trip).  Stepping back up requires the
same window comfortably under ``recover_headroom * slo_ms`` with no
pressure — the two-threshold hysteresis
:class:`~repro.serve.fleet.SLOPolicy` already uses, plus a minimum
dwell per level so the ladder cannot flap within one batch.

Every injected or shed feature moves *where or whether* work happens,
never a served P(ad) — disabling a tier falls back to the next tier's
bit-identical path, and ladder sheds are explicit ledger entries.

Like the rest of the serving layer the controller is pure: all methods
take ``now_ms``, nothing reads a wall clock, and a replay of the same
observation sequence produces the same transitions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List

import numpy as np

LEVELS = (
    "normal",
    "widen-deadlines",
    "no-diff",
    "no-cascade",
    "drop-below-fold",
    "shed",
)


@dataclass(frozen=True)
class LadderSettings:
    """Breach/recovery thresholds of the degradation ladder."""

    #: total-latency SLO a computed request should meet
    slo_ms: float = 50.0
    #: percentile of the window the SLO is evaluated at
    percentile: float = 95.0
    #: rolling window of computed-request latencies
    window: int = 16
    #: samples required before the window may justify a transition
    min_samples: int = 4
    #: step up only while the percentile sits under this fraction of
    #: the SLO (hysteresis gap against flapping)
    recover_headroom: float = 0.5
    #: minimum time at a level before the next transition
    min_dwell_ms: float = 20.0
    #: deadline multiplier applied from level 1 down
    widen_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.slo_ms <= 0:
            raise ValueError("slo_ms must be > 0")
        if not 0 < self.percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if self.window < 1 or self.min_samples < 1:
            raise ValueError("window and min_samples must be >= 1")
        if not 0.0 < self.recover_headroom < 1.0:
            raise ValueError("recover_headroom must be in (0, 1)")
        if self.min_dwell_ms < 0:
            raise ValueError("min_dwell_ms must be >= 0")
        if self.widen_factor < 1.0:
            raise ValueError("widen_factor must be >= 1")


@dataclass(frozen=True)
class LadderTransition:
    """One recorded ladder step (down = degrading, up = recovering)."""

    at_ms: float
    from_level: str
    to_level: str
    reason: str

    @property
    def direction(self) -> str:
        return (
            "down"
            if LEVELS.index(self.to_level) > LEVELS.index(self.from_level)
            else "up"
        )


class DegradationController:
    """Steps the serve stack through brownout levels and back."""

    def __init__(self, settings: LadderSettings | None = None) -> None:
        self.settings = settings or LadderSettings()
        self._level = 0
        self._samples: Deque[float] = deque(maxlen=self.settings.window)
        self._entered_at_ms = 0.0
        #: when the newest window sample was seen (stamped by the next
        #: ``evaluate`` after it arrived) — the window never ages out
        #: by itself, so recency is what distinguishes live evidence
        #: from a stale snapshot of the storm
        self._last_sample_ms = float("-inf")
        self._observed = 0
        self._stamped = 0
        self._pressure_reason = ""
        self.transitions: List[LadderTransition] = []
        #: virtual ms spent at each level (closed by ``finalize``)
        self.dwell_ms: Dict[str, float] = {name: 0.0 for name in LEVELS}

    # ------------------------------------------------------------------
    # Level flags the serve loop consults
    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        return self._level

    @property
    def level_name(self) -> str:
        return LEVELS[self._level]

    @property
    def deadline_scale(self) -> float:
        return self.settings.widen_factor if self._level >= 1 else 1.0

    @property
    def diff_disabled(self) -> bool:
        return self._level >= 2

    @property
    def cascade_disabled(self) -> bool:
        return self._level >= 3

    @property
    def drop_below_fold(self) -> bool:
        return self._level >= 4

    @property
    def shed_all(self) -> bool:
        return self._level >= 5

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def observe_latency(self, total_ms: float) -> None:
        """One *computed* (lane-occupying) request's total latency.
        Tier hits answer in zero virtual time and are deliberately not
        fed here — they would dilute the window exactly when the
        compute path is drowning."""
        self._samples.append(float(total_ms))
        self._observed += 1

    def observe_pressure(self, reason: str) -> None:
        """An explicit breach signal: a queue-overflow shed, a breaker
        trip — consumed by the next ``evaluate``."""
        self._pressure_reason = reason or "pressure"

    # ------------------------------------------------------------------
    # The policy step
    # ------------------------------------------------------------------
    def evaluate(self, now_ms: float) -> bool:
        """Maybe take one ladder step at ``now_ms``; True on transition.

        Breach (pressure, or window percentile over the SLO) steps one
        level down; a comfortably healthy window — or, at a level where
        nothing computes anymore, a quiet double-dwell — steps one level
        up.  One step per call, ``min_dwell_ms`` apart.
        """
        if self._observed > self._stamped:
            # samples arrived since the last evaluate: stamp them now
            # (at most one evaluate late — deterministic either way)
            self._last_sample_ms = now_ms
            self._stamped = self._observed
        if now_ms - self._entered_at_ms < self.settings.min_dwell_ms:
            return False
        settings = self.settings
        observed = None
        if len(self._samples) >= settings.min_samples:
            observed = float(
                np.percentile(list(self._samples), settings.percentile)
            )
        pressure = self._pressure_reason
        self._pressure_reason = ""
        if self._level < len(LEVELS) - 1:
            if pressure:
                return self._step(now_ms, +1, pressure)
            if observed is not None and observed > settings.slo_ms:
                return self._step(
                    now_ms,
                    +1,
                    f"p{settings.percentile:g}={observed:.1f}ms"
                    f" > slo {settings.slo_ms:g}ms",
                )
        if self._level > 0 and not pressure:
            if (
                observed is not None
                and observed <= settings.slo_ms * settings.recover_headroom
            ):
                return self._step(
                    now_ms,
                    -1,
                    f"p{settings.percentile:g}={observed:.1f}ms"
                    f" recovered",
                )
            if (
                now_ms - self._entered_at_ms
                >= 2.0 * settings.min_dwell_ms
                and now_ms - self._last_sample_ms
                >= 2.0 * settings.min_dwell_ms
            ):
                # nothing computed at this level for two dwell periods
                # (the window is empty or stale): the only way to learn
                # whether the storm passed is to step up and let work
                # flow again
                return self._step(now_ms, -1, "idle recovery probe")
        return False

    def finalize(self, now_ms: float) -> None:
        """Close the dwell ledger at the end of a run."""
        self.dwell_ms[self.level_name] += max(
            now_ms - self._entered_at_ms, 0.0
        )
        self._entered_at_ms = now_ms

    def rebase(self, now_ms: float) -> None:
        """Re-anchor the dwell clock for a run whose virtual clock
        restarted (fleet epochs each start at zero).  The level and the
        closed dwell ledger carry over; only the anchors move."""
        self._entered_at_ms = now_ms
        self._last_sample_ms = min(self._last_sample_ms, now_ms)

    def _step(self, now_ms: float, delta: int, reason: str) -> bool:
        previous = self.level_name
        self.dwell_ms[previous] += max(now_ms - self._entered_at_ms, 0.0)
        self._level += delta
        self._entered_at_ms = now_ms
        self._samples.clear()
        self.transitions.append(
            LadderTransition(
                at_ms=now_ms,
                from_level=previous,
                to_level=self.level_name,
                reason=reason,
            )
        )
        return True
