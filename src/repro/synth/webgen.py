"""Synthetic web: sites, pages, ad slots, ad networks, and HTML markup.

This is the crawl surface for every experiment that touches "the web":

* the EasyList comparison (Figure 6/7) applies filter rules to the URLs
  and CSS classes generated here,
* the crawlers (§4.4) visit these pages and harvest images,
* the render-time evaluation (Figures 14/15) renders them through the
  browser substrate.

Pages are emitted as *actual HTML markup* and parsed by
``repro.browser.html``, so the whole pipeline exercises the same
DOM-shaped decision surface the paper's Chromium integration does.
Ground-truth ad labels live in the :class:`PageElement` records, keyed
by resource URL — never inside the markup the classifier-side code sees.

Ad-network coverage is intentionally imperfect: a configurable fraction
of networks is "known" to the synthetic EasyList and the rest is long
tail, which is what makes the CNN-vs-EasyList comparison non-trivial
(EasyList misses some ads; its CSS rules over-select some containers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.synth.adgen import AdSpec, generate_ad, random_ad_spec
from repro.synth.contentgen import ContentKind, generate_content, sample_kind
from repro.synth.languages import Language
from repro.utils.rng import derive, spawn_rng


@dataclass(frozen=True)
class AdNetwork:
    """A third-party ad network with a serving domain and path style."""

    name: str
    domain: str
    path_prefix: str
    known_to_easylist: bool


#: The synthetic ad ecosystem.  ~"known" networks are covered by the
#: generated EasyList; the rest model the long tail / new entrants.
AD_NETWORKS: Tuple[AdNetwork, ...] = (
    AdNetwork("doublevision", "ads.doublevision.test", "/serve", True),
    AdNetwork("adnexus", "cdn.adnexus.test", "/creative", True),
    AdNetwork("trackpix", "px.trackpix.test", "/banner", True),
    AdNetwork("promonet", "static.promonet.test", "/pm", True),
    AdNetwork("clickforge", "clickforge.test", "/cf/ads", True),
    AdNetwork("bannerworks", "img.bannerworks.test", "/bw", True),
    AdNetwork("sponsorly", "sponsorly.test", "/s", False),
    AdNetwork("freshads", "media.freshads.test", "/x", False),
)

#: CSS classes conventionally used by ad containers; the first group is
#: covered by the synthetic EasyList element-hiding rules, the second is
#: obfuscated (rotating class names — the Facebook trick, §5.3).
KNOWN_AD_CLASSES: Tuple[str, ...] = (
    "ad-banner", "ad-container", "adbox", "sponsored-box",
    "promo-unit", "advert", "ad-slot", "dfp-ad",
)
OBFUSCATED_AD_CLASSES: Tuple[str, ...] = (
    "x3fk2", "qq91z", "t0pbn", "_u7d2", "zz-e4",
)
CONTENT_CLASSES: Tuple[str, ...] = (
    "article-img", "hero", "avatar", "figure", "thumb",
    "media", "photo", "logo", "chart",
)

SITE_CATEGORIES: Tuple[str, ...] = (
    "news", "shopping", "blog", "sports", "tech", "entertainment",
)


@dataclass
class PageElement:
    """One DOM-visible resource on a page, with ground truth.

    ``render()`` deterministically regenerates the decoded bitmap from
    the stored seed and spec, so images never need to be held in memory
    for a whole corpus.
    """

    tag: str                      # img | iframe | div
    url: str                      # resource URL ("" for pure containers)
    css_classes: Tuple[str, ...]
    element_id: str
    width: int                    # CSS px (slot geometry)
    height: int
    is_ad: bool
    third_party: bool
    loads_late: bool              # dynamically injected; races screenshots
    seed: int
    language: Language
    ad_spec: Optional[AdSpec] = None
    content_kind: Optional[ContentKind] = None
    ad_intent: float = 0.0

    def render(self) -> np.ndarray:
        """Decode-equivalent bitmap for this element's resource."""
        rng = spawn_rng(self.seed, "element-render")
        if self.is_ad:
            if self.ad_spec is None:
                raise ValueError("ad element missing its AdSpec")
            return generate_ad(rng, self.ad_spec)
        return generate_content(
            rng, kind=self.content_kind, language=self.language,
            ad_intent=self.ad_intent,
        )


@dataclass
class Page:
    """A synthetic page: URL, markup, elements, and site metadata."""

    url: str
    site_domain: str
    category: str
    language: Language
    elements: List[PageElement]
    complexity: float  # scales scripting/style cost in the renderer

    @property
    def html(self) -> str:
        """Emit the page as HTML markup for the browser substrate."""
        parts = [
            "<html><head><title>", self.site_domain, "</title></head><body>",
            '<div class="masthead"><h1>', self.site_domain, "</h1></div>",
        ]
        for element in self.elements:
            classes = " ".join(element.css_classes)
            if element.tag == "img":
                parts.append(
                    f'<img src="{element.url}" class="{classes}" '
                    f'id="{element.element_id}" width="{element.width}" '
                    f'height="{element.height}"/>'
                )
            elif element.tag == "iframe":
                parts.append(
                    f'<iframe src="{element.url}" class="{classes}" '
                    f'id="{element.element_id}" width="{element.width}" '
                    f'height="{element.height}"></iframe>'
                )
            else:
                parts.append(
                    f'<div class="{classes}" id="{element.element_id}">'
                    f"<p>lorem synthetica</p></div>"
                )
        parts.append("</body></html>")
        return "".join(parts)

    def image_elements(self) -> List[PageElement]:
        return [e for e in self.elements if e.tag in ("img", "iframe") and e.url]

    def ad_elements(self) -> List[PageElement]:
        return [e for e in self.elements if e.is_ad]


@dataclass(frozen=True)
class Site:
    """A ranked site in the synthetic Alexa-style list."""

    rank: int
    domain: str
    category: str
    language: Language


@dataclass
class WebConfig:
    """Knobs for the synthetic web.

    ``ad_image_fraction`` and friends are calibrated so the EasyList
    match rates land near Figure 6 (20.2% of container elements match
    CSS rules; 31.1% of image requests match network rules).
    """

    seed: int = 0
    num_sites: int = 100
    images_per_page: Tuple[int, int] = (8, 28)
    containers_per_page: Tuple[int, int] = (6, 18)
    ad_image_fraction: float = 0.37
    iframe_ad_fraction: float = 0.55    # ads served through iframes
    late_load_fraction: float = 0.45    # of ads, injected after onload
    known_class_fraction: float = 0.72  # ad containers w/ recognizable class
    known_network_weight: float = 0.88  # traffic share of covered networks
    first_party_ad_fraction: float = 0.08
    ad_container_fraction: float = 0.16  # empty ad-slot divs among containers
    #: each network serves creatives from a finite campaign pool, so the
    #: same creative recurs across pages (what makes dedup and verdict
    #: memoization meaningful); 0 disables pooling.
    campaign_pool_size: int = 60
    #: per-site pool of reusable content assets (logos, CDN art) and the
    #: probability a content image is drawn from it; 0 disables reuse.
    #: Real crawls are duplicate-dominated (the paper keeps 15-20% of
    #: each phase), driven by both ad campaigns and shared site assets.
    content_pool_size: int = 0
    content_reuse_probability: float = 0.7
    language: Language = Language.ENGLISH
    language_shift: float = 0.0


class SyntheticWeb:
    """Deterministic generator for the site corpus and its pages."""

    def __init__(self, config: Optional[WebConfig] = None) -> None:
        self.config = config or WebConfig()
        self._sites = self._build_sites()

    # ------------------------------------------------------------------
    # Sites
    # ------------------------------------------------------------------
    def _build_sites(self) -> List[Site]:
        rng = spawn_rng(self.config.seed, "sites")
        sites = []
        for rank in range(1, self.config.num_sites + 1):
            category = SITE_CATEGORIES[int(rng.integers(len(SITE_CATEGORIES)))]
            sites.append(Site(
                rank=rank,
                domain=f"{category}{rank}.example",
                category=category,
                language=self.config.language,
            ))
        return sites

    def sites(self) -> List[Site]:
        return list(self._sites)

    def top_sites(self, count: int) -> List[Site]:
        return self._sites[:count]

    # ------------------------------------------------------------------
    # Pages
    # ------------------------------------------------------------------
    def build_page(self, site: Site, page_index: int = 0) -> Page:
        """Deterministically generate one page of a site."""
        seed = derive(self.config.seed, f"{site.domain}/p{page_index}")
        rng = spawn_rng(seed, "page")
        path = "/" if page_index == 0 else f"/article/{page_index}"
        elements: List[PageElement] = []

        lo, hi = self.config.images_per_page
        num_images = int(rng.integers(lo, hi + 1))
        for i in range(num_images):
            elements.append(self._image_element(site, rng, seed, i))

        lo, hi = self.config.containers_per_page
        num_divs = int(rng.integers(lo, hi + 1))
        for i in range(num_divs):
            elements.append(self._container_element(site, rng, seed, i))

        rng.shuffle(elements)  # interleave as a real page would
        return Page(
            url=f"https://{site.domain}{path}",
            site_domain=site.domain,
            category=site.category,
            language=site.language,
            elements=elements,
            complexity=float(rng.uniform(0.5, 2.0)),
        )

    def iter_pages(
        self, sites: Optional[Sequence[Site]] = None,
        pages_per_site: int = 1,
    ) -> Iterator[Page]:
        for site in (sites if sites is not None else self._sites):
            for index in range(pages_per_site):
                yield self.build_page(site, index)

    # ------------------------------------------------------------------
    # Element builders
    # ------------------------------------------------------------------
    def _image_element(
        self, site: Site, rng: np.random.Generator, page_seed: int, index: int
    ) -> PageElement:
        config = self.config
        element_seed = derive(page_seed, f"img{index}")
        is_ad = bool(rng.random() < config.ad_image_fraction)
        if is_ad:
            tag = "iframe" if rng.random() < config.iframe_ad_fraction else "img"
            if rng.random() < config.first_party_ad_fraction:
                spec = random_ad_spec(
                    rng, language=config.language,
                    language_shift=config.language_shift,
                )
                url = f"https://{site.domain}/promo/{element_seed:08x}.png"
                third_party = False
            else:
                network = self._pick_network(rng)
                # creative comes from the network's campaign pool: the
                # same (seed, spec, URL) recurs across pages and sites.
                element_seed, spec, url = self._campaign(network, rng)
                third_party = True
            width, height = spec.slot_size()
            classes = self._ad_classes(rng)
            return PageElement(
                tag=tag, url=url, css_classes=classes,
                element_id=f"el-{element_seed:08x}",
                width=width, height=height, is_ad=True,
                third_party=third_party,
                loads_late=bool(rng.random() < config.late_load_fraction),
                seed=element_seed, language=config.language, ad_spec=spec,
            )
        # Regional webs (language_shift > 0) skew toward commercial,
        # text-dense content (e-commerce-heavy portals): the paper's
        # low non-English precision comes from exactly this confusion.
        shift = config.language_shift
        if shift > 0 and rng.random() < 0.6 * shift:
            kind = (ContentKind.PRODUCT_SHOT if rng.random() < 0.6
                    else ContentKind.WIDGET)
        else:
            kind = sample_kind(rng)
        ad_intent = (float(rng.beta(1.0 + 6.0 * shift, 10.0))
                     if shift > 0 else float(rng.beta(1.0, 14.0)))
        if (
            config.content_pool_size > 0
            and rng.random() < config.content_reuse_probability
        ):
            # shared site asset: seed, kind and intent all derive from
            # the pool slot so the same URL always renders the same
            # pixels no matter which page references it
            slot = int(rng.integers(config.content_pool_size))
            element_seed = derive(
                self.config.seed, f"asset/{site.domain}/{slot}"
            )
            asset_rng = spawn_rng(element_seed, "asset-kind")
            kind = sample_kind(asset_rng)
            ad_intent = float(asset_rng.beta(1.0, 14.0))
        width = int(rng.integers(80, 640))
        height = int(rng.integers(60, 480))
        host = site.domain if rng.random() < 0.6 else f"cdn.{site.domain}"
        url = f"https://{host}/img/{element_seed:08x}.jpg"
        classes = (CONTENT_CLASSES[int(rng.integers(len(CONTENT_CLASSES)))],)
        return PageElement(
            tag="img", url=url, css_classes=classes,
            element_id=f"el-{element_seed:08x}",
            width=width, height=height, is_ad=False, third_party=False,
            loads_late=bool(rng.random() < 0.08),
            seed=element_seed, language=config.language, content_kind=kind,
            ad_intent=ad_intent,
        )

    def _container_element(
        self, site: Site, rng: np.random.Generator, page_seed: int, index: int
    ) -> PageElement:
        element_seed = derive(page_seed, f"div{index}")
        # A fraction of containers are ad-slot placeholders (the divs ad
        # scripts fill in); they carry ad classes and are what EasyList's
        # element-hiding rules over-select even when the slot stays empty.
        if rng.random() < self.config.ad_container_fraction:
            classes = self._ad_classes(rng)
        else:
            classes = (
                CONTENT_CLASSES[int(rng.integers(len(CONTENT_CLASSES)))],
            )
        return PageElement(
            tag="div", url="", css_classes=classes,
            element_id=f"c-{element_seed:08x}",
            width=int(rng.integers(100, 800)),
            height=int(rng.integers(40, 400)),
            is_ad=False, third_party=False, loads_late=False,
            seed=element_seed, language=self.config.language,
        )

    def _pick_network(self, rng: np.random.Generator) -> AdNetwork:
        """Sample an ad network, concentrating traffic on known ones."""
        known = [n for n in AD_NETWORKS if n.known_to_easylist]
        unknown = [n for n in AD_NETWORKS if not n.known_to_easylist]
        if unknown and rng.random() >= self.config.known_network_weight:
            return unknown[int(rng.integers(len(unknown)))]
        return known[int(rng.integers(len(known)))]

    def _campaign(
        self, network: AdNetwork, rng: np.random.Generator
    ) -> Tuple[int, AdSpec, str]:
        """Pick a campaign creative from the network's pool.

        Campaign popularity is heavy-tailed (a few creatives dominate),
        approximated by squaring a uniform draw.
        """
        pool = max(self.config.campaign_pool_size, 1)
        campaign = int((rng.random() ** 2) * pool)
        seed = derive(
            self.config.seed, f"campaign/{network.name}/{campaign}"
        )
        spec_rng = spawn_rng(seed, "campaign-spec")
        spec = random_ad_spec(
            spec_rng,
            language=self.config.language,
            language_shift=self.config.language_shift,
        )
        url = (
            f"https://{network.domain}{network.path_prefix}"
            f"/c{campaign:04d}_{seed:08x}.png"
        )
        return seed, spec, url

    def _ad_classes(self, rng: np.random.Generator) -> Tuple[str, ...]:
        if rng.random() < self.config.known_class_fraction:
            pool = KNOWN_AD_CLASSES
        else:
            pool = OBFUSCATED_AD_CLASSES
        return (pool[int(rng.integers(len(pool)))],)


def url_registry(pages: Sequence[Page]) -> Dict[str, PageElement]:
    """Map resource URL -> element across pages (the mock network's backing
    store; duplicate URLs keep the first binding, as a CDN would)."""
    registry: Dict[str, PageElement] = {}
    for page in pages:
        for element in page.image_elements():
            registry.setdefault(element.url, element)
    return registry
