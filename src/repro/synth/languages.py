"""Language / script models for the multilingual experiment (Figure 9).

The paper trains on English-site crawls and tests on Arabic, Spanish,
French, Korean and Chinese corpora, finding accuracy ordered roughly:

    Spanish (95.1) > French (93.9) > Arabic (81.3) > Chinese (80.4)
    > Korean (76.9)

The mechanism is distribution shift: Latin-script ads share the glyph
statistics the model trained on; Arabic shifts moderately (connected
strokes, right alignment); Hangul/CJK shift strongly (dense square
blocks that resemble image texture).  Each language here carries glyph
parameters plus a *shift* factor that additionally perturbs layout and
palette conventions away from the English training distribution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict


class Language(enum.Enum):
    """Languages used across the training and evaluation corpora."""

    ENGLISH = "english"
    SPANISH = "spanish"
    FRENCH = "french"
    GERMAN = "german"
    PORTUGUESE = "portuguese"
    ARABIC = "arabic"
    KOREAN = "korean"
    CHINESE = "chinese"


@dataclass(frozen=True)
class ScriptStyle:
    """Glyph-rendering parameters for one script family."""

    connected: bool          # Arabic-style joined strokes
    block: bool              # Hangul/CJK square blocks
    space_probability: float
    glyph_width_lo: int
    glyph_width_hi: int
    right_aligned: bool


_LATIN = ScriptStyle(
    connected=False, block=False, space_probability=0.18,
    glyph_width_lo=2, glyph_width_hi=5, right_aligned=False,
)
_ARABIC = ScriptStyle(
    connected=True, block=False, space_probability=0.10,
    glyph_width_lo=3, glyph_width_hi=7, right_aligned=True,
)
_HANGUL = ScriptStyle(
    connected=False, block=True, space_probability=0.12,
    glyph_width_lo=3, glyph_width_hi=3, right_aligned=False,
)
_CJK = ScriptStyle(
    connected=False, block=True, space_probability=0.04,
    glyph_width_lo=3, glyph_width_hi=3, right_aligned=False,
)

SCRIPT_STYLES: Dict[Language, ScriptStyle] = {
    Language.ENGLISH: _LATIN,
    Language.SPANISH: _LATIN,
    Language.FRENCH: _LATIN,
    Language.GERMAN: _LATIN,
    Language.PORTUGUESE: _LATIN,
    Language.ARABIC: _ARABIC,
    Language.KOREAN: _HANGUL,
    Language.CHINESE: _CJK,
}

#: How far each language's *ad conventions* sit from the English training
#: distribution, in [0, 1].  Drives cue attenuation and palette drift in
#: the ad generator; calibrated so the accuracy ordering of Figure 9
#: emerges from the model rather than being hard-coded.
LANGUAGE_SHIFT: Dict[Language, float] = {
    Language.ENGLISH: 0.0,
    Language.SPANISH: 0.08,
    Language.FRENCH: 0.12,
    Language.GERMAN: 0.10,
    Language.PORTUGUESE: 0.15,
    Language.ARABIC: 0.52,
    Language.CHINESE: 0.62,
    Language.KOREAN: 0.80,
}


def script_style(language: Language) -> ScriptStyle:
    """Glyph style for a language (defaults to Latin)."""
    return SCRIPT_STYLES.get(language, _LATIN)


def glyph_kwargs(language: Language) -> Dict[str, object]:
    """Keyword arguments for :func:`repro.synth.drawing.glyph_row`."""
    style = script_style(language)
    return {
        "connected": style.connected,
        "block": style.block,
        "space_probability": style.space_probability,
        "glyph_width_range": (style.glyph_width_lo, style.glyph_width_hi),
    }
