"""External validation dataset, standing in for Hussain et al. (§5.1).

The paper validates its crawl+training procedure by testing on 5,024 ads
sampled from an independent, Mechanical-Turk-annotated corpus (Hussain
et al., CVPR'17) and reports accuracy 0.877 with *high recall* (0.976)
but *lower precision* (0.815).

That asymmetry has a concrete cause this generator reproduces:

* the external corpus' ads still carry the universal ad cues, so the
  model keeps finding them (high recall), but
* the corpus' non-ad portion is rich in commercial imagery (product
  photography, brand material) that triggers false positives (lower
  precision), and
* Turk annotation carries label noise.

Configuration shifts relative to the training distribution: different
slot-format mix, wider cue-strength spread, different content-kind mix,
and a few percent of flipped labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.synth.adgen import AdSpec, generate_ad, AD_SLOT_FORMATS
from repro.synth.contentgen import ContentKind, generate_content
from repro.utils.rng import derive, spawn_rng


@dataclass
class ExternalConfig:
    """Distribution-shift knobs for the external corpus."""

    seed: int = 0
    ad_fraction: float = 0.5
    label_noise: float = 0.03          # Turk disagreement rate
    #: external-corpus ads are curated *overt* creatives (the Hussain
    #: corpus collects recognizable advertisements), hence high recall
    cue_strength_beta: Tuple[float, float] = (5.0, 1.2)
    #: ... while its non-ad half is rich in commercial/brand imagery,
    #: hence the lower precision the paper reports
    commercial_nonad_fraction: float = 0.48
    nonad_ad_intent: float = 0.5


@dataclass
class ExternalSample:
    """One externally-annotated image."""

    annotated_ad: bool   # the (possibly noisy) label the corpus ships
    truly_ad: bool       # underlying generator truth
    seed: int
    cue_strength: float
    commercial: bool
    residual_intent: float = 0.4  # ad-like-ness of commercial non-ads

    def render(self) -> np.ndarray:
        rng = spawn_rng(self.seed, "external-sample")
        if self.truly_ad:
            formats = list(AD_SLOT_FORMATS)
            spec = AdSpec(
                slot_format=formats[int(rng.integers(len(formats)))],
                cue_strength=self.cue_strength,
            )
            return generate_ad(rng, spec)
        if self.commercial:
            return generate_content(
                rng, kind=ContentKind.PRODUCT_SHOT,
                ad_intent=self.residual_intent,
            )
        return generate_content(rng)


class ExternalDataset:
    """Deterministic sampler for the external corpus."""

    def __init__(self, config: ExternalConfig | None = None) -> None:
        self.config = config or ExternalConfig()

    def sample(self, count: int) -> List[ExternalSample]:
        """Draw ``count`` annotated images."""
        config = self.config
        rng = spawn_rng(config.seed, "external")
        a, b = config.cue_strength_beta
        samples: List[ExternalSample] = []
        for index in range(count):
            truly_ad = bool(rng.random() < config.ad_fraction)
            annotated = truly_ad
            if rng.random() < config.label_noise:
                annotated = not annotated
            samples.append(ExternalSample(
                annotated_ad=annotated,
                truly_ad=truly_ad,
                seed=derive(config.seed, f"ext{index}"),
                cue_strength=float(np.clip(rng.beta(a, b), 0.05, 1.0)),
                commercial=bool(
                    rng.random() < config.commercial_nonad_fraction
                ),
                residual_intent=float(
                    np.clip(rng.normal(config.nonad_ad_intent, 0.18),
                            0.0, 1.0)
                ),
            ))
        return samples
