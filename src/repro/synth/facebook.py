"""Synthetic Facebook feed (first-party ads experiment, §5.3).

The experiment's difficulty structure, reproduced here:

* **Right-column ads** are conventional display creatives — the paper
  notes "the classifier always picks out the ads in the right-columns".
  Generated at high cue strength.
* **Sponsored-in-feed posts** are styled like organic posts (Facebook's
  whole point); only the creative content is commercial.  Generated at
  *low* cue strength — the paper's main false-negative source.
* **Organic posts** are user photos/text.
* **Brand-page posts** are organic content with high "ad intent"
  (product shots, promos from pages like Dell's, Figure 11a) — the
  paper's main false-positive source.

A browsing session samples a day's worth of feed items; the evaluation
driver replays 35 days, mirroring the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.synth.adgen import AdSpec, generate_ad
from repro.synth.contentgen import ContentKind, generate_content
from repro.synth.languages import Language
from repro.utils.rng import derive, spawn_rng


@dataclass
class FeedItem:
    """One unit of feed content with its ground-truth label."""

    kind: str            # right_column_ad | sponsored_post | organic | brand_post
    is_ad: bool          # ground truth per the paper's definition (§5.3)
    seed: int
    cue_strength: float = 0.0
    ad_intent: float = 0.0

    def render(self) -> np.ndarray:
        rng = spawn_rng(self.seed, "feed-item")
        if self.kind == "right_column_ad":
            spec = AdSpec(
                slot_format="wide_skyscraper" if rng.random() < 0.5 else "square",
                cue_strength=self.cue_strength,
            )
            return generate_ad(rng, spec)
        if self.kind == "sponsored_post":
            spec = AdSpec(
                slot_format="medium_rectangle",
                cue_strength=self.cue_strength,
                first_party=True,
            )
            return generate_ad(rng, spec)
        if self.kind == "brand_post":
            return generate_content(
                rng, kind=ContentKind.PRODUCT_SHOT, ad_intent=self.ad_intent
            )
        # organic: user photos and avatars dominate
        kind = ContentKind.PHOTO if rng.random() < 0.75 else ContentKind.AVATAR
        return generate_content(rng, kind=kind, ad_intent=self.ad_intent)


@dataclass
class FeedConfig:
    """Composition of a browsing session's feed.

    Defaults give ad/non-ad volumes in the paper's ratio (354 ads vs
    1,830 non-ads over 35 days ≈ 16% ads).
    """

    seed: int = 0
    items_per_session: int = 62
    right_column_fraction: float = 0.065
    sponsored_fraction: float = 0.095
    brand_post_fraction: float = 0.08
    sponsored_cue_strength: float = 0.32
    right_column_cue_strength: float = 0.92
    brand_ad_intent: float = 0.55
    organic_ad_intent_beta: float = 18.0
    language: Language = Language.ENGLISH


class FacebookFeed:
    """Deterministic generator of daily browsing sessions."""

    def __init__(self, config: FeedConfig | None = None) -> None:
        self.config = config or FeedConfig()

    def session(self, day: int) -> List[FeedItem]:
        """Feed items for one day's browsing session."""
        config = self.config
        rng = spawn_rng(derive(config.seed, f"day{day}"), "session")
        items: List[FeedItem] = []
        for index in range(config.items_per_session):
            seed = derive(config.seed, f"day{day}/item{index}")
            roll = rng.random()
            if roll < config.right_column_fraction:
                items.append(FeedItem(
                    kind="right_column_ad", is_ad=True, seed=seed,
                    cue_strength=float(np.clip(
                        rng.normal(config.right_column_cue_strength, 0.06),
                        0.3, 1.0)),
                ))
            elif roll < config.right_column_fraction + config.sponsored_fraction:
                items.append(FeedItem(
                    kind="sponsored_post", is_ad=True, seed=seed,
                    cue_strength=float(np.clip(
                        rng.normal(config.sponsored_cue_strength, 0.12),
                        0.02, 0.9)),
                ))
            elif roll < (config.right_column_fraction
                         + config.sponsored_fraction
                         + config.brand_post_fraction):
                items.append(FeedItem(
                    kind="brand_post", is_ad=False, seed=seed,
                    ad_intent=float(np.clip(
                        rng.normal(config.brand_ad_intent, 0.15), 0.0, 1.0)),
                ))
            else:
                items.append(FeedItem(
                    kind="organic", is_ad=False, seed=seed,
                    ad_intent=float(rng.beta(1.0, config.organic_ad_intent_beta)),
                ))
        return items

    def browse(self, days: int) -> Iterator[List[FeedItem]]:
        """Yield one session per day, as in the 35-day methodology."""
        for day in range(days):
            yield self.session(day)
