"""Procedural data substrate.

The paper's experiments consume crawled web data: ad creatives, page
content, Facebook feeds, image-search results, and non-English ad
corpora.  None of that exists offline, so this package synthesizes each
distribution procedurally, with the *perceptual* structure the paper's
model keys on (Grad-CAM in Figure 4 highlights ad-choice markers, text
texture, and product outlines):

* :mod:`repro.synth.drawing` — vectorized raster primitives,
* :mod:`repro.synth.adgen` — ad creatives (AdChoices-style marker, CTA
  buttons, price flashes, borders, brand palettes),
* :mod:`repro.synth.contentgen` — non-ad content (photos, charts,
  avatars, screenshots, logos),
* :mod:`repro.synth.languages` — per-script glyph statistics so
  non-English corpora shift from the training distribution by a
  controlled amount,
* :mod:`repro.synth.webgen` — a synthetic web (sites, pages, ad slots,
  ad-network URLs, CSS classes) for the filter-list and crawler
  experiments,
* :mod:`repro.synth.facebook` — first-party feed: right-column ads,
  sponsored-in-feed posts, organic and brand-page content,
* :mod:`repro.synth.search` — query-conditioned image-search results,
* :mod:`repro.synth.external` — an out-of-distribution labelled ad
  dataset standing in for Hussain et al. (CVPR'17).

All generators are seeded and deterministic.
"""

from repro.synth.adgen import AdSpec, generate_ad, random_ad_spec
from repro.synth.contentgen import ContentKind, generate_content
from repro.synth.languages import Language, LANGUAGE_SHIFT
from repro.synth.webgen import SyntheticWeb, WebConfig, Page, PageElement
from repro.synth.facebook import FacebookFeed, FeedConfig, FeedItem
from repro.synth.search import ImageSearch, QUERY_AD_INTENT
from repro.synth.external import ExternalDataset, ExternalConfig

__all__ = [
    "AdSpec",
    "generate_ad",
    "random_ad_spec",
    "ContentKind",
    "generate_content",
    "Language",
    "LANGUAGE_SHIFT",
    "SyntheticWeb",
    "WebConfig",
    "Page",
    "PageElement",
    "FacebookFeed",
    "FeedConfig",
    "FeedItem",
    "ImageSearch",
    "QUERY_AD_INTENT",
    "ExternalDataset",
    "ExternalConfig",
]
