"""Query-conditioned image-search results (Figure 13, §5.4).

Each query carries an *ad-intent prior*: the probability that a result
image from its distribution is commercial/ad-like.  "Advertisement"
returns almost exclusively ad creatives; "Obama" almost none; product
queries ("Shoes", "iPhone", "Detergent") sit in between with a mix of
clean product photography, promo banners and editorial shots.

For queries where the paper could adjudicate ground truth (Obama,
Advertisement, Detergent, iPhone) it reports FP/FN; for the rest it
reports only blocked/rendered counts.  The generator keeps ground truth
for every image so both reporting styles are available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.synth.adgen import AdSpec, generate_ad
from repro.synth.contentgen import ContentKind, generate_content
from repro.utils.rng import derive, spawn_rng

#: Ad-intent prior per query, calibrated to the block-rate ordering of
#: Figure 13 (Advertisement 96 >> Detergent 85 > iPhone 76 > Shoes 56 >
#: Coffee 23 > Pastry 14 ~ Obama 12).
QUERY_AD_INTENT: Dict[str, float] = {
    "Obama": 0.06,
    "Advertisement": 0.97,
    "Shoes": 0.52,
    "Pastry": 0.10,
    "Coffee": 0.20,
    "Detergent": 0.82,
    "iPhone": 0.72,
}

#: Queries whose ground truth the paper adjudicated (FP/FN reported).
ADJUDICATED_QUERIES = ("Obama", "Advertisement", "Detergent", "iPhone")


@dataclass
class SearchResult:
    """One result image with ground truth."""

    query: str
    rank: int
    is_ad: bool
    seed: int
    residual_intent: float  # ad-like-ness of non-ad results

    def render(self) -> np.ndarray:
        rng = spawn_rng(self.seed, "search-result")
        if self.is_ad:
            spec = AdSpec(
                slot_format="square" if rng.random() < 0.6 else "medium_rectangle",
                cue_strength=float(np.clip(rng.beta(4.0, 1.8), 0.1, 1.0)),
            )
            return generate_ad(rng, spec)
        kind = ContentKind.PHOTO
        if rng.random() < self.residual_intent:
            kind = ContentKind.PRODUCT_SHOT
        return generate_content(rng, kind=kind,
                                ad_intent=self.residual_intent * 0.5)


class ImageSearch:
    """Deterministic search-result generator."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def results(self, query: str, count: int = 100) -> List[SearchResult]:
        """Top ``count`` result images for ``query``."""
        if query not in QUERY_AD_INTENT:
            raise KeyError(
                f"unknown query {query!r}; known: {sorted(QUERY_AD_INTENT)}"
            )
        intent = QUERY_AD_INTENT[query]
        rng = spawn_rng(derive(self.seed, f"query:{query}"), "results")
        out: List[SearchResult] = []
        for rank in range(count):
            is_ad = bool(rng.random() < intent)
            # commercial queries keep residual ad-like-ness in organics
            residual = float(rng.beta(1.0 + 4.0 * intent, 6.0))
            out.append(SearchResult(
                query=query, rank=rank, is_ad=is_ad,
                seed=derive(self.seed, f"{query}/{rank}"),
                residual_intent=residual,
            ))
        return out
