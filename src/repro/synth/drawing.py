"""Vectorized raster primitives.

Images are float32 RGBA arrays of shape (H, W, 4) in [0, 1], matching
the decoded-bitmap layout PERCIVAL reads out of the render pipeline
(Blink hands the classifier RGBA pixels; §3.3).  Alpha is 1.0 except
where a primitive explicitly writes otherwise.

Everything here is numpy-vectorized; per-image generation stays well
under a millisecond at the capped generation resolutions the experiment
drivers use.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy import ndimage

Color = Tuple[float, float, float]


def blank(height: int, width: int, color: Color = (1.0, 1.0, 1.0)) -> np.ndarray:
    """Create an opaque RGBA canvas filled with ``color``."""
    if height < 1 or width < 1:
        raise ValueError("canvas must be at least 1x1")
    img = np.empty((height, width, 4), dtype=np.float32)
    img[..., 0] = color[0]
    img[..., 1] = color[1]
    img[..., 2] = color[2]
    img[..., 3] = 1.0
    return img


def _clip_box(img: np.ndarray, x: int, y: int, w: int, h: int):
    """Clamp a box to the canvas; returns (x0, y0, x1, y1) or None."""
    height, width = img.shape[:2]
    x0, y0 = max(x, 0), max(y, 0)
    x1, y1 = min(x + w, width), min(y + h, height)
    if x0 >= x1 or y0 >= y1:
        return None
    return x0, y0, x1, y1


def fill_rect(
    img: np.ndarray, x: int, y: int, w: int, h: int, color: Color,
    alpha: float = 1.0,
) -> None:
    """Fill an axis-aligned rectangle, alpha-blended over the canvas."""
    box = _clip_box(img, x, y, w, h)
    if box is None:
        return
    x0, y0, x1, y1 = box
    region = img[y0:y1, x0:x1, :3]
    rgb = np.array(color, dtype=np.float32)
    region[...] = (1.0 - alpha) * region + alpha * rgb


def draw_border(
    img: np.ndarray, thickness: int, color: Color
) -> None:
    """Draw an inset border around the full canvas."""
    height, width = img.shape[:2]
    t = max(1, min(thickness, height // 2, width // 2))
    fill_rect(img, 0, 0, width, t, color)
    fill_rect(img, 0, height - t, width, t, color)
    fill_rect(img, 0, 0, t, height, color)
    fill_rect(img, width - t, 0, t, height, color)


def linear_gradient(
    img: np.ndarray, start: Color, end: Color, vertical: bool = True
) -> None:
    """Fill the canvas with a linear two-color gradient."""
    height, width = img.shape[:2]
    axis_len = height if vertical else width
    ramp = np.linspace(0.0, 1.0, axis_len, dtype=np.float32)
    start_arr = np.array(start, dtype=np.float32)
    end_arr = np.array(end, dtype=np.float32)
    colors = start_arr[None, :] * (1 - ramp[:, None]) + end_arr[None, :] * ramp[:, None]
    if vertical:
        img[..., :3] = colors[:, None, :]
    else:
        img[..., :3] = colors[None, :, :]


def add_noise(img: np.ndarray, rng: np.random.Generator, sigma: float) -> None:
    """Add clipped Gaussian pixel noise to the RGB channels."""
    if sigma <= 0:
        return
    noise = rng.normal(0.0, sigma, size=img.shape[:2] + (3,)).astype(np.float32)
    img[..., :3] = np.clip(img[..., :3] + noise, 0.0, 1.0)


def smooth_blobs(
    height: int,
    width: int,
    rng: np.random.Generator,
    scale: float = 4.0,
    palette: Sequence[Color] = ((0.3, 0.5, 0.3), (0.6, 0.7, 0.9)),
) -> np.ndarray:
    """Low-frequency colored field approximating a natural photo.

    White noise is blurred per channel and remapped onto a palette blend,
    giving the smooth, low-spatial-frequency statistics of photographs —
    the dominant non-ad image class in real pages.
    """
    img = blank(height, width)
    field = rng.random((height, width)).astype(np.float32)
    field = ndimage.gaussian_filter(field, sigma=scale, mode="reflect")
    span = field.max() - field.min()
    if span > 0:
        field = (field - field.min()) / span
    a = np.array(palette[0], dtype=np.float32)
    b = np.array(palette[1], dtype=np.float32)
    img[..., :3] = (
        a[None, None, :] * (1 - field[..., None])
        + b[None, None, :] * field[..., None]
    )
    return img


def draw_circle(
    img: np.ndarray, cx: int, cy: int, radius: int, color: Color,
    alpha: float = 1.0,
) -> None:
    """Fill a circle (used for avatars, logos, AdChoices marker disc)."""
    height, width = img.shape[:2]
    yy, xx = np.ogrid[:height, :width]
    mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= radius ** 2
    rgb = np.array(color, dtype=np.float32)
    img[..., :3][mask] = (1.0 - alpha) * img[..., :3][mask] + alpha * rgb


def draw_triangle(
    img: np.ndarray, x: int, y: int, size: int, color: Color
) -> None:
    """Fill a right-pointing triangle (the AdChoices arrow glyph)."""
    height, width = img.shape[:2]
    for row in range(size):
        extent = size - abs(row - size // 2) * 2
        extent = max(extent, 1)
        px_y = y + row
        if 0 <= px_y < height:
            fill_rect(img, x, px_y, extent, 1, color)


def glyph_row(
    img: np.ndarray,
    x: int,
    y: int,
    width: int,
    glyph_height: int,
    rng: np.random.Generator,
    color: Color,
    glyph_width_range: Tuple[int, int] = (2, 5),
    gap_range: Tuple[int, int] = (1, 2),
    space_probability: float = 0.18,
    space_width: int = 3,
    connected: bool = False,
    block: bool = False,
) -> None:
    """Draw one row of synthetic text.

    Scripts differ in their spatial statistics and the parameters encode
    that difference:

    * Latin — narrow variable-width glyphs with word spaces,
    * Arabic (``connected=True``) — long joined strokes, sparse spaces,
    * Hangul / CJK (``block=True``) — dense square blocks, few spaces.
    """
    cursor = x
    end = x + width
    lo, hi = glyph_width_range
    while cursor < end:
        if rng.random() < space_probability:
            cursor += space_width
            continue
        glyph_w = int(rng.integers(lo, hi + 1))
        if block:
            glyph_w = glyph_height  # square glyphs
        fill_rect(img, cursor, y, min(glyph_w, end - cursor),
                  glyph_height, color)
        if block and rng.random() < 0.6:
            # internal white stroke inside the block glyph
            fill_rect(img, cursor + 1, y + glyph_height // 2,
                      max(glyph_w - 2, 1), 1, (1.0, 1.0, 1.0))
        if connected:
            # baseline stroke joining to the next glyph
            fill_rect(img, cursor, y + glyph_height - 1,
                      glyph_w + gap_range[1], 1, color)
        cursor += glyph_w + int(rng.integers(gap_range[0], gap_range[1] + 1))


def text_block(
    img: np.ndarray,
    x: int,
    y: int,
    width: int,
    lines: int,
    rng: np.random.Generator,
    color: Color = (0.15, 0.15, 0.15),
    glyph_height: int = 3,
    line_gap: int = 2,
    **glyph_kwargs,
) -> None:
    """Draw a paragraph of synthetic text rows."""
    for line in range(lines):
        line_y = y + line * (glyph_height + line_gap)
        if line_y + glyph_height > img.shape[0]:
            break
        line_width = width if line < lines - 1 else int(width * rng.uniform(0.4, 0.9))
        glyph_row(img, x, line_y, line_width, glyph_height, rng, color,
                  **glyph_kwargs)


def adchoices_marker(img: np.ndarray, rng: np.random.Generator) -> None:
    """Stamp an AdChoices-style disclosure marker in the top-right corner.

    The real marker is a small blue arrow-in-circle icon; Figure 4 shows
    the network keying on exactly this cue.  Rendered as a white disc
    with a blue triangle, plus a thin label stroke.
    """
    height, width = img.shape[:2]
    size = max(4, min(height, width) // 12)
    cx = width - size - 1
    cy = size + 1
    draw_circle(img, cx, cy, size, (0.97, 0.97, 0.97))
    draw_circle(img, cx, cy, size, (0.0, 0.35, 0.8), alpha=0.25)
    draw_triangle(img, cx - size // 2, cy - size // 3,
                  max(size // 2 * 2, 2), (0.0, 0.35, 0.8))


def cta_button(
    img: np.ndarray,
    rng: np.random.Generator,
    color: Color = (0.85, 0.25, 0.1),
) -> None:
    """Draw a call-to-action button in the lower portion of the canvas."""
    height, width = img.shape[:2]
    btn_w = int(width * rng.uniform(0.3, 0.55))
    btn_h = max(4, int(height * rng.uniform(0.10, 0.18)))
    x = int(rng.uniform(0.1, 0.9) * (width - btn_w))
    y = int(height * rng.uniform(0.7, 0.85))
    fill_rect(img, x, y, btn_w, btn_h, color)
    glyph_row(img, x + 2, y + btn_h // 2 - 1, btn_w - 4,
              max(btn_h // 3, 1), rng, (1.0, 1.0, 1.0))


def price_flash(img: np.ndarray, rng: np.random.Generator) -> None:
    """Draw a price/discount starburst: bright disc + dense dark strokes."""
    height, width = img.shape[:2]
    radius = max(3, min(height, width) // 8)
    cx = int(rng.uniform(0.15, 0.85) * width)
    cy = int(rng.uniform(0.15, 0.5) * height)
    draw_circle(img, cx, cy, radius, (1.0, 0.85, 0.1))
    fill_rect(img, cx - radius // 2, cy - 1, radius, 2, (0.8, 0.1, 0.1))


def resize_bitmap(img: np.ndarray, height: int, width: int) -> np.ndarray:
    """Resize an RGBA bitmap with bilinear interpolation.

    Stands in for the scaling step PERCIVAL performs before inference
    ("scales it to 224x224x4", §3.3).
    """
    if img.shape[0] == height and img.shape[1] == width:
        return img.astype(np.float32, copy=True)
    zoom = (height / img.shape[0], width / img.shape[1], 1.0)
    out = ndimage.zoom(img, zoom, order=1, mode="nearest")
    # zoom can be off by one pixel on some ratios; crop/pad to exact size.
    out = out[:height, :width]
    if out.shape[0] < height or out.shape[1] < width:
        pad = ((0, height - out.shape[0]), (0, width - out.shape[1]), (0, 0))
        out = np.pad(out, pad, mode="edge")
    return np.clip(out, 0.0, 1.0).astype(np.float32)
