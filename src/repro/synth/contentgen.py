"""Non-ad content image generator.

Pages are dominated by non-ad imagery: photographs, article figures,
charts, avatars, UI screenshots and site logos.  These share *some*
features with ads (text appears in screenshots and charts; products
appear in editorial photos) but lack the ad cue combination — which is
exactly why a learned perceptual classifier beats template matching.

``ad_intent`` in [0, 1] lets a non-ad image carry increasingly ad-like
properties (commercial product shots from brand pages were the paper's
main Facebook false-positive source, Figure 11a).
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

import numpy as np

from repro.synth import drawing
from repro.synth.languages import Language, glyph_kwargs


class ContentKind(enum.Enum):
    """Non-ad content categories with distinct visual statistics."""

    PHOTO = "photo"
    CHART = "chart"
    AVATAR = "avatar"
    SCREENSHOT = "screenshot"
    LOGO = "logo"
    PRODUCT_SHOT = "product_shot"  # commercial but organic (brand pages)
    WIDGET = "widget"              # signup forms / CTAs — ad-like UI


_KIND_WEIGHTS = {
    ContentKind.PHOTO: 0.38,
    ContentKind.CHART: 0.11,
    ContentKind.AVATAR: 0.13,
    ContentKind.SCREENSHOT: 0.11,
    ContentKind.LOGO: 0.11,
    ContentKind.PRODUCT_SHOT: 0.08,
    ContentKind.WIDGET: 0.08,
}

#: Typical content image extents (before the render cap).
_SIZE_RANGES = {
    ContentKind.PHOTO: ((200, 800), (150, 600)),
    ContentKind.CHART: ((300, 640), (200, 480)),
    ContentKind.AVATAR: ((48, 160), (48, 160)),
    ContentKind.SCREENSHOT: ((320, 800), (200, 600)),
    ContentKind.LOGO: ((64, 240), (32, 120)),
    ContentKind.PRODUCT_SHOT: ((200, 600), (200, 600)),
    ContentKind.WIDGET: ((250, 500), (100, 300)),
}

MAX_RENDER_DIM = 72


def sample_kind(rng: np.random.Generator) -> ContentKind:
    kinds = list(_KIND_WEIGHTS)
    weights = np.array([_KIND_WEIGHTS[k] for k in kinds])
    return kinds[int(rng.choice(len(kinds), p=weights / weights.sum()))]


def generate_content(
    rng: np.random.Generator,
    kind: Optional[ContentKind] = None,
    language: Language = Language.ENGLISH,
    ad_intent: float = 0.0,
) -> np.ndarray:
    """Render a non-ad content image as an RGBA float bitmap."""
    if kind is None:
        kind = sample_kind(rng)
    height, width = _render_size(rng, kind)

    if kind is ContentKind.PHOTO:
        img = _photo(rng, height, width)
    elif kind is ContentKind.CHART:
        img = _chart(rng, height, width, language)
    elif kind is ContentKind.AVATAR:
        img = _avatar(rng, height, width)
    elif kind is ContentKind.SCREENSHOT:
        img = _screenshot(rng, height, width, language)
    elif kind is ContentKind.LOGO:
        img = _logo(rng, height, width)
    elif kind is ContentKind.PRODUCT_SHOT:
        img = _product_shot(rng, height, width, language)
    elif kind is ContentKind.WIDGET:
        img = _widget(rng, height, width, language)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown content kind {kind!r}")

    if ad_intent > 0:
        _blend_ad_intent(img, rng, ad_intent)
    return img


def _render_size(
    rng: np.random.Generator, kind: ContentKind
) -> Tuple[int, int]:
    (w_lo, w_hi), (h_lo, h_hi) = _SIZE_RANGES[kind]
    w = int(rng.integers(w_lo, w_hi + 1))
    h = int(rng.integers(h_lo, h_hi + 1))
    scale = min(1.0, MAX_RENDER_DIM / max(w, h))
    return max(int(h * scale), 8), max(int(w * scale), 8)


def _photo(rng: np.random.Generator, height: int, width: int) -> np.ndarray:
    palettes = [
        ((0.25, 0.45, 0.25), (0.65, 0.80, 0.95)),  # landscape
        ((0.55, 0.40, 0.30), (0.90, 0.80, 0.70)),  # portrait/indoor
        ((0.15, 0.25, 0.45), (0.60, 0.70, 0.85)),  # urban/dusk
    ]
    palette = palettes[int(rng.integers(len(palettes)))]
    img = drawing.smooth_blobs(height, width, rng,
                               scale=rng.uniform(3.0, 7.0), palette=palette)
    # a few mid-frequency details (horizon, subjects)
    for _ in range(int(rng.integers(1, 4))):
        shade = rng.uniform(0.1, 0.9)
        drawing.draw_circle(
            img,
            int(rng.uniform(0.1, 0.9) * width),
            int(rng.uniform(0.3, 0.9) * height),
            max(2, int(min(height, width) * rng.uniform(0.05, 0.15))),
            (shade, shade * 0.9, shade * 0.8),
            alpha=0.6,
        )
    drawing.add_noise(img, rng, sigma=0.02)
    return img


def _chart(
    rng: np.random.Generator, height: int, width: int, language: Language
) -> np.ndarray:
    img = drawing.blank(height, width, (0.98, 0.98, 0.98))
    # axes
    drawing.fill_rect(img, 3, height - 4, width - 6, 1, (0.2, 0.2, 0.2))
    drawing.fill_rect(img, 3, 3, 1, height - 6, (0.2, 0.2, 0.2))
    bars = int(rng.integers(4, 9))
    bar_w = max((width - 10) // bars - 1, 1)
    color = (0.2, 0.45, 0.75) if rng.random() < 0.7 else (0.8, 0.45, 0.2)
    for i in range(bars):
        bar_h = int((height - 8) * rng.uniform(0.2, 1.0))
        drawing.fill_rect(img, 5 + i * (bar_w + 1), height - 4 - bar_h,
                          bar_w, bar_h, color)
    drawing.glyph_row(img, 4, 1, width // 2, 2, rng, (0.3, 0.3, 0.3),
                      **glyph_kwargs(language))
    return img


def _avatar(rng: np.random.Generator, height: int, width: int) -> np.ndarray:
    skin = (rng.uniform(0.55, 0.95), rng.uniform(0.45, 0.8),
            rng.uniform(0.35, 0.7))
    bg = (rng.uniform(0.6, 0.95),) * 3
    img = drawing.blank(height, width, bg)
    cx, cy = width // 2, height // 2
    drawing.draw_circle(img, cx, int(cy * 0.8), min(height, width) // 4, skin)
    drawing.fill_rect(img, cx - width // 4, int(cy * 1.2), width // 2,
                      height // 3, (0.3, 0.35, 0.5))
    drawing.add_noise(img, rng, sigma=0.015)
    return img


def _screenshot(
    rng: np.random.Generator, height: int, width: int, language: Language
) -> np.ndarray:
    img = drawing.blank(height, width, (0.96, 0.96, 0.97))
    # window chrome
    drawing.fill_rect(img, 0, 0, width, max(3, height // 12),
                      (0.85, 0.86, 0.9))
    for i in range(3):
        drawing.draw_circle(img, 3 + i * 4, max(1, height // 24), 1,
                            (0.9, 0.4, 0.3))
    drawing.text_block(img, 3, height // 6, width - 6,
                       lines=int(rng.integers(3, 7)), rng=rng,
                       glyph_height=2, **glyph_kwargs(language))
    drawing.draw_border(img, 1, (0.7, 0.7, 0.7))
    return img


def _logo(rng: np.random.Generator, height: int, width: int) -> np.ndarray:
    bg = (1.0, 1.0, 1.0) if rng.random() < 0.7 else (0.1, 0.1, 0.15)
    fg = (rng.uniform(0, 0.6), rng.uniform(0, 0.6), rng.uniform(0.2, 0.9))
    img = drawing.blank(height, width, bg)
    drawing.draw_circle(img, height // 2, height // 2,
                        max(2, height // 3), fg)
    drawing.glyph_row(img, height + 2, height // 3,
                      max(width - height - 4, 4),
                      max(height // 3, 2), rng, fg)
    return img


def _product_shot(
    rng: np.random.Generator, height: int, width: int, language: Language
) -> np.ndarray:
    """Commercial product photo from a brand page: ad-like but organic."""
    img = drawing.smooth_blobs(
        height, width, rng, scale=5.0,
        palette=((0.9, 0.9, 0.92), (0.75, 0.78, 0.85)),
    )
    w = int(width * rng.uniform(0.3, 0.5))
    h = int(height * rng.uniform(0.4, 0.6))
    x = (width - w) // 2
    y = (height - h) // 2
    shade = rng.uniform(0.2, 0.6)
    drawing.fill_rect(img, x, y, w, h, (shade, shade * 0.95, shade * 1.1))
    drawing.fill_rect(img, x + 2, y + 2, max(w // 4, 1), max(h // 5, 1),
                      (0.97, 0.97, 1.0))
    drawing.glyph_row(img, x, min(y + h + 2, height - 3), w, 2, rng,
                      (0.25, 0.25, 0.25), **glyph_kwargs(language))
    return img


def _widget(
    rng: np.random.Generator, height: int, width: int, language: Language
) -> np.ndarray:
    """A site UI widget (newsletter signup, poll): text + button + border.

    Shares the CTA-button and border cues with ads — the classic false-
    positive source for perceptual blockers — but keeps flat site-chrome
    styling instead of a brand-gradient creative background.
    """
    base = rng.uniform(0.92, 0.99)
    img = drawing.blank(height, width, (base, base, base))
    drawing.text_block(img, 3, 3, width - 6, lines=int(rng.integers(1, 3)),
                       rng=rng, glyph_height=2, **glyph_kwargs(language))
    # input field
    drawing.fill_rect(img, 3, height // 2, int(width * 0.5),
                      max(height // 8, 3), (1.0, 1.0, 1.0))
    drawing.draw_border(img, 1, (0.75, 0.75, 0.78))
    if rng.random() < 0.55:
        drawing.cta_button(img, rng, color=(0.25, 0.45, 0.8))
    return img


def _blend_ad_intent(
    img: np.ndarray, rng: np.random.Generator, ad_intent: float
) -> None:
    """Layer ad-like cues onto organic content proportionally to intent."""
    if rng.random() < ad_intent * 0.8:
        drawing.cta_button(img, rng)
    if rng.random() < ad_intent * 0.5:
        drawing.price_flash(img, rng)
    if rng.random() < ad_intent * 0.35:
        drawing.draw_border(img, 1, (0.6, 0.6, 0.6))
