"""Procedural ad-creative generator.

Real display ads combine a small set of perceptual cues — the paper's
Grad-CAM analysis (Figure 4) shows the classifier keying on AdChoices
disclosure markers, text texture, and product outlines.  The generator
composes exactly those cues over IAB-standard slot geometries:

* a background (brand gradient or product photo),
* optional product object,
* headline / body text in the creative's language,
* a call-to-action button,
* optional price/discount flash,
* optional AdChoices-style disclosure marker,
* a thin creative border (display ads are conventionally bordered).

``cue_strength`` in [0, 1] scales how many cues appear and how salient
they are; Facebook sponsored-in-feed content is generated at low cue
strength, banner-network ads at high strength.  ``language_shift``
attenuates cues and drifts the palette for non-English corpora.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.synth import drawing
from repro.synth.languages import Language, glyph_kwargs, script_style

#: IAB-ish slot geometries (width, height) in CSS px and sampling weight.
AD_SLOT_FORMATS = {
    "medium_rectangle": ((300, 250), 0.32),
    "leaderboard": ((728, 90), 0.22),
    "wide_skyscraper": ((160, 600), 0.14),
    "mobile_banner": ((320, 50), 0.18),
    "square": ((250, 250), 0.08),
    "half_page": ((300, 600), 0.06),
}

#: Generation resolution cap (longest side, px). Slot geometry is kept as
#: metadata; the raster is scaled down to keep corpora memory-bounded.
MAX_RENDER_DIM = 72

#: Brand-ish palettes for creative backgrounds.
_PALETTES = [
    ((0.95, 0.35, 0.10), (1.00, 0.80, 0.30)),
    ((0.10, 0.35, 0.80), (0.55, 0.80, 1.00)),
    ((0.80, 0.10, 0.30), (1.00, 0.60, 0.70)),
    ((0.10, 0.60, 0.30), (0.70, 0.95, 0.60)),
    ((0.35, 0.10, 0.60), (0.80, 0.65, 0.95)),
]


@dataclass
class AdSpec:
    """Parameters for one ad creative."""

    slot_format: str = "medium_rectangle"
    cue_strength: float = 1.0
    language: Language = Language.ENGLISH
    language_shift: float = 0.0
    palette_index: int = 0
    has_product: bool = True
    first_party: bool = False  # served without an ad-network URL

    def slot_size(self) -> Tuple[int, int]:
        """(width, height) of the slot in CSS pixels."""
        if self.slot_format not in AD_SLOT_FORMATS:
            raise ValueError(f"unknown slot format {self.slot_format!r}")
        return AD_SLOT_FORMATS[self.slot_format][0]


def random_ad_spec(
    rng: np.random.Generator,
    language: Language = Language.ENGLISH,
    language_shift: float = 0.0,
    cue_strength: float | None = None,
) -> AdSpec:
    """Sample a creative spec with slot formats at real-world frequency."""
    names = list(AD_SLOT_FORMATS)
    weights = np.array([AD_SLOT_FORMATS[n][1] for n in names])
    slot = names[int(rng.choice(len(names), p=weights / weights.sum()))]
    if cue_strength is None:
        # most network ads are overt; a sizable tail is subtle (native-
        # style creatives), which is where classifier errors concentrate
        cue_strength = float(np.clip(rng.beta(3.2, 1.9), 0.05, 1.0))
    return AdSpec(
        slot_format=slot,
        cue_strength=cue_strength,
        language=language,
        language_shift=language_shift,
        palette_index=int(rng.integers(len(_PALETTES))),
        has_product=bool(rng.random() < 0.7),
        first_party=bool(rng.random() < 0.12),
    )


def render_size(slot_w: int, slot_h: int) -> Tuple[int, int]:
    """Raster size for a slot, capped at :data:`MAX_RENDER_DIM`."""
    longest = max(slot_w, slot_h)
    scale = min(1.0, MAX_RENDER_DIM / longest)
    return max(int(slot_h * scale), 8), max(int(slot_w * scale), 8)


#: Below this effective cue strength an ad renders "native style": the
#: creative is visually a piece of content (product photo / editorial
#: image with a caption) and only residual cues betray it.  This is the
#: irreducible overlap between the classes — native advertising — and
#: the main source of the classifier's false negatives.
NATIVE_STYLE_THRESHOLD = 0.33


def generate_ad(rng: np.random.Generator, spec: AdSpec) -> np.ndarray:
    """Render an ad creative to an RGBA float bitmap."""
    slot_w, slot_h = spec.slot_size()
    height, width = render_size(slot_w, slot_h)
    # Regional ad conventions drift from the (English) training
    # distribution: disclosure markers are rarer, layouts differ, and
    # creatives skew native — modelled as cue attenuation by shift.
    cue = float(np.clip(
        spec.cue_strength * (1.0 - 0.8 * spec.language_shift), 0.0, 1.0
    ))

    if cue < NATIVE_STYLE_THRESHOLD:
        img = _native_base(rng, height, width)
    else:
        img = _brand_creative_base(rng, spec, height, width)
        if spec.has_product:
            _draw_product(img, rng)
        _draw_ad_text(img, rng, spec)

    if rng.random() < 0.25 + 0.7 * cue:
        drawing.cta_button(img, rng)
    if rng.random() < 0.05 + 0.65 * cue:
        drawing.price_flash(img, rng)
    if rng.random() < 0.05 + 0.9 * cue:
        drawing.adchoices_marker(img, rng)
    if rng.random() < 0.1 + 0.8 * cue:
        drawing.draw_border(img, 1, (0.55, 0.55, 0.55))

    drawing.add_noise(img, rng, sigma=0.01)
    return img


def _brand_creative_base(
    rng: np.random.Generator, spec: AdSpec, height: int, width: int
) -> np.ndarray:
    """Classic display creative: brand-gradient background."""
    palette = _PALETTES[spec.palette_index % len(_PALETTES)]
    if spec.language_shift > 0:
        # drift the palette toward regional conventions
        drift = spec.language_shift * 0.4
        palette = tuple(
            tuple(np.clip(np.array(c) + rng.uniform(-drift, drift, 3), 0, 1))
            for c in palette
        )
    img = drawing.blank(height, width)
    drawing.linear_gradient(img, palette[0], palette[1],
                            vertical=bool(rng.random() < 0.5))
    return img


def _native_base(
    rng: np.random.Generator, height: int, width: int
) -> np.ndarray:
    """Native-style creative: photo or product shot with a caption.

    Deliberately rendered through the *content* generator so the pixel
    statistics genuinely overlap with organic imagery.
    """
    # imported here: contentgen imports nothing from adgen, so this
    # one-way late import avoids a module cycle.
    from repro.synth.contentgen import ContentKind, generate_content

    kind = ContentKind.PRODUCT_SHOT if rng.random() < 0.6 else ContentKind.PHOTO
    base = generate_content(rng, kind=kind)
    return drawing.resize_bitmap(base, height, width)


def _draw_product(img: np.ndarray, rng: np.random.Generator) -> None:
    """A simple product silhouette: box or disc with a highlight."""
    height, width = img.shape[:2]
    if rng.random() < 0.5:
        w = int(width * rng.uniform(0.2, 0.4))
        h = int(height * rng.uniform(0.25, 0.5))
        x = int(rng.uniform(0.05, 0.5) * width)
        y = int(rng.uniform(0.15, 0.4) * height)
        shade = rng.uniform(0.2, 0.5)
        drawing.fill_rect(img, x, y, w, h, (shade, shade, shade * 1.2))
        drawing.fill_rect(img, x + 1, y + 1, max(w // 4, 1),
                          max(h // 4, 1), (0.95, 0.95, 0.98))
    else:
        radius = max(3, int(min(height, width) * rng.uniform(0.12, 0.22)))
        cx = int(rng.uniform(0.2, 0.6) * width)
        cy = int(rng.uniform(0.3, 0.6) * height)
        shade = rng.uniform(0.2, 0.5)
        drawing.draw_circle(img, cx, cy, radius, (shade * 1.1, shade, shade))


def _draw_ad_text(
    img: np.ndarray, rng: np.random.Generator, spec: AdSpec
) -> None:
    """Headline + body copy in the creative's script."""
    height, width = img.shape[:2]
    style = script_style(spec.language)
    kwargs = glyph_kwargs(spec.language)
    margin = max(2, width // 12)
    text_x = margin
    text_w = width - 2 * margin
    if style.right_aligned:
        text_x = margin + int(text_w * 0.1)

    headline_h = max(3, height // 10)
    drawing.glyph_row(img, text_x, max(1, height // 12), int(text_w * 0.8),
                      headline_h, rng, (0.1, 0.1, 0.1), **kwargs)
    lines = 1 + int(rng.integers(0, 3))
    drawing.text_block(img, text_x, height // 3, text_w, lines, rng,
                       glyph_height=max(2, height // 18), **kwargs)
