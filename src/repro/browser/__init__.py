"""Blink-shaped browser rendering substrate.

The paper integrates PERCIVAL into Blink between the image-decode step
and the raster task (§3).  This package reproduces that pipeline shape
in Python:

``fetch -> parse (HTML->DOM) -> style/element-hiding -> layout tree ->
display list -> [decode image -> PERCIVAL hook -> raster]* on parallel
raster workers``

with Skia-analog classes (:class:`SkImage`,
:class:`DecodingImageGenerator`, :class:`BitmapImage`) practicing
deferred decoding exactly as Chromium does, toy-but-real image codecs,
and a virtual clock whose one externally-calibrated constant is the
classifier's measured inference latency.

Render time is reported as ``domComplete - domLoading`` (§5.7).
"""

from repro.browser.dom import DomNode, Document
from repro.browser.html import parse_html
from repro.browser.codecs import (
    ImageFormat,
    EncodedImage,
    encode_image,
    decode_image,
)
from repro.browser.skia import (
    SkImageInfo,
    SkImage,
    DecodingImageGenerator,
    BitmapImage,
)
from repro.browser.network import MockNetwork, NetworkConfig
from repro.browser.layout import LayoutBox, build_layout_tree
from repro.browser.display_list import DisplayItem, build_display_list
from repro.browser.raster import RasterConfig, rasterize
from repro.browser.renderer import (
    BrowserProfile,
    CHROMIUM,
    BRAVE,
    Renderer,
    RenderMetrics,
)

__all__ = [
    "DomNode",
    "Document",
    "parse_html",
    "ImageFormat",
    "EncodedImage",
    "encode_image",
    "decode_image",
    "SkImageInfo",
    "SkImage",
    "DecodingImageGenerator",
    "BitmapImage",
    "MockNetwork",
    "NetworkConfig",
    "LayoutBox",
    "build_layout_tree",
    "DisplayItem",
    "build_display_list",
    "RasterConfig",
    "rasterize",
    "BrowserProfile",
    "CHROMIUM",
    "BRAVE",
    "Renderer",
    "RenderMetrics",
]
