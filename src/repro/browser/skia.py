"""Skia/Blink analog classes (§3.3, Figure 2).

Chromium's deferred-decoding chain, mirrored one class at a time:

``BitmapImage`` creates a ``DeferredImageDecoder`` (folded into
``BitmapImage`` here), which instantiates an ``SkImage`` per encoded
frame; the ``SkImage`` owns a ``DecodingImageGenerator`` whose
``on_get_pixels()`` runs the actual decoder and fills the caller's
bitmap.  PERCIVAL is invoked with the freshly decoded buffer plus its
``SkImageInfo`` — the exact interception point of the paper — and may
clear the buffer (block) before anything downstream sees it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.browser.codecs import EncodedImage, decode_image

#: Signature of the PERCIVAL interception hook: receives the decoded
#: bitmap and its info, returns True if the frame must be blocked.
PercivalHook = Callable[[np.ndarray, "SkImageInfo"], bool]


@dataclass(frozen=True)
class SkImageInfo:
    """Image metadata passed alongside the pixel buffer (SkImageInfo)."""

    width: int
    height: int
    channels: int = 4
    color_type: str = "RGBA_8888"

    @property
    def pixel_count(self) -> int:
        return self.width * self.height


class DecodingImageGenerator:
    """Decodes an encoded frame into a caller-provided bitmap."""

    def __init__(self, encoded: EncodedImage) -> None:
        self._encoded = encoded
        self.decode_count = 0

    @property
    def info(self) -> SkImageInfo:
        return SkImageInfo(
            width=self._encoded.width, height=self._encoded.height
        )

    def on_get_pixels(
        self,
        bitmap: np.ndarray,
        percival_hook: Optional[PercivalHook] = None,
    ) -> bool:
        """Decode into ``bitmap``; run the PERCIVAL hook on the pixels.

        Returns True if the frame was blocked (buffer cleared).  The
        hook sees the unmodified decoded buffer — the property that
        defeats CSS-overlay obfuscation attacks (§3.3).
        """
        pixels = decode_image(self._encoded)
        if bitmap.shape != pixels.shape:
            raise ValueError(
                f"bitmap shape {bitmap.shape} != decoded {pixels.shape}"
            )
        bitmap[...] = pixels
        self.decode_count += 1
        if percival_hook is not None and percival_hook(bitmap, self.info):
            bitmap[...] = 0.0  # clear the buffer: the frame never paints
            return True
        return False


class SkImage:
    """Skia's encoded-image handle; decoding is deferred until raster."""

    def __init__(self, encoded: EncodedImage) -> None:
        self.generator = DecodingImageGenerator(encoded)
        self._encoded = encoded

    @property
    def info(self) -> SkImageInfo:
        return self.generator.info

    @property
    def encoded(self) -> EncodedImage:
        return self._encoded


class BitmapImage:
    """Blink's image element backing store.

    Practices deferred decoding: ``ensure_decoded`` is idempotent and
    only pays the decode (plus classification) cost once, exactly like
    Chromium's decoded-image cache.
    """

    def __init__(self, encoded: EncodedImage) -> None:
        self.sk_image = SkImage(encoded)
        self._decoded: Optional[np.ndarray] = None
        self.blocked = False

    @property
    def is_decoded(self) -> bool:
        return self._decoded is not None

    def ensure_decoded(
        self, percival_hook: Optional[PercivalHook] = None
    ) -> np.ndarray:
        """Decode (once) through the generator; returns the bitmap."""
        if self._decoded is None:
            info = self.sk_image.info
            bitmap = np.empty(
                (info.height, info.width, info.channels), dtype=np.float32
            )
            self.blocked = self.sk_image.generator.on_get_pixels(
                bitmap, percival_hook
            )
            self._decoded = bitmap
        return self._decoded

    # ------------------------------------------------------------------
    # Batched classification support (two-phase decode).
    #
    # The renderer's image-decode drain decodes a page's frames first,
    # classifies them all in one batched forward pass, then applies the
    # verdicts — instead of paying one classification per decode.  The
    # virtual-clock costs are unchanged (raster still charges decode and
    # classification on the first raster task to touch each image).
    # ------------------------------------------------------------------
    def decode_only(self) -> np.ndarray:
        """Phase one: decode without running any classification hook."""
        return self.ensure_decoded(None)

    def settle_verdict(self, blocked: bool) -> None:
        """Settle an inherited verdict *without* decoding.

        The diff layer proved this frame's encoded bytes are the ones a
        prior visit already classified, so the stored verdict applies
        sight unseen: a blocked frame materializes as a cleared buffer
        (nothing downstream ever decodes the creative), an allowed
        frame keeps deferred decoding for whenever raster needs the
        pixels — in both cases no classification hook will run.
        """
        if self._decoded is not None:
            self.apply_verdict(blocked)
            return
        if blocked:
            info = self.sk_image.info
            self._decoded = np.zeros(
                (info.height, info.width, info.channels), dtype=np.float32
            )
            self.blocked = True

    def apply_verdict(self, blocked: bool) -> None:
        """Phase two: apply a (batched) PERCIVAL verdict to the frame.

        Blocking clears the decoded buffer exactly as the in-decode hook
        would have — nothing downstream ever sees the pixels.
        """
        if self._decoded is None:
            raise RuntimeError("apply_verdict called before decode")
        if blocked and not self.blocked:
            self._decoded[...] = 0.0
            self.blocked = True
