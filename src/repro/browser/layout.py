"""Layout tree construction.

Blink turns the DOM into a layout tree whose boxes carry on-screen
geometry; display items are generated from it.  The substrate implements
a simplified block-flow layout: children stack vertically, images and
iframes size themselves from their width/height attributes, text runs
get line boxes, and hidden elements (filter-list element hiding) produce
no boxes.  The geometry feeds tile assignment during raster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.browser.dom import Document, DomNode

#: Default viewport width in CSS px (desktop profile).
VIEWPORT_WIDTH = 1280

#: Default viewport height in CSS px: content laid out above this line
#: is on screen at first paint ("above the fold"), everything below it
#: needs a scroll — the distinction the serving layer's priority lanes
#: key dispatch order on.
VIEWPORT_HEIGHT = 768

#: Fallback block height for elements without intrinsic size.
_DEFAULT_BLOCK_HEIGHT = 24
_TEXT_LINE_HEIGHT = 18


@dataclass
class LayoutBox:
    """A laid-out element: node reference plus content rect."""

    node: DomNode
    x: int
    y: int
    width: int
    height: int
    children: List["LayoutBox"] = field(default_factory=list)

    @property
    def rect(self) -> Tuple[int, int, int, int]:
        return self.x, self.y, self.width, self.height

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


def build_layout_tree(
    document: Document, viewport_width: int = VIEWPORT_WIDTH
) -> LayoutBox:
    """Lay out the document; returns the root box (page extent)."""
    body = document.body or document.root
    root = LayoutBox(node=body, x=0, y=0, width=viewport_width, height=0)
    cursor_y = 0
    for child in body.children:
        box = _layout_node(child, 0, cursor_y, viewport_width)
        if box is None:
            continue
        root.children.append(box)
        cursor_y = box.y + box.height
    root.height = cursor_y
    return root


def _layout_node(
    node: DomNode, x: int, y: int, available_width: int
) -> Optional[LayoutBox]:
    if node.hidden:
        return None
    if node.tag == "#text":
        lines = max(1, len(node.text) // 80 + 1)
        return LayoutBox(node, x, y, available_width,
                         lines * _TEXT_LINE_HEIGHT)

    if node.tag in ("img", "iframe"):
        width = node.int_attribute("width", 0) or min(300, available_width)
        height = node.int_attribute("height", 0) or 150
        width = min(width, available_width)
        return LayoutBox(node, x, y, width, height)

    # generic block container: stack children vertically
    box = LayoutBox(node, x, y, available_width, 0)
    cursor_y = y
    for child in node.children:
        child_box = _layout_node(child, x, cursor_y, available_width)
        if child_box is None:
            continue
        box.children.append(child_box)
        cursor_y = child_box.y + child_box.height
    box.height = max(cursor_y - y, _DEFAULT_BLOCK_HEIGHT
                     if node.tag not in ("html", "body", "#document")
                     else 0)
    return box
