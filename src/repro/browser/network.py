"""Mock network layer.

Maps resource URLs to encoded images (backed by the synthetic web's
element registry) and charges virtual fetch time: per-request latency
plus size/bandwidth, over a limited number of parallel connections —
the same aggregate model browsers' network stacks present to the
renderer.  Blocked requests (Brave shields / filter lists) cost nothing,
which is where list-based blocking's speedup comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.browser.codecs import (
    EncodedImage,
    encode_image,
    format_for_url,
)
from repro.synth.webgen import PageElement
from repro.utils.clock import WorkerLanes
from repro.utils.rng import derive, spawn_rng


@dataclass
class NetworkConfig:
    """Virtual network cost model."""

    seed: int = 0
    parallel_connections: int = 6
    latency_median_ms: float = 55.0
    latency_sigma: float = 0.55      # lognormal spread
    bandwidth_bytes_per_ms: float = 400_000.0  # ~3.2 Gbit/s LAN-ish


class MockNetwork:
    """Fetches synthetic resources, accounting virtual time."""

    def __init__(
        self,
        registry: Mapping[str, PageElement],
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self._registry = dict(registry)
        self.config = config or NetworkConfig()
        self._encoded_cache: Dict[str, EncodedImage] = {}

    def has(self, url: str) -> bool:
        return url in self._registry

    def element_for(self, url: str) -> PageElement:
        return self._registry[url]

    def fetch(self, url: str) -> EncodedImage:
        """Resolve a URL to its encoded image (cached per URL)."""
        if url not in self._encoded_cache:
            element = self._registry.get(url)
            if element is None:
                raise KeyError(f"no resource registered for {url}")
            pixels = element.render()
            self._encoded_cache[url] = encode_image(
                pixels, format_for_url(url)
            )
        return self._encoded_cache[url]

    def request_cost_ms(self, url: str, encoded: EncodedImage) -> float:
        """Virtual cost of one request (latency + transfer)."""
        rng = spawn_rng(derive(self.config.seed, url), "net-latency")
        latency = float(
            np.exp(
                np.log(self.config.latency_median_ms)
                + rng.normal(0.0, self.config.latency_sigma)
            )
        )
        transfer = encoded.byte_size / self.config.bandwidth_bytes_per_ms
        return latency + transfer

    def fetch_all_cost_ms(self, urls) -> float:
        """Virtual wall time to fetch ``urls`` over parallel connections."""
        lanes = WorkerLanes(self.config.parallel_connections)
        for url in urls:
            encoded = self.fetch(url)
            lanes.submit(self.request_cost_ms(url, encoded))
        return lanes.makespan_ms
