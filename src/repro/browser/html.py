"""A small HTML tokenizer and tree builder.

Handles the markup the synthetic web emits (and reasonable hand-written
HTML): nested elements, attributes in single/double/no quotes, void
elements, self-closing syntax, comments, and stray close tags.  It is
not a spec-complete HTML5 parser — no implied-tag insertion beyond
html/body recovery, no entity decoding — but every construct the
substrate produces round-trips through it.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, Tuple

from repro.browser.dom import Document, DomNode, VOID_ELEMENTS

_TAG_RE = re.compile(
    r"<!--.*?-->"                      # comments
    r"|<\s*(?P<close>/)?\s*(?P<name>[a-zA-Z][a-zA-Z0-9-]*)"
    r"(?P<attrs>[^>]*?)"
    r"(?P<selfclose>/)?\s*>",
    re.DOTALL,
)

_ATTR_RE = re.compile(
    r"(?P<key>[a-zA-Z_:][a-zA-Z0-9_:.-]*)"
    r"(?:\s*=\s*(?P<value>\"[^\"]*\"|'[^']*'|[^\s\"'>]+))?"
)


def _parse_attributes(raw: str) -> Dict[str, str]:
    attributes: Dict[str, str] = {}
    for match in _ATTR_RE.finditer(raw):
        key = match.group("key").lower()
        value = match.group("value")
        if value is None:
            attributes[key] = ""
        elif value[:1] in "\"'":
            attributes[key] = value[1:-1]
        else:
            attributes[key] = value
    return attributes


def _tokens(html: str) -> Iterator[Tuple[str, object]]:
    """Yield ('text', str) and ('open'/'close'/'void', ...) tokens."""
    position = 0
    for match in _TAG_RE.finditer(html):
        if match.start() > position:
            text = html[position:match.start()]
            if text.strip():
                yield "text", text.strip()
        position = match.end()
        if match.group(0).startswith("<!--"):
            continue
        name = (match.group("name") or "").lower()
        if not name:
            continue
        if match.group("close"):
            yield "close", name
        else:
            attributes = _parse_attributes(match.group("attrs") or "")
            if match.group("selfclose") or name in VOID_ELEMENTS:
                yield "void", (name, attributes)
            else:
                yield "open", (name, attributes)
    if position < len(html):
        tail = html[position:]
        if tail.strip():
            yield "text", tail.strip()


def parse_html(html: str, url: str = "") -> Document:
    """Parse markup into a :class:`Document`.

    Recovery rules: an unmatched close tag pops up to the nearest open
    element of that name (or is dropped); unclosed elements are closed
    at end of input; text outside any element attaches to the root.
    """
    root = DomNode("#document")
    stack = [root]

    for kind, payload in _tokens(html):
        if kind == "text":
            stack[-1].append(DomNode("#text", text=str(payload)))
        elif kind == "void":
            name, attributes = payload
            stack[-1].append(DomNode(name, attributes))
        elif kind == "open":
            name, attributes = payload
            node = DomNode(name, attributes)
            stack[-1].append(node)
            stack.append(node)
        elif kind == "close":
            name = str(payload)
            for depth in range(len(stack) - 1, 0, -1):
                if stack[depth].tag == name:
                    del stack[depth:]
                    break
            # unmatched close tags are dropped silently

    return Document(root, url=url)
