"""The renderer process: full pipeline with virtual-clock metrics.

Orchestrates fetch -> parse -> (shields) -> layout -> display list ->
raster for one page and reports ``domComplete - domLoading`` — the
render-time metric of §5.7.  Two browser profiles are provided:

* :data:`CHROMIUM` — no list-based blocking; every resource loads.
* :data:`BRAVE` — shields on: the synthetic EasyList blocks ad requests
  before fetch and hides matching elements before layout, and blocked
  ad/tracker script work is reflected as a lower script-cost multiplier.
  This is why Brave's *baseline* is much faster, and consequently why a
  fixed per-image classification cost is a larger *fraction* there
  (Figure 15's 4.55% vs 19.07% asymmetry).

PERCIVAL attaches in one of two modes (§1.1):

* ``mode="sync"`` — classification runs on the raster lane before the
  frame paints (blocking deployment; adds render latency),
* ``mode="async"`` — frames paint immediately while classification runs
  off the critical path; verdicts are memoized so the ad is blocked on
  the *next* encounter.  Ads that painted before their verdict are
  counted as ``flashed_ads``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol

import numpy as np

from typing import TYPE_CHECKING

from repro.browser.display_list import (
    DisplayItem,
    DisplayItemKind,
    build_display_list,
)
from repro.browser.html import parse_html
from repro.browser.layout import VIEWPORT_HEIGHT, build_layout_tree
from repro.browser.network import MockNetwork
from repro.browser.raster import RasterConfig, rasterize
from repro.browser.skia import BitmapImage, SkImageInfo
from repro.filterlist.engine import FilterEngine
from repro.synth.webgen import Page
from repro.utils.clock import WorkerLanes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.revisit import RevisitMemory
    from repro.diff.differ import FrameDiffer


class BlockerProtocol(Protocol):
    """What the renderer needs from an ad blocker implementation.

    Implementations may additionally provide two optional (duck-typed)
    fast-path extensions the renderer uses when present:

    * ``fingerprint(bitmap) -> str`` plus ``key=`` keyword support on
      ``memoized_verdict``/``decide`` — lets the renderer hash a frame
      exactly once per encounter instead of once per lookup, and
    * ``decide_many(bitmaps) -> list`` — batched verdicts for a page's
      frames, used by the synchronous image-decode drain so N frames
      cost one batched forward pass instead of N single-image passes.
      A blocker attached to a sharded-inference worker pool
      (``repro.core.workerpool``) additionally scatters that batch
      across worker processes — the drain needs no extra wiring, and
      the async hook is untouched (its per-frame misses are below any
      sensible shard threshold).
    """

    def classify_bitmap(self, bitmap: np.ndarray, info: SkImageInfo) -> bool:
        """True if the decoded frame is an ad (should be blocked)."""
        ...

    def classify_cost_ms(self, info: SkImageInfo) -> float:
        """Virtual cost of one classification at this image size."""
        ...

    def memoized_verdict(self, bitmap: np.ndarray) -> Optional[bool]:
        """Cached verdict for this bitmap, if previously classified."""
        ...


class ServeBridgeProtocol(Protocol):
    """What async-mode serving needs (``repro.serve.RenderServeBridge``).

    The renderer enqueues memo-missed frames during raster and drains
    them after — one batched classification per chunk instead of a
    forward pass per frame, with the verdicts (and their amortized
    virtual costs) landing on the async lanes.
    """

    def fingerprint(self, bitmap: np.ndarray) -> str:
        ...

    def lookup(self, bitmap: np.ndarray, key: Optional[str] = None):
        ...

    def enqueue(
        self, bitmap: np.ndarray, key: str, priority: int = 0
    ) -> None:
        ...

    def drain(self):
        ...


#: virtual cost of handing one frame to the async classification queue
#: (the paint-path work is only the enqueue; compute happens off-lane)
_ASYNC_ENQUEUE_COST_MS = 0.05


@dataclass
class BrowserProfile:
    """Static configuration of a browser build."""

    name: str
    raster_threads: int = 4
    script_cost_multiplier: float = 1.0
    script_base_cost_ms: float = 2400.0
    parse_cost_per_char_ms: float = 0.002
    layout_cost_per_node_ms: float = 0.12
    style_cost_per_node_ms: float = 0.05
    display_item_cost_ms: float = 0.02
    filter_engine: Optional[FilterEngine] = None

    @property
    def shields_on(self) -> bool:
        return self.filter_engine is not None


def _brave_profile() -> BrowserProfile:
    # imported lazily to avoid a hard import cycle at module load
    from repro.filterlist.easylist import default_easylist

    return BrowserProfile(
        name="brave",
        script_cost_multiplier=0.25,
        filter_engine=default_easylist(),
    )


CHROMIUM = BrowserProfile(name="chromium")
BRAVE = _brave_profile()


def _supports_keyed_verdicts(percival: BlockerProtocol) -> bool:
    """True if the blocker implements the keyed fast-path extension.

    Requires the full surface — ``fingerprint()`` plus ``key=``-aware
    ``memoized_verdict()`` and ``decide()`` — verified against each
    method's actual signature, so a protocol-only blocker that happens
    to define a method with a colliding name is never miscalled.
    """
    if getattr(percival, "fingerprint", None) is None:
        return False
    for name in ("memoized_verdict", "decide"):
        method = getattr(percival, name, None)
        if method is None:
            return False
        try:
            parameters = inspect.signature(method).parameters
        except (TypeError, ValueError):
            return False
        if "key" not in parameters:
            return False
    return True


@dataclass
class RenderMetrics:
    """Per-page outcome: timings (virtual ms) and blocking counts."""

    url: str
    dom_loading_ms: float
    dom_complete_ms: float
    fetch_html_ms: float = 0.0
    script_ms: float = 0.0
    parse_ms: float = 0.0
    style_ms: float = 0.0
    layout_ms: float = 0.0
    display_list_ms: float = 0.0
    image_fetch_ms: float = 0.0
    raster_ms: float = 0.0
    classify_cost_ms: float = 0.0
    async_classify_ms: float = 0.0
    images_total: int = 0
    images_blocked_by_list: int = 0
    images_blocked_by_percival: int = 0
    images_decoded: int = 0
    elements_hidden: int = 0
    elements_collapsed_by_memory: int = 0
    flashed_ads: int = 0
    memo_hits: int = 0
    #: frames answered by the serve bridge's cascade rule tiers
    #: (structural verdict from provenance; no memo probe, no batch)
    rule_hits: int = 0
    #: frames that settled from the page's snapshot (diff layer):
    #: unchanged since the last visit, so the stored verdict applied
    #: before any decode or classification
    diff_inherited: int = 0
    #: frames the diff layer routed down the classification pipeline
    #: (changed/added regions, or no usable snapshot)
    diff_reclassified: int = 0

    @property
    def render_time_ms(self) -> float:
        """The paper's metric: domComplete - domLoading."""
        return self.dom_complete_ms - self.dom_loading_ms


class Renderer:
    """Renders synthetic pages under a browser profile."""

    def __init__(
        self,
        profile: BrowserProfile,
        network: MockNetwork,
        raster_config: Optional[RasterConfig] = None,
    ) -> None:
        self.profile = profile
        self.network = network
        self.raster_config = raster_config or RasterConfig(
            num_workers=profile.raster_threads
        )

    def render(
        self,
        page: Page,
        percival: Optional[BlockerProtocol] = None,
        mode: str = "sync",
        revisit_memory: Optional["RevisitMemory"] = None,
        serve_bridge: Optional["ServeBridgeProtocol"] = None,
        differ: Optional["FrameDiffer"] = None,
        session_id: str = "",
    ) -> RenderMetrics:
        """Render one page; returns its metrics.

        ``percival=None`` renders the baseline configuration.  With a
        ``revisit_memory``, elements whose resources PERCIVAL blocked on
        a previous visit are hidden *before layout* — the §6 fix for
        dangling slots: the container collapses and neither fetch nor
        decode nor classification is paid again.

        ``serve_bridge`` (async mode only) routes memo-missed decodes
        through the micro-batching serving layer
        (:class:`repro.serve.RenderServeBridge`): frames enqueue during
        raster and classify in batched chunks at drain time, so many
        page sessions share one blocker's batches and memo.

        ``differ`` (or, when omitted, the serve bridge's own differ)
        turns revisits incremental: before any decode, the page's image
        regions are diffed against the session's stored snapshot and
        unchanged regions settle from their stored verdict — only the
        delta reaches the classification pipeline.  ``session_id``
        scopes the snapshot (one browsing session's layout never leaks
        into another's diff).
        """
        if mode not in ("sync", "async"):
            raise ValueError(f"unknown blocking mode {mode!r}")
        if serve_bridge is not None and mode != "async":
            raise ValueError(
                "serve_bridge routes the asynchronous deployment; "
                "use mode='async'"
            )
        profile = self.profile
        metrics = RenderMetrics(
            url=page.url, dom_loading_ms=0.0, dom_complete_ms=0.0
        )
        clock = 0.0

        # -- fetch + parse the main document -------------------------------
        html = page.html
        metrics.fetch_html_ms = 40.0 + len(html) / 200_000.0
        clock += metrics.fetch_html_ms
        document = parse_html(html, url=page.url)
        metrics.parse_ms = len(html) * profile.parse_cost_per_char_ms
        clock += metrics.parse_ms

        # -- scripting (ad/tracker JS dominates real pages) ----------------
        metrics.script_ms = (
            page.complexity
            * profile.script_base_cost_ms
            * profile.script_cost_multiplier
        )
        clock += metrics.script_ms

        # -- style + element hiding (shields) -------------------------------
        node_count = document.element_count()
        metrics.style_ms = node_count * profile.style_cost_per_node_ms
        clock += metrics.style_ms
        if profile.filter_engine is not None:
            for node in document.root.walk():
                if node.tag == "#text":
                    continue
                rule = profile.filter_engine.should_hide_element(
                    node.tag, node.css_classes, node.element_id,
                    page.site_domain,
                )
                if rule is not None:
                    node.hidden = True
                    metrics.elements_hidden += 1

        # -- subresource filtering + fetch ----------------------------------
        resources = document.resource_elements()
        metrics.images_total = len(resources)
        allowed_urls: List[str] = []
        for node in resources:
            if node.hidden:
                metrics.images_blocked_by_list += 1
                continue
            if revisit_memory is not None and revisit_memory.should_collapse(
                node.src
            ):
                # blocked on a previous visit: collapse the element
                # before layout; no fetch, decode or classification.
                node.hidden = True
                metrics.elements_collapsed_by_memory += 1
                continue
            if profile.filter_engine is not None:
                decision = profile.filter_engine.check_request(
                    node.src, page.site_domain, "image"
                )
                if decision.blocked:
                    node.hidden = True
                    metrics.images_blocked_by_list += 1
                    continue
            allowed_urls.append(node.src)
        fetchable = [u for u in allowed_urls if self.network.has(u)]
        metrics.image_fetch_ms = self.network.fetch_all_cost_ms(fetchable)
        clock += metrics.image_fetch_ms

        # -- layout + display list ------------------------------------------
        layout_root = build_layout_tree(document)
        metrics.layout_ms = node_count * profile.layout_cost_per_node_ms
        clock += metrics.layout_ms
        display_list = build_display_list(layout_root)
        metrics.display_list_ms = (
            len(display_list) * profile.display_item_cost_ms
        )
        clock += metrics.display_list_ms

        # -- decode + classify + raster --------------------------------------
        images: Dict[str, BitmapImage] = {
            url: BitmapImage(self.network.fetch(url)) for url in fetchable
        }
        hook = None
        cost_fn = lambda url: 0.0  # noqa: E731 - tiny closure
        async_lanes: Optional[WorkerLanes] = None

        # -- incremental re-classification (diff layer) ----------------------
        # Before anything decodes: diff this visit's image regions
        # against the session's stored snapshot.  Unchanged regions
        # settle from their stored verdict (blocked ones never decode);
        # only the delta reaches the classification pipeline below.
        active_differ = differ
        if active_differ is None and serve_bridge is not None:
            active_differ = getattr(serve_bridge, "differ", None)
        if percival is None:
            active_differ = None
        region_views: List = []
        inherited_by_url: Dict[str, object] = {}
        settled_urls: set = set()
        if active_differ is not None:
            from repro.diff.snapshot import (
                RegionView,
                content_key_for_payload,
            )

            diff_nodes = {
                node.src: node for node in document.resource_elements()
            }
            seen_regions: set = set()
            for item in display_list:
                if item.kind is not DisplayItemKind.IMAGE:
                    continue
                if item.url in seen_regions or item.url not in images:
                    continue
                seen_regions.add(item.url)
                node = diff_nodes.get(item.url)
                style_key = "|".join((
                    getattr(node, "tag", "img") or "img",
                    ",".join(getattr(node, "css_classes", ()) or ()),
                    getattr(node, "element_id", "") or "",
                ))
                encoded = images[item.url].sk_image.encoded
                region_views.append(RegionView(
                    url=item.url,
                    content_key=content_key_for_payload(
                        encoded.payload, encoded.format.name
                    ),
                    x=int(item.x),
                    y=int(item.y),
                    width=int(item.width),
                    height=int(item.height),
                    style_key=style_key,
                ))
            plan = active_differ.plan(
                session_id or "local",
                page.url,
                region_views,
                revisit_memory=revisit_memory,
            )
            for view, record in plan.inherit:
                images[view.url].settle_verdict(bool(record.is_ad))
                settled_urls.add(view.url)
                inherited_by_url[view.url] = record
            metrics.diff_inherited = len(plan.inherit)
            metrics.diff_reclassified = len(plan.reclassify)

        #: model decisions captured at classification time, by URL —
        #: what the post-raster snapshot commit records
        decision_by_url: Dict[str, object] = {}

        if percival is not None and mode == "sync":
            # Image-decode drain: when the blocker supports batched
            # verdicts, decode every fetched frame up front and classify
            # them all in ONE batched forward pass (sharded across the
            # blocker's worker pool when it holds one and the page is
            # large enough).  Raster still charges decode +
            # classification virtual cost on first touch, so the
            # virtual-clock metrics are identical to the per-frame
            # deployment — only the real compute is batched.
            decide_many = getattr(percival, "decide_many", None)
            if decide_many is not None:
                fresh = [
                    (url, image) for url, image in images.items()
                    if not image.is_decoded and url not in settled_urls
                ]
                if fresh:
                    decisions = decide_many(
                        [image.decode_only() for _, image in fresh]
                    )
                    for (url, image), decision in zip(fresh, decisions):
                        image.apply_verdict(bool(decision.is_ad))
                        decision_by_url[url] = decision

            def hook(bitmap: np.ndarray, info: SkImageInfo) -> bool:
                # Fallback for frames the drain did not cover (and the
                # whole page when the blocker has no batched API).
                return percival.classify_bitmap(bitmap, info)

            def cost_fn(url: str) -> float:
                info = images[url].sk_image.info
                return percival.classify_cost_ms(info)

        elif percival is not None and mode == "async":
            # leaf import: the serve layer's priority constants, only
            # needed when a bridge routes frames through it
            from repro.serve.queue import (
                PRIORITY_BELOW_FOLD,
                PRIORITY_VIEWPORT,
            )

            async_lanes = WorkerLanes(profile.raster_threads)
            keyed = _supports_keyed_verdicts(percival)
            fingerprint = percival.fingerprint if keyed else None
            decide = percival.decide if keyed else None
            # cascade extensions, duck-typed so bridge stubs keep
            # working: route() adds the rule tier in front of the memo,
            # and enqueue() may accept the frame's provenance
            bridge_route = getattr(serve_bridge, "route", None)
            enqueue_takes_provenance = False
            node_by_url: Dict[str, object] = {}
            if serve_bridge is not None:
                try:
                    enqueue_takes_provenance = "provenance" in (
                        inspect.signature(serve_bridge.enqueue).parameters
                    )
                except (TypeError, ValueError):
                    enqueue_takes_provenance = False
                if bridge_route is not None or enqueue_takes_provenance:
                    node_by_url = {
                        node.src: node
                        for node in document.resource_elements()
                    }

            def frame_provenance(item: Optional[DisplayItem]):
                """Provenance of the frame the raster lane is decoding,
                from the display item plus its owning DOM element."""
                if item is None:
                    return None
                from repro.cascade.provenance import FrameProvenance

                node = node_by_url.get(item.url)
                return FrameProvenance(
                    url=item.url,
                    page_domain=page.site_domain,
                    tag=getattr(node, "tag", "img"),
                    css_classes=tuple(getattr(node, "css_classes", ())),
                    element_id=getattr(node, "element_id", "") or "",
                    width=int(item.width),
                    height=int(item.height),
                )
            # per-frame flag set by the hook and read by cost_fn right
            # after: memo hits enqueue nothing, so the raster lane must
            # charge nothing for them
            frame_enqueued = [False]
            # display item whose first touch is paying the current
            # decode — set by the raster callback just before the hook
            # runs, so the hook knows the frame's on-page position
            touched_item: List[Optional[DisplayItem]] = [None]

            def hook(bitmap: np.ndarray, info: SkImageInfo) -> bool:
                frame_enqueued[0] = False
                if serve_bridge is not None:
                    # micro-batched deployment: cascade rule tier (when
                    # the bridge has one), then the shared memo; misses
                    # enqueue for the post-raster batched drain
                    item = touched_item[0]
                    key = serve_bridge.fingerprint(bitmap)
                    if bridge_route is not None:
                        rule_hits_before = getattr(
                            serve_bridge, "rule_hits", 0
                        )
                        cached_decision = bridge_route(
                            bitmap, key=key,
                            provenance=frame_provenance(item),
                        )
                        if cached_decision is not None:
                            if getattr(
                                serve_bridge, "rule_hits", 0
                            ) > rule_hits_before:
                                metrics.rule_hits += 1
                            else:
                                metrics.memo_hits += 1
                            return cached_decision.is_ad
                    else:
                        cached_decision = serve_bridge.lookup(
                            bitmap, key=key
                        )
                        if cached_decision is not None:
                            metrics.memo_hits += 1
                            return cached_decision.is_ad
                    priority = (
                        PRIORITY_VIEWPORT
                        if item is None or item.y < VIEWPORT_HEIGHT
                        else PRIORITY_BELOW_FOLD
                    )
                    if enqueue_takes_provenance:
                        serve_bridge.enqueue(
                            bitmap, key, priority,
                            provenance=frame_provenance(item),
                        )
                    else:
                        serve_bridge.enqueue(bitmap, key, priority)
                    frame_enqueued[0] = True
                    return False  # verdict lands at drain time
                # fingerprint once per frame: the same key serves the
                # memo lookup and, on a miss, the memo fill.
                if keyed:
                    key = fingerprint(bitmap)
                    cached = percival.memoized_verdict(bitmap, key=key)
                else:
                    cached = percival.memoized_verdict(bitmap)
                if cached is not None:
                    metrics.memo_hits += 1
                    return cached
                # classify off the critical path; frame paints meanwhile
                frame_enqueued[0] = True
                if keyed:
                    verdict = decide(bitmap, key=key).is_ad
                else:
                    verdict = percival.classify_bitmap(bitmap, info)
                async_lanes.submit(percival.classify_cost_ms(info))
                if verdict:
                    metrics.flashed_ads += 1
                return False  # never blocks the current paint

            def cost_fn(url: str) -> float:
                # enqueue cost only — and only for frames that actually
                # enqueued work (memo hits resolved without classifying)
                if frame_enqueued[0]:
                    return _ASYNC_ENQUEUE_COST_MS
                return 0.0

        first_touch = None
        if serve_bridge is not None:

            def first_touch(item: DisplayItem) -> None:
                touched_item[0] = item

        raster = rasterize(
            display_list,
            layout_root.height,
            images,
            config=self.raster_config,
            percival_hook=hook,
            classify_cost_ms=cost_fn,
            on_image_first_touch=first_touch,
            settled_urls=settled_urls or None,
        )
        metrics.raster_ms = raster.makespan_ms
        metrics.classify_cost_ms = raster.classify_cost_ms
        metrics.images_decoded = raster.images_decoded
        metrics.images_blocked_by_percival = raster.images_blocked
        if serve_bridge is not None and async_lanes is not None:
            # drain the page's enqueued frames through the batching
            # layer: verdicts memoize for the next encounter, amortized
            # compute lands on the async lanes, ads that already
            # painted count as flashed — the §1.1 async trade-off
            for decision, cost_ms in serve_bridge.drain():
                async_lanes.submit(cost_ms)
                if decision.is_ad:
                    metrics.flashed_ads += 1
        if async_lanes is not None:
            metrics.async_classify_ms = async_lanes.makespan_ms
        if active_differ is not None and region_views:
            # commit this visit's snapshot: refreshed geometry for
            # inherited regions, the captured/memoized model decision
            # for classified ones, a verdict-less (non-inheritable)
            # record otherwise.  Only model-computed decisions are
            # recorded, so an inherited verdict is always bit-identical
            # to what the memo path would have returned.
            from repro.diff.snapshot import RegionRecord

            memo_probe = getattr(percival, "memoized_decision", None)
            if memo_probe is None and serve_bridge is not None:
                memo_probe = getattr(serve_bridge, "lookup", None)
            records = []
            for view in region_views:
                inherited = inherited_by_url.get(view.url)
                if inherited is not None:
                    records.append(RegionRecord.from_view(
                        view, inherited.is_ad, inherited.probability
                    ))
                    continue
                decision = decision_by_url.get(view.url)
                image = images.get(view.url)
                if (
                    decision is None
                    and memo_probe is not None
                    and image is not None
                    and image.is_decoded
                    and not image.blocked
                ):
                    # async deployments classify at drain time; the
                    # memo now holds the frame's full decision (rule
                    # hits never land in the memo, so they are never
                    # recorded — snapshots carry model verdicts only)
                    decision = memo_probe(image.decode_only())
                probability = getattr(decision, "probability", None)
                if decision is not None and probability is not None:
                    records.append(RegionRecord.from_view(
                        view, bool(decision.is_ad), float(probability)
                    ))
                else:
                    records.append(RegionRecord.from_view(view))
            active_differ.commit(session_id or "local", page.url, records)
        if revisit_memory is not None:
            for url, bitmap_image in images.items():
                if bitmap_image.blocked:
                    revisit_memory.record_blocked(url)
        clock += raster.makespan_ms

        metrics.dom_complete_ms = clock
        return metrics
