"""Display-list generation.

Blink encodes each layout box plus its paint instructions as a display
item; rasterization consumes the list tile by tile.  Items here carry
the geometry needed for tile assignment and — for image items — the
resource URL resolved during raster via the network layer's cache.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.browser.layout import LayoutBox


class DisplayItemKind(enum.Enum):
    RECT = "rect"
    TEXT = "text"
    IMAGE = "image"


@dataclass
class DisplayItem:
    """One draw command with its target rect."""

    kind: DisplayItemKind
    x: int
    y: int
    width: int
    height: int
    url: str = ""  # image items only

    @property
    def rect(self) -> Tuple[int, int, int, int]:
        return self.x, self.y, self.width, self.height

    def intersects_band(self, band_top: int, band_bottom: int) -> bool:
        """Does this item's rect overlap the [top, bottom) raster band?"""
        return self.y < band_bottom and (self.y + self.height) > band_top


def build_display_list(root: LayoutBox) -> List[DisplayItem]:
    """Flatten the layout tree into paint order (pre-order)."""
    items: List[DisplayItem] = []
    for box in root.walk():
        node = box.node
        if node.tag == "#text":
            items.append(DisplayItem(
                DisplayItemKind.TEXT, box.x, box.y, box.width, box.height
            ))
        elif node.tag in ("img", "iframe") and node.src:
            items.append(DisplayItem(
                DisplayItemKind.IMAGE, box.x, box.y, box.width, box.height,
                url=node.src,
            ))
        elif node.tag in ("div", "body", "h1", "p", "section", "header"):
            items.append(DisplayItem(
                DisplayItemKind.RECT, box.x, box.y, box.width, box.height
            ))
    return items
