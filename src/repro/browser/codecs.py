"""Toy-but-real image codecs.

Chromium's raster task decodes JPG/PNG/GIF into raw pixels; PERCIVAL
reads the decoded buffer.  To keep that boundary honest, the substrate
actually round-trips pixels through real encoders:

* ``RAW``  — uncompressed bytes (BMP-like),
* ``RLE``  — per-channel run-length encoding (GIF-flavoured),
* ``DEFLATE`` — zlib over scanlines (PNG-flavoured),
* ``QUANT`` — 5-bit quantization + zlib (JPEG-flavoured, lossy).

Pixels are float32 RGBA in [0, 1] on the outside, uint8 on the wire.
Each format carries a relative decode-cost factor used by the virtual
clock (quantized/entropy-coded formats cost more per pixel).
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass

import numpy as np

_MAGIC = b"RIMG"


class ImageFormat(enum.Enum):
    """Supported wire formats and their virtual decode-cost factors."""

    RAW = ("raw_", 1.0)
    RLE = ("rle_", 1.6)
    DEFLATE = ("defl", 2.2)
    QUANT = ("qnt_", 2.8)

    def __init__(self, wire_code: str, decode_cost_factor: float) -> None:
        if len(wire_code) != 4:
            raise ValueError("wire codes are exactly 4 bytes")
        self.wire_code = wire_code
        self.decode_cost_factor = decode_cost_factor


@dataclass(frozen=True)
class EncodedImage:
    """An encoded image as fetched from the network."""

    format: ImageFormat
    payload: bytes
    width: int
    height: int

    @property
    def byte_size(self) -> int:
        return len(self.payload)

    @property
    def pixel_count(self) -> int:
        return self.width * self.height


def _to_uint8(pixels: np.ndarray) -> np.ndarray:
    if pixels.ndim != 3 or pixels.shape[2] != 4:
        raise ValueError("expected (H, W, 4) RGBA pixels")
    return np.clip(pixels * 255.0, 0, 255).astype(np.uint8)


def _from_uint8(raw: np.ndarray) -> np.ndarray:
    return (raw.astype(np.float32) / 255.0)


def _rle_encode(data: bytes) -> bytes:
    """Simple byte-level RLE: (count, value) pairs, count <= 255."""
    if not data:
        return b""
    out = bytearray()
    prev = data[0]
    count = 1
    for byte in data[1:]:
        if byte == prev and count < 255:
            count += 1
        else:
            out.append(count)
            out.append(prev)
            prev = byte
            count = 1
    out.append(count)
    out.append(prev)
    return bytes(out)


def _rle_decode(data: bytes) -> bytes:
    if len(data) % 2:
        raise ValueError("corrupt RLE stream (odd length)")
    out = bytearray()
    for i in range(0, len(data), 2):
        out.extend(data[i + 1:i + 2] * data[i])
    return bytes(out)


def encode_image(pixels: np.ndarray, fmt: ImageFormat) -> EncodedImage:
    """Encode RGBA float pixels into the given wire format."""
    raw = _to_uint8(pixels)
    height, width = raw.shape[:2]
    flat = raw.tobytes()
    if fmt is ImageFormat.RAW:
        payload = flat
    elif fmt is ImageFormat.RLE:
        payload = _rle_encode(flat)
    elif fmt is ImageFormat.DEFLATE:
        payload = zlib.compress(flat, level=6)
    elif fmt is ImageFormat.QUANT:
        quantized = (raw >> 3).astype(np.uint8)  # 5 bits/channel
        payload = zlib.compress(quantized.tobytes(), level=6)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown format {fmt!r}")
    header = _MAGIC + struct.pack(
        ">4sII", fmt.wire_code.encode("ascii"), width, height
    )
    return EncodedImage(
        format=fmt, payload=header + payload, width=width, height=height
    )


def decode_image(encoded: EncodedImage) -> np.ndarray:
    """Decode back to RGBA float pixels (lossy for QUANT)."""
    blob = encoded.payload
    if blob[:4] != _MAGIC:
        raise ValueError("bad magic; not an encoded image")
    wire, width, height = struct.unpack(">4sII", blob[4:16])
    body = blob[16:]
    try:
        fmt = next(
            f for f in ImageFormat
            if f.wire_code == wire.decode("ascii")
        )
    except StopIteration:
        raise ValueError(f"unknown wire code {wire!r}") from None
    if fmt is not encoded.format:
        raise ValueError("header format disagrees with container")

    if fmt is ImageFormat.RAW:
        flat = body
    elif fmt is ImageFormat.RLE:
        flat = _rle_decode(body)
    elif fmt is ImageFormat.DEFLATE:
        flat = zlib.decompress(body)
    elif fmt is ImageFormat.QUANT:
        quantized = np.frombuffer(zlib.decompress(body), dtype=np.uint8)
        raw = (quantized.reshape(height, width, 4) << 3)
        return _from_uint8(raw)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown format {fmt!r}")

    raw = np.frombuffer(flat, dtype=np.uint8).reshape(height, width, 4)
    return _from_uint8(raw)


def format_for_url(url: str) -> ImageFormat:
    """Pick a wire format from a URL extension, as a fetcher would."""
    lowered = url.lower()
    if lowered.endswith(".png"):
        return ImageFormat.DEFLATE
    if lowered.endswith((".jpg", ".jpeg")):
        return ImageFormat.QUANT
    if lowered.endswith(".gif"):
        return ImageFormat.RLE
    return ImageFormat.RAW
