"""Tiled rasterization with parallel worker lanes.

Blink rasters per tile on a pool of raster threads; image decode happens
lazily inside the raster task that first needs the image, and PERCIVAL
runs right there, after decode, per worker thread (§3.2).  The substrate
reproduces that shape: the display list is split into horizontal bands,
each band is a raster task assigned to the least-loaded lane, and the
first task to touch an image pays its decode + classification cost.

Costs are virtual milliseconds; the classification cost per image is the
single calibrated constant (from the measured model latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set


from repro.browser.display_list import DisplayItem, DisplayItemKind
from repro.browser.skia import BitmapImage, PercivalHook
from repro.utils.clock import WorkerLanes


@dataclass
class RasterConfig:
    """Raster cost model (virtual ms)."""

    tile_height: int = 256
    num_workers: int = 4
    tile_base_cost_ms: float = 0.4
    rect_item_cost_ms: float = 0.02
    text_item_cost_ms: float = 0.05
    image_draw_cost_ms: float = 0.08
    decode_cost_per_kilopixel_ms: float = 0.03


@dataclass
class RasterResult:
    """Aggregate outcome of rasterizing one page."""

    makespan_ms: float
    total_work_ms: float
    tiles: int
    images_decoded: int
    images_blocked: int
    decode_cost_ms: float
    classify_cost_ms: float
    #: first-touched images whose verdict was already settled by the
    #: diff layer: no hook ran and no classification cost was charged
    images_settled: int = 0


def rasterize(
    display_list: List[DisplayItem],
    page_height: int,
    images: Dict[str, BitmapImage],
    config: Optional[RasterConfig] = None,
    percival_hook: Optional[PercivalHook] = None,
    classify_cost_ms: Callable[[str], float] = lambda url: 0.0,
    on_image_first_touch: Optional[Callable[[DisplayItem], None]] = None,
    settled_urls: Optional[Set[str]] = None,
) -> RasterResult:
    """Raster the display list over worker lanes.

    ``images`` maps URL -> BitmapImage (deferred-decode handles).  When a
    ``percival_hook`` is given it runs on each decode — synchronously on
    the raster lane, charging ``classify_cost_ms(url)`` to that lane, the
    paper's blocking deployment.

    ``on_image_first_touch`` fires once per image, with the display item
    whose raster task is about to pay the decode, *before* the decode
    (and therefore before ``percival_hook``) runs — it is how the
    renderer learns each frame's on-page provenance (viewport or
    below-the-fold) at exactly the moment the classification request is
    born.

    ``settled_urls`` marks images whose verdict the diff layer already
    settled from a prior visit's snapshot: their first touch never runs
    ``percival_hook`` and charges no classification cost.  An allowed
    settled image still decodes (the pixels must paint); a blocked one
    was settled as a cleared buffer and skips the decode entirely.
    """
    config = config or RasterConfig()
    lanes = WorkerLanes(config.num_workers)
    page_height = max(page_height, config.tile_height)
    settled = settled_urls or set()

    decoded_urls: set = set()
    blocked = 0
    settled_touched = 0
    decode_total = 0.0
    classify_total = 0.0
    tiles = 0

    for band_top in range(0, page_height, config.tile_height):
        band_bottom = band_top + config.tile_height
        cost = config.tile_base_cost_ms
        for item in display_list:
            if not item.intersects_band(band_top, band_bottom):
                continue
            if item.kind is DisplayItemKind.RECT:
                cost += config.rect_item_cost_ms
            elif item.kind is DisplayItemKind.TEXT:
                cost += config.text_item_cost_ms
            elif item.kind is DisplayItemKind.IMAGE:
                cost += config.image_draw_cost_ms
                bitmap = images.get(item.url)
                if bitmap is None or item.url in decoded_urls:
                    continue
                # first touch: decode (+ classify) on this raster task
                decoded_urls.add(item.url)
                if item.url in settled:
                    # verdict inherited from the page's snapshot: no
                    # hook, no classification cost.  Allowed frames
                    # still pay their decode; blocked frames settled
                    # as cleared buffers and skip it.
                    settled_touched += 1
                    if not bitmap.is_decoded:
                        encoded = bitmap.sk_image.encoded
                        decode_ms = (
                            encoded.pixel_count / 1000.0
                            * config.decode_cost_per_kilopixel_ms
                            * encoded.format.decode_cost_factor
                        )
                        decode_total += decode_ms
                        cost += decode_ms
                        bitmap.ensure_decoded(None)
                    if bitmap.blocked:
                        blocked += 1
                    continue
                if on_image_first_touch is not None:
                    on_image_first_touch(item)
                encoded = bitmap.sk_image.encoded
                decode_ms = (
                    encoded.pixel_count / 1000.0
                    * config.decode_cost_per_kilopixel_ms
                    * encoded.format.decode_cost_factor
                )
                decode_total += decode_ms
                cost += decode_ms
                bitmap.ensure_decoded(percival_hook)
                if percival_hook is not None:
                    classify_ms = classify_cost_ms(item.url)
                    classify_total += classify_ms
                    cost += classify_ms
                if bitmap.blocked:
                    blocked += 1
        lanes.submit(cost)
        tiles += 1

    return RasterResult(
        makespan_ms=lanes.makespan_ms,
        total_work_ms=lanes.total_work_ms,
        tiles=tiles,
        images_decoded=len(decoded_urls),
        images_blocked=blocked,
        decode_cost_ms=decode_total,
        classify_cost_ms=classify_total,
        images_settled=settled_touched,
    )
