"""DOM tree model."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

#: Elements that never have children (HTML void elements).
VOID_ELEMENTS = frozenset({
    "img", "br", "hr", "meta", "link", "input", "area", "base",
    "col", "embed", "source", "track", "wbr",
})


class DomNode:
    """One element (or text run) in the document tree."""

    def __init__(
        self,
        tag: str,
        attributes: Optional[Dict[str, str]] = None,
        text: str = "",
    ) -> None:
        self.tag = tag.lower()
        self.attributes = dict(attributes or {})
        self.text = text
        self.children: List[DomNode] = []
        self.parent: Optional[DomNode] = None
        #: set by the style phase when an element-hiding rule fires
        self.hidden = False

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------
    def append(self, child: "DomNode") -> "DomNode":
        child.parent = self
        self.children.append(child)
        return child

    # ------------------------------------------------------------------
    # Attribute helpers
    # ------------------------------------------------------------------
    @property
    def element_id(self) -> str:
        return self.attributes.get("id", "")

    @property
    def css_classes(self) -> Tuple[str, ...]:
        raw = self.attributes.get("class", "")
        return tuple(c for c in raw.split() if c)

    @property
    def src(self) -> str:
        return self.attributes.get("src", "")

    def int_attribute(self, name: str, default: int = 0) -> int:
        try:
            return int(self.attributes.get(name, default))
        except (TypeError, ValueError):
            return default

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def walk(self) -> Iterator["DomNode"]:
        """Depth-first pre-order traversal including self."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find_all(self, tag: str) -> List["DomNode"]:
        return [node for node in self.walk() if node.tag == tag]

    def __repr__(self) -> str:
        return f"<DomNode {self.tag} id={self.element_id!r}>"


class Document:
    """Parsed document: root node plus convenience accessors."""

    def __init__(self, root: DomNode, url: str = "") -> None:
        self.root = root
        self.url = url

    @property
    def body(self) -> Optional[DomNode]:
        for node in self.root.walk():
            if node.tag == "body":
                return node
        return None

    def resource_elements(self) -> List[DomNode]:
        """Elements that trigger subresource loads (img / iframe)."""
        return [
            node for node in self.root.walk()
            if node.tag in ("img", "iframe") and node.src
        ]

    def element_count(self) -> int:
        return sum(1 for node in self.root.walk() if node.tag != "#text")
