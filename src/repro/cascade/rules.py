"""The compiled micro-rule cache.

A :class:`CascadeRule` is one cached structural verdict: "frames from
this source, on this site, in this slot shape, are (not) ads".  Rules
come from two origins with different trust:

* ``"micro"`` — compiled from the CNN's own confident verdicts.  Born
  serving: the model corroborated them by construction.
* ``"list"`` — backed by an external filterlist match.  Born *not*
  serving: an external rule must first be corroborated by the model
  (its first predictions are audited) before its verdicts are served
  directly — which is exactly how a stale or over-broad EasyList entry
  is prevented from ever overriding the model.

Invalidation is permanent for a cache's lifetime: a key that drifted
into disagreement is quarantined, so the same wrong rule cannot be
recompiled an audit-interval later from the same confident-looking
verdicts.  The frames simply go back to the CNN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

#: rule origins
ORIGIN_MICRO = "micro"
ORIGIN_LIST = "list"


@dataclass
class CascadeRule:
    """One cached structural verdict with its health ledger."""

    key: str
    verdict: bool
    #: representative P(ad) — exact for micro rules (the compiling
    #: verdict's probability), advisory 1.0/0.0 for list rules
    probability: float
    origin: str = ORIGIN_MICRO
    #: a serving rule answers requests directly; a non-serving rule
    #: still predicts, but its prediction is audited against the model
    serving: bool = True
    hits: int = 0
    audits: int = 0
    agreements: int = 0
    disagreements: int = 0
    invalidated: bool = False


@dataclass
class CompiledRuleCache:
    """Per-site rule store with permanent quarantine on invalidation."""

    _rules: Dict[str, CascadeRule] = field(default_factory=dict)
    _quarantined: Set[str] = field(default_factory=set)
    #: rules compiled from model verdicts over the cache's lifetime
    compiled_count: int = 0
    #: rules invalidated by the healer over the cache's lifetime
    invalidated_count: int = 0

    def get(self, key: str) -> Optional[CascadeRule]:
        """The rule at ``key`` (serving or not), or ``None``.

        Invalidated rules are returned too — callers route their frames
        to the CNN, but the ledger stays inspectable.
        """
        return self._rules.get(key)

    def ensure_list_rule(
        self, key: str, verdict: bool, probability: float
    ) -> CascadeRule:
        """The health entry for a filterlist match, created on first
        sight.  List rules start non-serving (corroboration required)."""
        rule = self._rules.get(key)
        if rule is None:
            rule = CascadeRule(
                key=key,
                verdict=verdict,
                probability=probability,
                origin=ORIGIN_LIST,
                serving=False,
            )
            self._rules[key] = rule
        return rule

    def compile_rule(
        self, key: str, verdict: bool, probability: float
    ) -> Optional[CascadeRule]:
        """Compile a confident model verdict into a serving micro-rule.

        Returns ``None`` without compiling when the key is quarantined
        (a healed rule must not resurrect from the verdicts that healed
        it) or already holds a rule.
        """
        if key in self._quarantined or key in self._rules:
            return None
        rule = CascadeRule(key=key, verdict=verdict, probability=probability)
        self._rules[key] = rule
        self.compiled_count += 1
        return rule

    def invalidate(self, rule: CascadeRule) -> None:
        """Quarantine a drifting rule; its frames re-route to the CNN."""
        if rule.invalidated:
            return
        rule.invalidated = True
        rule.serving = False
        self._quarantined.add(rule.key)
        self.invalidated_count += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._rules)

    @property
    def serving_count(self) -> int:
        return sum(1 for rule in self._rules.values() if rule.serving)

    @property
    def quarantined_count(self) -> int:
        return len(self._quarantined)
