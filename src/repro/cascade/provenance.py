"""Frame provenance: where a bitmap came from on the page.

The renderer knows far more about a frame than its pixels — the
resource URL it was fetched from, the DOM element that owns it, and the
slot geometry it paints into.  :class:`FrameProvenance` carries that
context through the serving stack so the cascade's structural tiers
(filterlist match, compiled micro-rules) can decide a frame without
touching the CNN.

Provenance is advisory: a request without it simply routes straight to
the memo/queue tiers, and nothing in the verdict path ever *requires*
it — the CNN remains the authority for every residual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple
from urllib.parse import urlparse


@dataclass(frozen=True)
class FrameProvenance:
    """Renderer-side context for one decoded frame."""

    #: resource URL the frame was fetched from ("" if unknown)
    url: str
    #: domain of the page embedding the frame (drives third-party and
    #: ``domain=`` filter options, and scopes micro-rules per site)
    page_domain: str
    #: DOM path of the owning element, as the hiding rules see it
    tag: str = "img"
    css_classes: Tuple[str, ...] = ()
    element_id: str = ""
    #: slot geometry in CSS px (0 = unknown)
    width: int = 0
    height: int = 0

    @property
    def source(self) -> str:
        """The frame's traffic source: host plus first path segment.

        ``https://ads.doublevision.test/serve/c0001_ab.png`` →
        ``ads.doublevision.test/serve`` — the granularity ad networks
        actually serve at (one path prefix, many rotating creatives),
        and therefore the key at which a compiled verdict generalizes
        beyond a single fingerprint.
        """
        parsed = urlparse(self.url)
        host = parsed.netloc.lower()
        path = parsed.path.strip("/")
        if not host:
            return ""
        first = path.split("/", 1)[0] if path else ""
        return f"{host}/{first}" if first else host

    @property
    def size_class(self) -> str:
        """IAB-style slot shape bucket, part of the micro-rule key.

        Ad slots are strongly shape-conventional (leaderboards,
        skyscrapers, rectangles); folding the bucket into the rule key
        keeps a verdict for a network's banner slots from leaking onto
        its differently-shaped inventory.
        """
        if self.width <= 0 or self.height <= 0:
            return "unsized"
        if self.width >= 3 * self.height:
            return "banner"
        if self.height >= 3 * self.width:
            return "skyscraper"
        if max(self.width, self.height) <= 120:
            return "tile"
        return "rectangle"

    def micro_key(self) -> str:
        """Micro-rule cache key: per-site, per-source, per-shape."""
        return f"{self.page_domain}|{self.source}|{self.size_class}"
