"""The confidence router: rule tiers in front of the CNN.

:meth:`CascadeRouter.route` is called once per request, before the
blocker's memo.  Three outcomes:

* :class:`CascadeHit` — a serving rule decided the frame; the request
  is answered immediately and never consumes a batch slot, a queue
  entry, or lane time;
* :class:`CascadeAudit` — a rule *predicted* the frame but this
  prediction must be verified (corroboration warmup, or the sampled
  audit cadence); the request proceeds down the normal memo/queue path
  and the eventual model verdict is fed back via :meth:`reconcile`;
* ``None`` — no rule speaks for the frame; normal path, and if the
  model's verdict comes back *confident*, :meth:`absorb` compiles it
  into a micro-rule so the next frame from the same source hits.

The router never mutates the blocker: rule-hit decisions are built
here (``from_cache=True`` — no fresh classification happened), the
memo only ever holds model-computed probabilities, and turning the
cascade off reproduces the pre-cascade pipeline bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cascade.healer import RuleHealer
from repro.cascade.provenance import FrameProvenance
from repro.cascade.rules import CascadeRule, CompiledRuleCache
from repro.core.blocker import BlockDecision
from repro.filterlist.engine import FilterEngine

#: tier names, as reported on results/stats
TIER_LIST = "list"
TIER_MICRO = "micro"


@dataclass(frozen=True)
class CascadeHit:
    """A rule answered the request; no CNN, no queue."""

    decision: BlockDecision
    tier: str
    rule_key: str


@dataclass(frozen=True)
class CascadeAudit:
    """A rule predicted the request; the model must weigh in.

    Carried on the request through the memo/queue tiers; whoever
    produces the model verdict (memo hit or batch flush) hands it back
    to :meth:`CascadeRouter.reconcile` together with this ticket.
    """

    rule_key: str
    predicted: bool
    tier: str


@dataclass
class CascadeStats:
    """Router-side accounting, folded into ``ServeStats.to_table``."""

    #: route() calls that carried provenance
    routed: int = 0
    #: requests answered by a compiled micro-rule
    micro_hits: int = 0
    #: requests answered by a corroborated filterlist rule
    list_hits: int = 0
    #: rule predictions sent to the model for verification
    audits: int = 0
    #: requests no rule spoke for
    misses: int = 0
    #: micro-rules compiled from confident model verdicts
    compiled: int = 0
    #: rules invalidated while reconciling an explicit audit ticket —
    #: the sampled verification cadence caught the drift
    audit_invalidations: int = 0
    #: rules invalidated by a shadow comparison in :meth:`absorb` — a
    #: model verdict computed for other reasons disagreed with the
    #: serving rule between audits
    shadow_invalidations: int = 0
    #: confident model verdicts folded back into the cache
    absorbed: int = 0
    #: model verdicts too uncertain to compile
    unconfident: int = 0

    @property
    def rule_hits(self) -> int:
        return self.micro_hits + self.list_hits

    @property
    def invalidations(self) -> int:
        """Total rules invalidated by the healer, either source."""
        return self.audit_invalidations + self.shadow_invalidations


class CascadeRouter:
    """Filterlist-first confidence router with a self-healing cache."""

    def __init__(
        self,
        filter_engine: Optional[FilterEngine] = None,
        confidence: float = 0.9,
        cache: Optional[CompiledRuleCache] = None,
        audit_interval: int = 16,
        corroboration: int = 2,
        invalidate_after: int = 2,
    ) -> None:
        if not 0.5 < confidence <= 1.0:
            raise ValueError(
                f"cascade confidence must be in (0.5, 1.0], got {confidence}"
            )
        self.filter_engine = filter_engine
        self.confidence = confidence
        self.cache = cache if cache is not None else CompiledRuleCache()
        self.healer = RuleHealer(
            self.cache,
            audit_interval=audit_interval,
            corroboration=corroboration,
            invalidate_after=invalidate_after,
        )
        self.stats = CascadeStats()

    @classmethod
    def with_default_filterlist(
        cls, confidence: float = 0.9, **kwargs
    ) -> "CascadeRouter":
        """Router over the default synthetic EasyList engine."""
        # leaf import: keep the filterlist out of serve's import graph
        # until a cascade is actually constructed
        from repro.filterlist.easylist import default_easylist

        return cls(default_easylist(), confidence=confidence, **kwargs)

    # ------------------------------------------------------------------
    # The three router verbs
    # ------------------------------------------------------------------
    def route(
        self, provenance: Optional[FrameProvenance]
    ) -> "CascadeHit | CascadeAudit | None":
        """Try to decide a frame from its provenance alone."""
        if provenance is None:
            return None
        self.stats.routed += 1

        # tier 0a: compiled micro-rules (model-corroborated, serving)
        rule = self.cache.get(provenance.micro_key())
        if rule is not None and rule.serving:
            if self.healer.should_audit(rule):
                self.stats.audits += 1
                return CascadeAudit(rule.key, rule.verdict, TIER_MICRO)
            self.stats.micro_hits += 1
            return CascadeHit(self._decision(rule), TIER_MICRO, rule.key)

        # tier 0b: filterlist network/hiding rules on the provenance
        list_rule = self._filterlist_match(provenance)
        if list_rule is not None and not list_rule.invalidated:
            if list_rule.serving:
                if self.healer.should_audit(list_rule):
                    self.stats.audits += 1
                    return CascadeAudit(
                        list_rule.key, list_rule.verdict, TIER_LIST
                    )
                self.stats.list_hits += 1
                return CascadeHit(
                    self._decision(list_rule), TIER_LIST, list_rule.key
                )
            # corroboration warmup: predict, but let the model answer
            self.stats.audits += 1
            return CascadeAudit(list_rule.key, list_rule.verdict, TIER_LIST)

        self.stats.misses += 1
        return None

    def reconcile(self, audit: CascadeAudit, model_is_ad: bool) -> None:
        """Feed a model verdict back to the audited rule's health."""
        rule = self.cache.get(audit.rule_key)
        if rule is None:
            return
        before = self.cache.invalidated_count
        self.healer.observe(rule, bool(model_is_ad) == audit.predicted)
        self.stats.audit_invalidations += (
            self.cache.invalidated_count - before
        )

    def absorb(
        self,
        provenance: Optional[FrameProvenance],
        decision: Optional[BlockDecision],
    ) -> None:
        """Fold a model-derived verdict back into the micro-rule cache.

        Confident verdicts compile new micro-rules; for sources that
        already hold a rule, the verdict is a free shadow comparison —
        drift surfaces here even between audits.
        """
        if provenance is None or decision is None:
            return
        # validate the source before deriving a key from it: a
        # sourceless provenance must never reach micro_key()
        if not provenance.source:
            return
        key = provenance.micro_key()
        existing = self.cache.get(key)
        if existing is not None:
            before = self.cache.invalidated_count
            self.healer.observe(existing, existing.verdict == decision.is_ad)
            self.stats.shadow_invalidations += (
                self.cache.invalidated_count - before
            )
            return
        confidence = max(decision.probability, 1.0 - decision.probability)
        if confidence < self.confidence:
            self.stats.unconfident += 1
            return
        compiled = self.cache.compile_rule(
            key, decision.is_ad, decision.probability
        )
        if compiled is not None:
            self.stats.compiled += 1
            self.stats.absorbed += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _decision(rule: CascadeRule) -> BlockDecision:
        # from_cache=True: no fresh classification was performed
        return BlockDecision(
            is_ad=rule.verdict,
            probability=rule.probability,
            from_cache=True,
        )

    def _filterlist_match(
        self, provenance: FrameProvenance
    ) -> Optional[CascadeRule]:
        """Health entry for the first filterlist rule matching the
        frame's provenance, or ``None``.  Matches always predict "ad"
        (a blocking/hiding rule fired); exceptions fall through."""
        engine = self.filter_engine
        if engine is None:
            return None
        if provenance.url:
            decision = engine.check_request(
                provenance.url, provenance.page_domain, "image"
            )
            if decision.blocked and decision.rule is not None:
                key = (
                    f"list|{provenance.page_domain}|net:{decision.rule.raw}"
                )
                return self.cache.ensure_list_rule(key, True, 1.0)
        if provenance.tag or provenance.css_classes or provenance.element_id:
            hide = engine.should_hide_element(
                provenance.tag,
                provenance.css_classes,
                provenance.element_id,
                provenance.page_domain,
            )
            if hide is not None:
                key = f"list|{provenance.page_domain}|hide:{hide.raw}"
                return self.cache.ensure_list_rule(key, True, 1.0)
        return None


def resolve_cascade(
    cascade: "CascadeRouter | None | bool",
    config,
) -> Optional[CascadeRouter]:
    """Normalize a ``cascade=`` constructor argument.

    ``None`` defers to the configuration (``PercivalConfig.
    cascade_enabled`` / the ``PERCIVAL_CASCADE`` knob) and builds the
    default filterlist-backed router when enabled; ``False`` pins the
    cascade off regardless of the environment (the bit-identical
    pre-cascade path); a router instance is used as-is.
    """
    from repro.core.config import configured_cascade_enabled

    if cascade is False:
        return None
    if isinstance(cascade, CascadeRouter):
        return cascade
    if cascade is not None:
        raise TypeError(
            "cascade must be a CascadeRouter, None (auto), or False (off)"
        )
    if configured_cascade_enabled(getattr(config, "cascade_enabled", None)):
        return CascadeRouter.with_default_filterlist(
            confidence=getattr(config, "cascade_confidence", 0.9)
        )
    return None
