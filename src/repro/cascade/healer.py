"""The healer: audit cadence + drift-driven rule invalidation.

Every rule-tier prediction is either *served* (answered without the
CNN) or *audited* (the frame still goes to the CNN and the rule's
prediction is compared against the model's verdict).  The healer owns
both decisions:

* **cadence** — a serving rule's every ``audit_interval``-th hit is
  audited, so even a perfectly-agreeing rule keeps paying a bounded
  sampling tax that detects drift;
* **corroboration** — a non-serving rule (an external filterlist match
  that the model has not yet vouched for) audits *every* prediction
  until it has ``corroboration`` model agreements and no standing
  disagreement, at which point it is promoted to serving;
* **invalidation** — ``invalidate_after`` disagreements with the model
  permanently invalidate the rule (quarantined in the cache), and its
  frames re-route to the CNN.

Agreements never erase disagreements: a rule that is wrong
``invalidate_after`` times over its whole life is out, no matter how
often it was right in between — drift detection, not a reputation
score.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cascade.rules import ORIGIN_LIST, CascadeRule, CompiledRuleCache


@dataclass
class RuleHealer:
    """Health bookkeeping for cascade rules (pure policy, no I/O)."""

    cache: CompiledRuleCache
    #: serving rules re-verify every Nth hit (0 disables sampling —
    #: rules then only heal through absorb-time shadow comparisons)
    audit_interval: int = 16
    #: model agreements an external (list) rule needs before serving
    corroboration: int = 2
    #: model disagreements that invalidate a rule
    invalidate_after: int = 2

    def __post_init__(self) -> None:
        if self.audit_interval < 0:
            raise ValueError("audit_interval must be >= 0")
        if self.corroboration < 1:
            raise ValueError("corroboration must be >= 1")
        if self.invalidate_after < 1:
            raise ValueError("invalidate_after must be >= 1")

    def should_audit(self, rule: CascadeRule) -> bool:
        """Record one hit on a serving rule; True = audit this one."""
        rule.hits += 1
        if self.audit_interval and rule.hits % self.audit_interval == 0:
            rule.audits += 1
            return True
        return False

    def observe(self, rule: CascadeRule, agreed: bool) -> None:
        """Fold one rule-vs-model comparison into the rule's health.

        Disagreement counts toward invalidation; agreement counts
        toward a list rule's corroboration-based promotion to serving.
        """
        if rule.invalidated:
            return
        if agreed:
            rule.agreements += 1
            if (
                rule.origin == ORIGIN_LIST
                and not rule.serving
                and rule.disagreements == 0
                and rule.agreements >= self.corroboration
            ):
                rule.serving = True
            return
        rule.disagreements += 1
        if rule.disagreements >= self.invalidate_after:
            self.cache.invalidate(rule)
