"""``repro.cascade``: filterlist-first confidence routing for serving.

PERCIVAL's CNN decides every frame the rendering path feeds it — but
most frames don't need a forward pass to decide.  The cascade puts two
cheap structural tiers in front of the model (the AdGraph/WebGraph
fusion argument, applied to the serving stack):

1. **filterlist** — the frame's provenance (URL, DOM path) is checked
   against the EasyList-style :class:`~repro.filterlist.engine.
   FilterEngine` network and element-hiding rules, and
2. **compiled micro-rules** — a per-site cache of rules compiled from
   the CNN's own prior *confident* verdicts, keyed on the frame's
   traffic source (ad network + path + size class), so a creative
   rotation from an already-judged slot never pays another forward.

Only low-confidence residuals reach the CNN, and every confident CNN
verdict is compiled back into the micro-rule cache.  A **healer** keeps
the rule tiers honest: rule predictions are audited against the model
(every rule serves its first verdicts under model corroboration, and a
sampled fraction forever after), and a rule that disagrees with the
model repeatedly is invalidated and its frames re-route to the CNN —
stale-list self-healing, with the CNN as the ground truth.

The cascade is strictly *in front of* :class:`~repro.core.blocker.
PercivalBlocker`: with the ``PERCIVAL_CASCADE`` knob off (the default)
nothing here is constructed and the serving stack is bit-identical to
the pre-cascade pipeline.  See ``docs/cascade.md``.
"""

from repro.cascade.healer import RuleHealer
from repro.cascade.provenance import FrameProvenance
from repro.cascade.router import (
    CascadeAudit,
    CascadeHit,
    CascadeRouter,
    CascadeStats,
)
from repro.cascade.rules import CascadeRule, CompiledRuleCache

__all__ = [
    "CascadeAudit",
    "CascadeHit",
    "CascadeRouter",
    "CascadeRule",
    "CascadeStats",
    "CompiledRuleCache",
    "FrameProvenance",
    "RuleHealer",
]
