"""Incremental re-classification: per-session snapshot/diff layer.

The ROADMAP's gap between demo scale and million-user scale is that a
scroll or feed update re-fingerprints the whole page even though almost
nothing changed.  This package closes it with structure deltas (the
AdGraph/WebGraph observation, applied to serving): each session stores
a :class:`~repro.diff.snapshot.PageSnapshot` of what a page looked
like, :func:`~repro.diff.tree_diff.tree_diff` classifies the next
visit's regions as added/removed/changed/moved/restyled/unchanged, and
the :func:`~repro.diff.semantic_filter.semantic_filter` decides which
regions re-classify versus inheriting their stored verdict — making
the per-interaction cost O(delta) instead of O(page).

Everything is behind the ``PERCIVAL_DIFF`` knob; off is bit-identical
to the pre-diff pipeline.
"""

from repro.diff.differ import DiffStats, FrameDiffer, resolve_differ
from repro.diff.semantic_filter import DiffPlan, semantic_filter
from repro.diff.snapshot import (
    PageSnapshot,
    RegionRecord,
    RegionView,
    SnapshotStats,
    SnapshotStore,
    content_key_for_payload,
    display_digest,
)
from repro.diff.tree_diff import TreeDiff, apply_diff, tree_diff

__all__ = [
    "DiffPlan",
    "DiffStats",
    "FrameDiffer",
    "PageSnapshot",
    "RegionRecord",
    "RegionView",
    "SnapshotStats",
    "SnapshotStore",
    "TreeDiff",
    "apply_diff",
    "content_key_for_payload",
    "display_digest",
    "resolve_differ",
    "semantic_filter",
    "tree_diff",
]
