"""Per-session page snapshots: what the last visit looked like.

A :class:`PageSnapshot` is the differ's unit of memory — one browsing
session's last observation of one page, recorded at raster time: every
image region's resolved geometry, its style key, a **content key**
(hash of the still-encoded payload, so re-probing it on the next visit
costs a dict lookup, not a decode), and the classification verdict the
region settled with.  :class:`SnapshotStore` is the LRU keeping those
snapshots browser-profile sized, keyed by ``(session, page)``.

The snapshot deliberately stores the *encoded* content hash rather
than the pixel fingerprint: the whole point of the diff layer is to
answer "did this region change?" before any pixels exist, which is
also why the verdict is carried inline — an unchanged region inherits
it without ever reaching the fingerprint/memo path.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Optional, Tuple

from repro.core.blocker import BlockDecision


@dataclass(frozen=True)
class RegionView:
    """One image region as observed on the *current* visit.

    ``content_key`` is a cheap pre-decode hash of the region's encoded
    payload (see :func:`content_key_for_payload`); ``style_key``
    condenses the owning element's computed style identity.  Geometry
    is the display-list rect the region rasters into.
    """

    url: str
    content_key: str
    x: int = 0
    y: int = 0
    width: int = 0
    height: int = 0
    style_key: str = ""

    @property
    def rect(self) -> Tuple[int, int, int, int]:
        return (self.x, self.y, self.width, self.height)


@dataclass(frozen=True)
class RegionRecord:
    """One region as stored in a snapshot: a view plus its verdict.

    ``probability is None`` means the region settled without a full
    decision record (e.g. a duck-typed blocker with no memo) — such a
    region still diffs structurally but is never verdict-inheritable.
    """

    url: str
    content_key: str
    x: int = 0
    y: int = 0
    width: int = 0
    height: int = 0
    style_key: str = ""
    is_ad: Optional[bool] = None
    probability: Optional[float] = None

    @classmethod
    def from_view(
        cls,
        view: RegionView,
        is_ad: Optional[bool] = None,
        probability: Optional[float] = None,
    ) -> "RegionRecord":
        return cls(
            url=view.url,
            content_key=view.content_key,
            x=view.x,
            y=view.y,
            width=view.width,
            height=view.height,
            style_key=view.style_key,
            is_ad=is_ad,
            probability=probability,
        )

    @property
    def rect(self) -> Tuple[int, int, int, int]:
        return (self.x, self.y, self.width, self.height)

    @property
    def inheritable(self) -> bool:
        """Can a matching region on the next visit settle from this
        record?  Requires a full decision (verdict + probability): the
        inherited :class:`BlockDecision` must be bit-identical to what
        the memo path would have returned."""
        return self.is_ad is not None and self.probability is not None

    def verdict(self) -> Optional[BlockDecision]:
        """The stored verdict as a served decision (``from_cache=True``
        — no fresh classification happened), or ``None`` when the
        region never settled with a full decision."""
        if not self.inheritable:
            return None
        return BlockDecision(
            is_ad=bool(self.is_ad),
            probability=float(self.probability),
            from_cache=True,
        )

    def view(self) -> RegionView:
        """The structural part of the record, as a view."""
        return RegionView(
            url=self.url,
            content_key=self.content_key,
            x=self.x,
            y=self.y,
            width=self.width,
            height=self.height,
            style_key=self.style_key,
        )


def content_key_for_payload(payload: bytes, format_name: str = "") -> str:
    """Content hash of a region's *encoded* bytes (pre-decode, cheap).

    This is the tile-level content memo: two visits whose region bytes
    hash equal are pixel-identical without either visit decoding."""
    digest = hashlib.blake2b(digest_size=8)
    digest.update(format_name.encode("utf-8", errors="replace"))
    digest.update(b"\x00")
    digest.update(payload)
    return digest.hexdigest()


def display_digest(regions: Iterable[RegionView]) -> str:
    """Order-sensitive digest of a visit's full region layout — equal
    digests mean the page is structurally identical (fast path for the
    very common "nothing changed at all" revisit)."""
    digest = hashlib.blake2b(digest_size=8)
    for view in regions:
        digest.update(
            f"{view.url}|{view.content_key}|{view.rect}|{view.style_key}\n"
            .encode("utf-8", errors="replace")
        )
    return digest.hexdigest()


@dataclass
class PageSnapshot:
    """One session's stored observation of one page."""

    session_id: str
    page_key: str
    #: how many visits have been committed into this snapshot
    visits: int = 0
    #: region URL -> stored record (one region per resource URL, the
    #: same identity the renderer's image cache uses)
    regions: Dict[str, RegionRecord] = field(default_factory=dict)
    #: digest of the last committed visit's layout
    digest: str = ""

    def get(self, url: str) -> Optional[RegionRecord]:
        return self.regions.get(url)


@dataclass
class SnapshotStats:
    """Bookkeeping for one store instance."""

    #: snapshots committed (page-level) or upserted into (region-level)
    commits: int = 0
    #: region records written
    regions_recorded: int = 0
    #: snapshots dropped by the LRU bound
    evictions: int = 0
    #: read probes that found a snapshot
    lookups: int = 0
    hits: int = 0


class SnapshotStore:
    """LRU of :class:`PageSnapshot`, keyed by ``(session, page)``.

    Session-scoped on purpose: a snapshot encodes what *this user's
    browser* showed last time, so one session's layout never leaks
    into another's diff (cross-session sharing is the memo's job, one
    tier below)."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("snapshot capacity must be positive")
        self._snapshots: "OrderedDict[Tuple[str, str], PageSnapshot]" = (
            OrderedDict()
        )
        self._capacity = capacity
        self.stats = SnapshotStats()

    def __len__(self) -> int:
        return len(self._snapshots)

    @property
    def capacity(self) -> int:
        return self._capacity

    def get(self, session_id: str, page_key: str) -> Optional[PageSnapshot]:
        """The stored snapshot, or ``None``.  A read-only probe: LRU
        order moves only on commit, so speculative diff probes never
        churn eviction (the same contract as
        :meth:`repro.core.revisit.RevisitMemory.contains`)."""
        self.stats.lookups += 1
        snapshot = self._snapshots.get((session_id, page_key))
        if snapshot is not None:
            self.stats.hits += 1
        return snapshot

    def commit(
        self,
        session_id: str,
        page_key: str,
        records: Iterable[RegionRecord],
    ) -> PageSnapshot:
        """Replace the ``(session, page)`` snapshot with a full visit's
        region records (the renderer's page-level capture)."""
        regions = {record.url: record for record in records}
        snapshot = self._snapshots.get((session_id, page_key))
        visits = snapshot.visits + 1 if snapshot is not None else 1
        snapshot = PageSnapshot(
            session_id=session_id,
            page_key=page_key,
            visits=visits,
            regions=regions,
            digest=display_digest(r.view() for r in regions.values()),
        )
        self._store(session_id, page_key, snapshot)
        self.stats.commits += 1
        self.stats.regions_recorded += len(regions)
        return snapshot

    def upsert_region(
        self, session_id: str, page_key: str, record: RegionRecord
    ) -> PageSnapshot:
        """Fold one settled region into the ``(session, page)``
        snapshot, creating it if absent (the serve loop's streaming
        capture — verdicts land one flush at a time, not per page)."""
        snapshot = self._snapshots.get((session_id, page_key))
        if snapshot is None:
            snapshot = PageSnapshot(
                session_id=session_id, page_key=page_key, visits=1
            )
        snapshot.regions[record.url] = record
        snapshot.digest = display_digest(
            r.view() for r in snapshot.regions.values()
        )
        self._store(session_id, page_key, snapshot)
        self.stats.commits += 1
        self.stats.regions_recorded += 1
        return snapshot

    def refresh_verdict(
        self,
        session_id: str,
        page_key: str,
        url: str,
        is_ad: bool,
        probability: float,
    ) -> None:
        """Update a stored region's verdict in place (same content)."""
        snapshot = self._snapshots.get((session_id, page_key))
        if snapshot is None:
            return
        record = snapshot.regions.get(url)
        if record is None:
            return
        snapshot.regions[url] = replace(
            record, is_ad=bool(is_ad), probability=float(probability)
        )

    def clear(self) -> None:
        self._snapshots.clear()

    def _store(
        self, session_id: str, page_key: str, snapshot: PageSnapshot
    ) -> None:
        key = (session_id, page_key)
        self._snapshots[key] = snapshot
        self._snapshots.move_to_end(key)
        while len(self._snapshots) > self._capacity:
            self._snapshots.popitem(last=False)
            self.stats.evictions += 1
