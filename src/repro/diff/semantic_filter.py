"""The semantic filter: which changed regions actually need the CNN.

A tree diff is structural; this module is the policy layer that turns
it into work: every region of the current visit is partitioned into

* **inherit** — the region's content is byte-identical to the snapshot
  (unchanged / moved / restyled) *and* the snapshot holds a full
  decision for it.  The stored verdict settles the region with
  ``from_cache=True`` before any decode, fingerprint, or queue entry.
  Inheritance is sound because the verdict is a pure function of the
  pixels (§3.2): position and style do not feed the classifier, so a
  moved or restyled region cannot flip.
* **reclassify** — new content (added / changed), or identical content
  whose snapshot never settled with a full decision.  These take the
  normal pipeline and their fresh verdicts refresh the snapshot.

Removed regions need no classification at all; when a read-only
revisit-memory probe says a removed region was a known blocked ad, it
is counted — that is the signal the §6 revisit collapse acts on one
layer up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.diff.snapshot import PageSnapshot, RegionRecord, RegionView
from repro.diff.tree_diff import TreeDiff


@dataclass
class DiffPlan:
    """The filter's partition of one visit's regions."""

    #: (current view, stored record) pairs settling from the snapshot
    inherit: List[Tuple[RegionView, RegionRecord]] = field(
        default_factory=list
    )
    #: regions that must take the full classification pipeline
    reclassify: List[RegionView] = field(default_factory=list)
    #: snapshot regions absent from this visit
    removed: List[str] = field(default_factory=list)
    #: removed regions the revisit memory already knows as blocked
    removed_known_blocked: int = 0

    @property
    def inherited_urls(self) -> Set[str]:
        return {view.url for view, _ in self.inherit}

    @property
    def total_regions(self) -> int:
        return len(self.inherit) + len(self.reclassify)


def semantic_filter(
    diff: TreeDiff,
    snapshot: Optional[PageSnapshot],
    revisit_memory=None,
) -> DiffPlan:
    """Partition a :class:`TreeDiff` into inherit/reclassify work.

    ``revisit_memory`` is probed with the read-only ``contains()`` only
    — a speculative diff probe must never churn the memory's LRU order
    or its collapse stats (that was the probe/commit bug this layer's
    satellite fix split apart).
    """
    plan = DiffPlan()
    plan.removed = list(diff.removed)
    for view in diff.added:
        plan.reclassify.append(view)
    for view in diff.changed:
        plan.reclassify.append(view)
    for bucket in (diff.unchanged, diff.moved, diff.restyled):
        for view in bucket:
            record = snapshot.get(view.url) if snapshot is not None else None
            if record is not None and record.inheritable:
                plan.inherit.append((view, record))
            else:
                plan.reclassify.append(view)
    if revisit_memory is not None:
        contains = getattr(revisit_memory, "contains", None)
        if contains is not None:
            plan.removed_known_blocked = sum(
                1 for url in plan.removed if contains(url)
            )
    return plan
