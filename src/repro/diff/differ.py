"""The differ facade: snapshot capture, diff planning, verdict recall.

:class:`FrameDiffer` is the object the rest of the stack holds.  It
wraps one :class:`~repro.diff.snapshot.SnapshotStore` and exposes the
two granularities the pipeline needs:

* **page-level** (the renderer): :meth:`plan` diffs a visit's region
  views against the stored snapshot and returns the semantic filter's
  inherit/reclassify partition before any decode happens;
  :meth:`commit` replaces the snapshot with the visit's settled
  records after raster.
* **region-level** (the serve loop): :meth:`recall` answers one
  arriving frame from its session's snapshot — before the fingerprint
  is even computed — and :meth:`remember` streams settled verdicts
  back in, one flush at a time.

Like every speed layer before it (workers, precision, lanes, cascade),
the differ is **off by default** and the off-path is bit-identical:
:func:`resolve_differ` mirrors ``resolve_cascade`` — ``None`` defers
to the ``PERCIVAL_DIFF`` knob, ``False`` pins it off, an instance is
used as-is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.blocker import BlockDecision
from repro.diff.semantic_filter import DiffPlan, semantic_filter
from repro.diff.snapshot import (
    PageSnapshot,
    RegionRecord,
    RegionView,
    SnapshotStore,
)
from repro.diff.tree_diff import TreeDiff, tree_diff


@dataclass
class DiffStats:
    """Differ-side accounting, mirrored into ``ServeStats``/metrics."""

    #: page-level plans computed
    pages_planned: int = 0
    #: plans whose diff was empty (identical revisit — the fast path)
    identical_pages: int = 0
    #: regions settled from a stored verdict (no decode, no memo probe)
    regions_inherited: int = 0
    #: regions routed down the normal classification pipeline
    regions_reclassified: int = 0
    #: region-level recall probes / hits (serve-loop tier)
    recalls: int = 0
    recall_hits: int = 0
    #: settled verdicts streamed back into snapshots
    remembered: int = 0


class FrameDiffer:
    """Session-scoped snapshot/diff layer in front of the pipeline."""

    def __init__(
        self,
        store: Optional[SnapshotStore] = None,
        capacity: Optional[int] = None,
    ) -> None:
        if store is not None and capacity is not None:
            raise ValueError("pass a store or a capacity, not both")
        if store is None:
            store = SnapshotStore(
                capacity if capacity is not None else 512
            )
        self.store = store
        self.stats = DiffStats()

    # ------------------------------------------------------------------
    # Page-level (renderer): plan before decode, commit after raster
    # ------------------------------------------------------------------
    def diff(
        self,
        session_id: str,
        page_key: str,
        regions: Iterable[RegionView],
    ) -> TreeDiff:
        """Raw tree diff of a visit against its stored snapshot."""
        snapshot = self.store.get(session_id, page_key)
        return tree_diff(snapshot, regions)

    def plan(
        self,
        session_id: str,
        page_key: str,
        regions: Iterable[RegionView],
        revisit_memory=None,
    ) -> DiffPlan:
        """Diff + semantic filter: which regions inherit their stored
        verdict and which must re-classify, decided before any pixel
        of the visit is decoded."""
        snapshot = self.store.get(session_id, page_key)
        diff = tree_diff(snapshot, list(regions))
        plan = semantic_filter(diff, snapshot, revisit_memory)
        self.stats.pages_planned += 1
        if diff.is_empty:
            self.stats.identical_pages += 1
        self.stats.regions_inherited += len(plan.inherit)
        self.stats.regions_reclassified += len(plan.reclassify)
        return plan

    def commit(
        self,
        session_id: str,
        page_key: str,
        records: Iterable[RegionRecord],
    ) -> PageSnapshot:
        """Replace the session's snapshot with this visit's records."""
        snapshot = self.store.commit(session_id, page_key, records)
        self.stats.remembered += len(snapshot.regions)
        return snapshot

    # ------------------------------------------------------------------
    # Region-level (serve loop): recall at arrival, remember at settle
    # ------------------------------------------------------------------
    def recall(
        self,
        session_id: str,
        page_key: str,
        url: str,
        content_key: str,
    ) -> Optional[BlockDecision]:
        """Stored verdict for an arriving frame, or ``None``.

        Hits only when the session's snapshot holds this URL with the
        *same* content key and a full decision — the serving tier that
        answers before the request's bitmap is ever fingerprinted."""
        if not url or not content_key:
            return None
        self.stats.recalls += 1
        snapshot = self.store.get(session_id, page_key)
        if snapshot is None:
            return None
        record = snapshot.get(url)
        if record is None or record.content_key != content_key:
            return None
        decision = record.verdict()
        if decision is not None:
            self.stats.recall_hits += 1
        return decision

    def remember(
        self,
        session_id: str,
        page_key: str,
        record: RegionRecord,
    ) -> None:
        """Stream one settled region into the session's snapshot."""
        if not record.url or not record.content_key:
            return
        self.store.upsert_region(session_id, page_key, record)
        self.stats.remembered += 1


def resolve_differ(
    differ: "FrameDiffer | None | bool",
    config,
) -> Optional[FrameDiffer]:
    """Normalize a ``differ=`` constructor argument.

    ``None`` defers to the configuration (``PercivalConfig.
    diff_enabled`` / the ``PERCIVAL_DIFF`` knob) and builds a default
    store when enabled; ``False`` pins the differ off regardless of the
    environment (the bit-identical pre-diff path); a
    :class:`FrameDiffer` instance is used as-is.
    """
    from repro.core.config import (
        configured_diff_capacity,
        configured_diff_enabled,
    )

    if differ is False:
        return None
    if isinstance(differ, FrameDiffer):
        return differ
    if differ is not None:
        raise TypeError(
            "differ must be a FrameDiffer, None (auto), or False (off)"
        )
    if configured_diff_enabled(getattr(config, "diff_enabled", None)):
        return FrameDiffer(capacity=configured_diff_capacity())
    return None
