"""Element-level diff of a page visit against its stored snapshot.

``tree_diff`` classifies every region of the current visit against the
snapshot the same way a DOM differ classifies elements:

* **added** — the URL was not in the snapshot;
* **removed** — a snapshot URL no longer appears in the visit;
* **changed** — same URL, different content key: the region's encoded
  bytes differ, so its pixels (and possibly its verdict) differ;
* **moved** — same URL and content, different rect: a feed update
  pushed the slot down the page;
* **restyled** — same URL, content, and rect, different style key;
* **unchanged** — byte-for-byte the same region in the same place.

The split matters because the semantic filter treats them differently:
content changes must re-classify, pure layout/style changes must not —
PERCIVAL's verdict is a function of pixels, not position (§3.2), which
is exactly what makes moved/restyled regions verdict-inheritable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.diff.snapshot import PageSnapshot, RegionRecord, RegionView


@dataclass
class TreeDiff:
    """Outcome of diffing one visit against one snapshot."""

    #: no snapshot existed: every region is a first encounter
    first_visit: bool = False
    added: List[RegionView] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    changed: List[RegionView] = field(default_factory=list)
    moved: List[RegionView] = field(default_factory=list)
    restyled: List[RegionView] = field(default_factory=list)
    unchanged: List[RegionView] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        """True when the visit reproduces the snapshot exactly."""
        return not (
            self.first_visit
            or self.added
            or self.removed
            or self.changed
            or self.moved
            or self.restyled
        )

    @property
    def total_regions(self) -> int:
        """Regions observed on the current visit."""
        return (
            len(self.added)
            + len(self.changed)
            + len(self.moved)
            + len(self.restyled)
            + len(self.unchanged)
        )

    @property
    def delta_regions(self) -> int:
        """Regions whose *content* differs from the snapshot — the
        O(delta) the incremental layer pays for."""
        return len(self.added) + len(self.changed)

    @property
    def delta_fraction(self) -> float:
        if not self.total_regions:
            return 0.0
        return self.delta_regions / self.total_regions


def tree_diff(
    snapshot: Optional[PageSnapshot], regions: Iterable[RegionView]
) -> TreeDiff:
    """Diff the current visit's ``regions`` against ``snapshot``.

    Regions are keyed by resource URL (one region per URL — the same
    identity the renderer's image cache and the revisit memory use);
    when a visit repeats a URL the last observation wins, matching the
    decoded-image cache's behaviour.
    """
    current: Dict[str, RegionView] = {view.url: view for view in regions}
    diff = TreeDiff()
    if snapshot is None:
        diff.first_visit = True
        diff.added.extend(current.values())
        return diff
    for url, view in current.items():
        old = snapshot.get(url)
        if old is None:
            diff.added.append(view)
        elif old.content_key != view.content_key:
            diff.changed.append(view)
        elif old.rect != view.rect:
            diff.moved.append(view)
        elif old.style_key != view.style_key:
            diff.restyled.append(view)
        else:
            diff.unchanged.append(view)
    for url in snapshot.regions:
        if url not in current:
            diff.removed.append(url)
    return diff


def apply_diff(
    old_regions: Mapping[str, RegionRecord], diff: TreeDiff
) -> Dict[str, RegionView]:
    """Reconstruct the *new* visit's region map from the old snapshot
    plus a diff — the differ's round-trip law (property-tested):

        ``apply_diff(snapshot.regions, tree_diff(snapshot, views))``
        equals ``{view.url: view for view in views}``.

    Unchanged regions come from the snapshot; every other category
    carries its new observation inline; removed URLs are dropped.
    """
    result: Dict[str, RegionView] = {}
    for view in diff.unchanged:
        old = old_regions.get(view.url)
        result[view.url] = old.view() if old is not None else view
    for bucket in (diff.added, diff.changed, diff.moved, diff.restyled):
        for view in bucket:
            result[view.url] = view
    return result
