"""The serving layer: deterministic simulation loop + asyncio front door.

Two drivers share the same :class:`~repro.serve.queue.BatchQueue`,
memoization contract, and metrics:

* :class:`ServeLoop` — a **deterministic** discrete-event simulator on a
  :class:`~repro.utils.clock.VirtualClock` (the same device the
  renderer's ``WorkerLanes`` use).  Classification is *real* — every
  flush calls ``PercivalBlocker.decide_many``, which may scatter across
  the worker pool — but time is virtual, so latency distributions,
  backpressure behaviour, and failure injections replay bit-identically
  run after run.  This is what the property/fault harness and the
  ``serve-sim`` CLI drive.
* :class:`AsyncServeFront` — the ``asyncio`` front door for real
  concurrent callers: ``await front.submit(bitmap)`` resolves to a
  :class:`~repro.core.blocker.BlockDecision` once the request's batch
  flushes (on ``max_batch`` or the ``max_wait_ms`` timer, whichever
  first).

Compute is modelled as a set of **lanes**.  The simulator sizes the set
from the attached worker pool's capacity (override:
``ServeSettings.lanes`` / ``PERCIVAL_SERVE_LANES``), and a due batch
dispatches as soon as *any* lane is free — so a 2-worker pool really
does overlap two flushes in virtual time instead of serializing them
behind one scalar.  Dispatch tie-breaks on the lowest free lane index,
which keeps the discrete-event schedule fully deterministic; one lane
reproduces the pre-lane serializing loop exactly.

Both drivers resolve duplicate work without spending compute on it.
With a :class:`~repro.cascade.CascadeRouter` attached (``cascade=`` /
the ``PERCIVAL_CASCADE`` knob), a request carrying frame provenance is
first offered to the **cascade rule tiers** — a structural verdict
(compiled micro-rule or corroborated filterlist match) answers at
arrival without a memo probe, a queue entry, or lane time, and rule
predictions under audit carry a ticket down the normal path so the
model verdict heals the rule.  Then the classic tiers: a fingerprint
that hits the blocker's **memo** is answered immediately and never
enters the queue (cross-session sharing — the paper's memoized
deployment, lifted above the page), and a fingerprint already
**queued** coalesces onto the queued request as a rider, sharing its
verdict without consuming queue depth or a batch slot.  With a
:class:`~repro.diff.FrameDiffer` attached (``differ=`` / the
``PERCIVAL_DIFF`` knob), one more tier runs in front of all of these:
a request whose ``(session, page, url, content_key)`` matches the
session's stored page snapshot inherits the snapshot's verdict before
the bitmap is even fingerprinted — the O(delta) revisit path.  Tier
order is diff-hit → rule-hit → memo-hit → coalesce → queue; with the
cascade and differ off nothing changes, bit for bit.

Admission control is explicit: a full queue sheds the request — the
simulator records it, the asyncio front raises
:class:`ServeOverloadError` — so overload degrades visibly instead of
growing an unbounded queue.

Both drivers also host the **resilience plane**
(:mod:`repro.resilience`): a seeded chaos schedule (``chaos=`` / the
``PERCIVAL_CHAOS`` knob) injects worker death, tier outages, and
latency spikes at planned virtual ticks; per-tier circuit breakers
stop consulting a failing tier; and the SLO-driven degradation ladder
browns features out (wider deadlines → no diff → no cascade → drop
below-fold → shed) before shedding everything.  The standing invariant
is the same one the speed tiers obey: a fault moves *where or whether*
work happens, never the value of a served P(ad), and the conservation
ledger (submitted = answered + shed + failed) balances under every
schedule.  With chaos and resilience off (the default) nothing
changes, bit for bit.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.cascade.provenance import FrameProvenance
from repro.cascade.router import CascadeHit, CascadeRouter, resolve_cascade
from repro.core.blocker import BlockDecision, PercivalBlocker
from repro.core.config import (
    ServeSettings,
    configured_serve_lanes,
    configured_serve_settings,
)
from repro.diff.differ import FrameDiffer, resolve_differ
from repro.diff.snapshot import RegionRecord
from repro.resilience.chaos import (
    ChaosCursor,
    ChaosInjectedError,
    ChaosSchedule,
    resolve_chaos,
)
from repro.resilience.plane import ResiliencePlane, resolve_resilience
from repro.serve.metrics import ServeStats
from repro.serve.queue import PRIORITY_VIEWPORT, BatchQueue, ServeRequest
from repro.utils.clock import VirtualClock


class ServeOverloadError(RuntimeError):
    """The request was shed at admission: queue depth is at its bound.

    Explicit backpressure — callers decide whether to retry, degrade
    (render without a verdict, as async mode already does), or surface
    the overload.  The serving layer never queues unboundedly and never
    drops a request silently.
    """


class ServeClosedError(RuntimeError):
    """The front door was closed; the request was never admitted.

    Raised by :meth:`AsyncServeFront.submit` after :meth:`aclose` — a
    closed front has drained its queue and released its executor, so
    admitting more work could only hang the caller.
    """


def _pool_capacity(pool: object) -> int:
    """Worker slots ``pool`` exposes right now (0 = no pool / no
    capacity signal).  A non-blocking probe: duck-typed on the
    ``available_capacity`` attribute so stub pools, closed pools, and
    ``None`` all read as zero instead of raising."""
    if pool is None:
        return 0
    return int(getattr(pool, "available_capacity", 0) or 0)


@dataclass(frozen=True)
class ArrivalEvent:
    """One simulated request: a frame from a page session."""

    at_ms: float
    session_id: str
    bitmap: np.ndarray
    #: scheduling class (see :mod:`repro.serve.queue`): viewport frames
    #: outrank below-the-fold frames at every pop, subject to aging
    priority: int = PRIORITY_VIEWPORT
    #: renderer-side frame context for the cascade's rule tiers; None
    #: (or a disabled cascade) routes straight to the memo/queue path
    provenance: Optional[FrameProvenance] = None
    #: pre-decode content hash of the frame's encoded bytes; with a
    #: differ attached, the session's page snapshot can answer a
    #: ``(url, content_key)`` revisit before the bitmap is ever
    #: fingerprinted.  "" (or no provenance) skips the diff tier.
    content_key: str = ""


@dataclass
class ServeResult:
    """Outcome of one simulated request."""

    request_id: int
    session_id: str
    key: str
    arrival_ms: float
    priority: int = PRIORITY_VIEWPORT
    decision: Optional[BlockDecision] = None
    shed: bool = False
    #: the request's batch was popped but its classification raised:
    #: settled exactly once with an explicit error, never silently lost
    failed: bool = False
    memo_hit: bool = False
    #: answered by the session's page snapshot (diff tier): the stored
    #: verdict settled the request before fingerprinting — ``key`` is
    #: empty for these, no pixel hash was ever computed
    diff_hit: bool = False
    #: answered by a cascade rule tier (no memo probe, no batch slot,
    #: no lane time); ``rule_tier`` names which tier ("micro"/"list")
    rule_hit: bool = False
    rule_tier: str = ""
    #: rode along with an identical queued fingerprint (no batch slot)
    coalesced: bool = False
    flush_ms: float = 0.0
    complete_ms: float = 0.0
    #: compute lane the request's batch occupied (-1 = never batched:
    #: memo hits and sheds don't touch a lane)
    lane: int = -1

    @property
    def queue_wait_ms(self) -> float:
        return self.flush_ms - self.arrival_ms

    @property
    def service_ms(self) -> float:
        return self.complete_ms - self.flush_ms

    @property
    def latency_ms(self) -> float:
        return self.complete_ms - self.arrival_ms


@dataclass
class ServeReport:
    """Everything a simulation run produced, in submission order."""

    results: List[ServeResult]
    stats: ServeStats
    makespan_ms: float

    @property
    def answered(self) -> List[ServeResult]:
        return [r for r in self.results if not r.shed and not r.failed]

    @property
    def shed(self) -> List[ServeResult]:
        return [r for r in self.results if r.shed]

    @property
    def failed(self) -> List[ServeResult]:
        return [r for r in self.results if r.failed]


class BatchComputeModel:
    """Virtual cost of one batched forward, ``setup + n * per_image``.

    Defaults derive from the blocker's calibrated per-image latency so
    a batch of one costs exactly one calibrated classification, and the
    marginal frame costs ``amortization`` of it — the shape the PR 1
    fast-path benchmark measured (batched inference amortizes fixed
    per-call overhead across the batch).
    """

    #: marginal cost of one more frame, as a fraction of the
    #: single-image latency (PR 1 measured >= 4x batched throughput)
    AMORTIZATION = 0.25

    def __init__(self, per_image_ms: float, setup_ms: float) -> None:
        if per_image_ms < 0 or setup_ms < 0:
            raise ValueError("compute-model costs must be non-negative")
        self.per_image_ms = per_image_ms
        self.setup_ms = setup_ms

    @classmethod
    def from_blocker(cls, blocker: PercivalBlocker) -> "BatchComputeModel":
        latency = blocker.calibrated_latency_ms
        return cls(
            per_image_ms=latency * cls.AMORTIZATION,
            setup_ms=latency * (1.0 - cls.AMORTIZATION),
        )

    def __call__(self, batch_size: int) -> float:
        if batch_size <= 0:
            return 0.0
        return self.setup_ms + batch_size * self.per_image_ms


def _feed_cascade_once(
    cascade: CascadeRouter,
    group: Sequence[ServeRequest],
    decision: BlockDecision,
) -> None:
    """Feed one computed model verdict into the cascade exactly once.

    A flush settles a leader plus its coalesced riders, but only one
    verdict was computed for the group — feeding it back once per
    settled request would hand the healer N observations for one
    forward pass, enough to two-strike-invalidate a healthy rule from
    a single frame.  The first open audit ticket in settle order wins
    (leader first, riders in arrival order); with no ticket standing,
    the first request carrying provenance absorbs the verdict.
    """
    for settled in group:
        if settled.audit is not None:
            cascade.reconcile(settled.audit, decision.is_ad)
            return
    for settled in group:
        if settled.provenance is not None:
            cascade.absorb(settled.provenance, decision)
            return


def _diff_recall(
    differ: Optional[FrameDiffer],
    session_id: str,
    provenance: Optional[FrameProvenance],
    content_key: str,
) -> Optional[BlockDecision]:
    """Diff-tier probe: the session snapshot's stored verdict for this
    ``(page, url, content)`` triple, or ``None``.  Runs before the
    fingerprint — a hit never hashes a pixel."""
    if differ is None or provenance is None or not content_key:
        return None
    return differ.recall(
        session_id, provenance.page_domain, provenance.url, content_key
    )


def _diff_remember(
    differ: Optional[FrameDiffer],
    session_id: str,
    provenance: Optional[FrameProvenance],
    content_key: str,
    decision: Optional[BlockDecision],
) -> None:
    """Stream one settled model verdict into the session snapshot so
    the next visit of the same region answers at the diff tier."""
    if (
        differ is None
        or provenance is None
        or not content_key
        or decision is None
    ):
        return
    differ.remember(
        session_id,
        provenance.page_domain,
        RegionRecord(
            url=provenance.url,
            content_key=content_key,
            width=provenance.width,
            height=provenance.height,
            is_ad=bool(decision.is_ad),
            probability=float(decision.probability),
        ),
    )


def _tier_available(
    plane: Optional[ResiliencePlane],
    cursor: Optional[ChaosCursor],
    tier: str,
    now_ms: float,
    mutate: bool = True,
) -> bool:
    """Is speed tier ``tier`` consultable at ``now_ms``?

    Three gates, in order: a chaos outage window over the tier, the
    degradation ladder's brownout flags, and the tier's circuit
    breaker.  ``mutate=False`` uses the breaker's non-mutating ``peek``
    — feedback writes must not consume the half-open probe that the
    serve path needs to heal the breaker.  With no plane and no cursor
    every tier is available: the pre-resilience path, bit for bit.
    """
    if cursor is not None and cursor.tier_out(tier, now_ms):
        return False
    if plane is not None:
        controller = plane.controller
        if tier == "diff" and controller.diff_disabled:
            return False
        if tier == "cascade" and controller.cascade_disabled:
            return False
        breaker = plane.breakers.get(tier)
        if breaker is not None:
            return breaker.allow(now_ms) if mutate else breaker.peek(now_ms)
    return True


def _record_tier(
    plane: Optional[ResiliencePlane], tier: str, now_ms: float, ok: bool
) -> None:
    """Feed one admitted tier call's outcome to its breaker; a trip is
    also a pressure signal for the degradation ladder."""
    if plane is None:
        return
    breaker = plane.breakers.get(tier)
    if breaker is None:
        return
    before = breaker.trips
    breaker.record(now_ms, ok)
    if breaker.trips > before:
        plane.controller.observe_pressure(f"{tier} breaker tripped")


def _absorb_tier_error(
    stats: ServeStats, plane: Optional[ResiliencePlane]
) -> None:
    """Count one absorbed tier failure on the run's ledger (and the
    plane's cumulative one, when attached)."""
    stats.tier_errors += 1
    if plane is not None:
        plane.tier_errors += 1


def _guarded_feedback(
    stats: ServeStats,
    plane: Optional[ResiliencePlane],
    fn: Callable[[], None],
) -> None:
    """Run one tier feedback write (diff remember / cascade feed) with
    the request already settled.  Feedback is an optimization for
    *future* requests — a raising write is absorbed and counted, never
    allowed to orphan the settled request or take the flush down."""
    try:
        fn()
    except Exception:
        _absorb_tier_error(stats, plane)


class ServeLoop:
    """Deterministic micro-batching simulator over a virtual clock.

    ``run`` replays a traffic trace (:class:`ArrivalEvent` list) through
    the full serving stack: memo lookup, fingerprint coalescing,
    admission control, deadline/size-based flushing, and one real
    ``decide_many`` per flushed batch.  Batch compute occupies one of
    ``resolved_lanes()`` virtual compute lanes (``compute_model`` prices
    it); with one lane a slow batch visibly delays the batches behind
    it, with ``n`` lanes up to ``n`` flushes overlap — either way the
    p99 tail under load is a property of the trace, not of the host
    machine.
    """

    def __init__(
        self,
        blocker: PercivalBlocker,
        settings: Optional[ServeSettings] = None,
        compute_model: Optional[Callable[[int], float]] = None,
        cascade: "CascadeRouter | None | bool" = None,
        differ: "FrameDiffer | None | bool" = None,
        chaos: "ChaosSchedule | None | bool" = None,
        resilience: "ResiliencePlane | None | bool" = None,
    ) -> None:
        self.blocker = blocker
        self.settings = configured_serve_settings(settings)
        self.compute_model = (
            compute_model
            if compute_model is not None
            else BatchComputeModel.from_blocker(blocker)
        )
        #: confidence router in front of the memo/queue tiers; None =
        #: off (auto-resolved from PERCIVAL_CASCADE when unspecified)
        self.cascade = resolve_cascade(cascade, blocker.classifier.config)
        #: per-session snapshot/diff layer in front of everything; None
        #: = off (auto-resolved from PERCIVAL_DIFF when unspecified)
        self.differ = resolve_differ(differ, blocker.classifier.config)
        #: seeded fault-injection schedule; None = off (auto-resolved
        #: from PERCIVAL_CHAOS when unspecified)
        self.chaos = resolve_chaos(chaos, blocker.classifier.config)
        #: breakers + degradation ladder; None = off (auto-resolved
        #: from PERCIVAL_RESILIENCE, and implied by an active chaos
        #: schedule, when unspecified)
        self.resilience = resolve_resilience(
            resilience,
            blocker.classifier.config,
            chaos_active=self.chaos is not None,
        )

    def resolved_lanes(self) -> int:
        """The lane count this loop will simulate with.

        Resolution order: ``settings.lanes`` if pinned, else the
        ``PERCIVAL_SERVE_LANES`` environment knob, else the attached
        worker pool's ``available_capacity`` — so by default the
        simulator overlaps exactly as many flushes as the pool has
        workers to absorb — else 1 (poolless = one in-process lane).
        """
        explicit = configured_serve_lanes(self.settings.lanes)
        if explicit is not None:
            return explicit
        return max(_pool_capacity(self.blocker.pool), 1)

    def run(self, events: Sequence[ArrivalEvent]) -> ServeReport:
        """Replay ``events`` through the serving stack.

        Discrete-event structure: completed lanes retire first, then
        due batches dispatch onto free lanes (lowest index first —
        deterministic tie-break) until lanes or due batches run out,
        then the clock advances to the earliest of {next arrival,
        earliest busy-lane completion, queue deadline if a lane is
        free}.  Gating dispatch on lane availability is what makes
        overload *visible*: while every lane computes, arrivals pile
        into the queue, and past ``max_depth`` they shed — exactly the
        backpressure a real fixed-capacity server exhibits.  (The queue
        itself still never holds a due request at poll time; that
        contract is property-tested on :class:`BatchQueue` directly.)
        """
        events = sorted(events, key=lambda event: event.at_ms)
        queue = BatchQueue(self.settings)
        clock = VirtualClock()
        stats = ServeStats(lanes=self.resolved_lanes())
        if self.cascade is not None:
            stats.cascade = self.cascade.stats
        if self.differ is not None:
            stats.diff = self.differ.stats
        cursor = self.chaos.cursor() if self.chaos is not None else None
        plane = self.resilience
        controller = None
        if plane is not None:
            stats.resilience = plane
            plane.rebase(0.0)
            controller = plane.controller
        results: List[ServeResult] = []
        pending: Dict[str, ServeRequest] = {}
        #: which ServeResult belongs to each queued request (leaders
        #: and riders alike), resolved at flush time
        open_results: Dict[int, ServeResult] = {}
        #: virtual time each compute lane frees up (<= now means idle)
        lane_free: List[float] = [0.0] * stats.lanes
        index = 0
        next_id = 0

        while True:
            now = clock.now_ms
            if cursor is not None:
                fired = cursor.fire_due(now, pool=self.blocker.pool)
                if fired and plane is not None:
                    plane.note_chaos(fired)
            if controller is not None:
                controller.evaluate(now)
                queue.deadline_scale = controller.deadline_scale
            free_lane = self._lowest_free_lane(lane_free, now)
            if free_lane is not None:
                batch = queue.pop_batch(now)
                if batch is not None:
                    lane_free[free_lane] = self._flush(
                        batch, now, free_lane,
                        pending, open_results, stats, cursor,
                    )
                    continue
            arrival = events[index].at_ms if index < len(events) else None
            deadline = queue.next_deadline_ms()
            busy = [t for t in lane_free if t > now]
            candidates = [
                t
                for t in (
                    arrival,
                    min(busy) if busy else None,
                    # a deadline is only actionable while a lane is free
                    deadline if free_lane is not None else None,
                )
                if t is not None
            ]
            if not candidates:
                # chaos events past the last unit of work never fire:
                # an empty system has nothing left to perturb
                break
            if cursor is not None:
                # planned chaos ticks join the discrete-event schedule
                # so outage windows open/close and faults arm at their
                # scheduled virtual times, not at the next convenient one
                chaos_at = cursor.next_at_ms()
                if chaos_at is not None:
                    candidates.append(chaos_at)
            next_time = min(candidates)
            clock.advance_to(next_time)
            if arrival is not None and next_time >= arrival:
                event = events[index]
                index += 1
                next_id += 1
                results.append(
                    self._admit(
                        event, next_id, clock.now_ms,
                        queue, pending, open_results, stats, cursor,
                    )
                )

        if controller is not None:
            controller.finalize(clock.now_ms)
        return ServeReport(
            results=results, stats=stats, makespan_ms=clock.now_ms
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _lowest_free_lane(
        lane_free: List[float], now_ms: float
    ) -> Optional[int]:
        for lane, free_at in enumerate(lane_free):
            if free_at <= now_ms:
                return lane
        return None

    def _admit(
        self,
        event: ArrivalEvent,
        request_id: int,
        now_ms: float,
        queue: BatchQueue,
        pending: Dict[str, ServeRequest],
        open_results: Dict[int, ServeResult],
        stats: ServeStats,
        cursor: Optional[ChaosCursor] = None,
    ) -> ServeResult:
        stats.submitted += 1
        plane = self.resilience
        controller = plane.controller if plane is not None else None
        protected = plane is not None or cursor is not None
        if (
            controller is not None
            and controller.drop_below_fold
            and event.priority > PRIORITY_VIEWPORT
        ):
            # ladder level 4+: below-the-fold frames are shed at
            # admission — nothing visible is waiting on them, and the
            # shed is an explicit ledger entry, not a silent drop
            result = ServeResult(
                request_id=request_id,
                session_id=event.session_id,
                key="",
                arrival_ms=now_ms,
                priority=event.priority,
            )
            result.shed = True
            result.flush_ms = result.complete_ms = now_ms
            stats.shed += 1
            plane.degraded_sheds += 1
            return result
        recalled = None
        if self.differ is not None and _tier_available(
            plane, cursor, "diff", now_ms
        ):
            if not protected:
                recalled = _diff_recall(
                    self.differ, event.session_id, event.provenance,
                    event.content_key,
                )
            else:
                try:
                    if cursor is not None and cursor.take_tier_error("diff"):
                        raise ChaosInjectedError(
                            "injected diff recall failure"
                        )
                    recalled = _diff_recall(
                        self.differ, event.session_id, event.provenance,
                        event.content_key,
                    )
                except Exception:
                    recalled = None
                    _absorb_tier_error(stats, plane)
                    _record_tier(plane, "diff", now_ms, False)
                else:
                    _record_tier(plane, "diff", now_ms, True)
        if recalled is not None:
            # tier -1: the session's page snapshot — an unchanged
            # region inherits its stored verdict before the bitmap is
            # fingerprinted, let alone routed, probed, or queued
            result = ServeResult(
                request_id=request_id,
                session_id=event.session_id,
                key="",
                arrival_ms=now_ms,
                priority=event.priority,
            )
            result.decision = recalled
            result.diff_hit = True
            result.flush_ms = result.complete_ms = now_ms
            stats.diff_hits += 1
            stats.answered += 1
            self._record_latency(stats, result)
            return result
        key = self.blocker.fingerprint(event.bitmap)
        result = ServeResult(
            request_id=request_id,
            session_id=event.session_id,
            key=key,
            arrival_ms=now_ms,
            priority=event.priority,
        )
        audit = None
        if self.cascade is not None and _tier_available(
            plane, cursor, "cascade", now_ms
        ):
            routed = None
            if not protected:
                routed = self.cascade.route(event.provenance)
            else:
                try:
                    if cursor is not None and cursor.take_tier_error(
                        "cascade"
                    ):
                        raise ChaosInjectedError(
                            "injected cascade route failure"
                        )
                    routed = self.cascade.route(event.provenance)
                except Exception:
                    routed = None
                    _absorb_tier_error(stats, plane)
                    _record_tier(plane, "cascade", now_ms, False)
                else:
                    _record_tier(plane, "cascade", now_ms, True)
            if isinstance(routed, CascadeHit):
                # tier 0: cascade rule — answered at arrival, never
                # consuming a memo probe, a batch slot, or lane time
                result.decision = routed.decision
                result.rule_hit = True
                result.rule_tier = routed.tier
                result.flush_ms = result.complete_ms = now_ms
                stats.rule_hits += 1
                stats.answered += 1
                self._record_latency(stats, result)
                return result
            audit = routed
        memo_live = cursor is None or not cursor.tier_out("memo", now_ms)
        if memo_live and cursor is not None and cursor.take_tier_error(
            "memo"
        ):
            # a memo probe is a dict lookup with no real failure mode;
            # an injected memo error degrades to a one-shot miss
            memo_live = False
        cached = (
            self.blocker.memoized_decision(key=key) if memo_live else None
        )
        if cached is not None:
            # tier 1: shared memo — answered instantly, no queue entry
            result.decision = cached
            result.memo_hit = True
            result.flush_ms = result.complete_ms = now_ms
            stats.memo_hits += 1
            stats.answered += 1
            self._record_latency(stats, result)
            if self.cascade is not None and _tier_available(
                plane, cursor, "cascade", now_ms, mutate=False
            ):
                def feed_cascade() -> None:
                    if audit is not None:
                        self.cascade.reconcile(audit, cached.is_ad)
                    else:
                        self.cascade.absorb(event.provenance, cached)

                if protected:
                    _guarded_feedback(stats, plane, feed_cascade)
                else:
                    feed_cascade()
            if self.differ is not None and _tier_available(
                plane, cursor, "diff", now_ms, mutate=False
            ):
                def feed_diff() -> None:
                    _diff_remember(
                        self.differ, event.session_id, event.provenance,
                        event.content_key, cached,
                    )

                if protected:
                    _guarded_feedback(stats, plane, feed_diff)
                else:
                    feed_diff()
            return result
        if controller is not None and controller.shed_all:
            # ladder level 5: the compute path is browned out entirely
            # — every queue-bound request sheds (the cheap tiers above
            # already had their chance to answer it)
            result.shed = True
            result.flush_ms = result.complete_ms = now_ms
            stats.shed += 1
            plane.degraded_sheds += 1
            return result
        request = ServeRequest(
            request_id=request_id,
            session_id=event.session_id,
            key=key,
            bitmap=event.bitmap,
            arrival_ms=now_ms,
            priority=event.priority,
            provenance=event.provenance,
            audit=audit,
            content_key=event.content_key,
        )
        leader = pending.get(key)
        if leader is not None:
            # tier 2: same fingerprint already queued — ride along
            leader.coalesced.append(request)
            result.coalesced = True
            stats.coalesced += 1
            open_results[request_id] = result
            return result
        if not queue.offer(request, now_ms):
            result.shed = True
            result.flush_ms = result.complete_ms = now_ms
            stats.shed += 1
            if controller is not None:
                controller.observe_pressure("queue overflow shed")
            return result
        pending[key] = request
        open_results[request_id] = result
        return result

    def _flush(
        self,
        batch: List[ServeRequest],
        now_ms: float,
        lane: int,
        pending: Dict[str, ServeRequest],
        open_results: Dict[int, ServeResult],
        stats: ServeStats,
        cursor: Optional[ChaosCursor] = None,
    ) -> float:
        """Dispatch one batch on the free compute lane ``lane``;
        returns the virtual time that lane frees up again."""
        plane = self.resilience
        controller = plane.controller if plane is not None else None
        protected = plane is not None or cursor is not None
        bitmaps = [request.bitmap for request in batch]
        keys = [request.key for request in batch]
        pool = self.blocker.pool
        capacity = _pool_capacity(pool)
        # the pool breaker is consulted only when this flush would
        # actually dispatch to the pool; an open breaker detaches the
        # pool for exactly this decide_many, forcing the in-process
        # path (bit-identical verdicts — batch composition invariance)
        pool_eligible = (
            pool is not None
            and not getattr(pool, "closed", False)
            and len(batch) >= self.blocker.shard_min_batch
        )
        bypass_pool = False
        if plane is not None and pool_eligible:
            bypass_pool = not plane.breakers["pool"].allow(now_ms)
        fallbacks_before = getattr(self.blocker, "pool_fallbacks", 0)
        if bypass_pool:
            self.blocker.pool = None
            plane.pool_bypassed += 1
        try:
            decisions = self.blocker.decide_many(bitmaps, keys=keys)
        except Exception:
            if not protected:
                raise
            # explicit failed batch: every member and rider settles
            # exactly once with failed=True, the lane frees at once,
            # and the conservation ledger stays balanced
            if pool_eligible and not bypass_pool:
                _record_tier(plane, "pool", now_ms, False)
            if plane is not None:
                plane.failed_batches += 1
            if controller is not None:
                controller.observe_pressure("batch classification failed")
            for request in batch:
                pending.pop(request.key, None)
                for settled in (request, *request.coalesced):
                    result = open_results.pop(settled.request_id)
                    result.failed = True
                    result.flush_ms = result.complete_ms = now_ms
                    result.lane = lane
                    stats.failed += 1
            return now_ms
        finally:
            if bypass_pool:
                self.blocker.pool = pool
        if pool_eligible and not bypass_pool:
            # the blocker heals a pool failure silently (in-process
            # fallback); the fallback counter is the breaker's only
            # window into whether the pool actually dispatched
            _record_tier(
                plane, "pool", now_ms,
                getattr(self.blocker, "pool_fallbacks", 0)
                == fallbacks_before,
            )
        cost_ms = float(self.compute_model(len(batch)))
        if cursor is not None:
            cost_ms *= cursor.latency_multiplier(now_ms)
        complete_ms = now_ms + cost_ms
        diff_ok = self.differ is not None and _tier_available(
            plane, cursor, "diff", now_ms, mutate=False
        )
        cascade_ok = self.cascade is not None and _tier_available(
            plane, cursor, "cascade", now_ms, mutate=False
        )
        for request, decision in zip(batch, decisions):
            pending.pop(request.key, None)
            group = (request, *request.coalesced)
            for settled in group:
                result = open_results.pop(settled.request_id)
                result.decision = decision
                result.flush_ms = now_ms
                result.complete_ms = complete_ms
                result.lane = lane
                stats.answered += 1
                self._record_latency(stats, result)
                if controller is not None:
                    controller.observe_latency(result.latency_ms)
            # feedback runs only after every member of the group is
            # settled, so a raising tier write cannot orphan a rider
            if diff_ok:
                # every settled request refreshes its own session's
                # snapshot — riders belong to other sessions/pages
                for settled in group:
                    def feed_diff(settled: ServeRequest = settled) -> None:
                        _diff_remember(
                            self.differ, settled.session_id,
                            settled.provenance, settled.content_key,
                            decision,
                        )

                    if protected:
                        _guarded_feedback(stats, plane, feed_diff)
                    else:
                        feed_diff()
            if cascade_ok:
                # one computed verdict -> one healer observation,
                # regardless of how many riders share the batch slot
                def feed_cascade() -> None:
                    _feed_cascade_once(self.cascade, group, decision)

                if protected:
                    _guarded_feedback(stats, plane, feed_cascade)
                else:
                    feed_cascade()
        stats.batches += 1
        stats.batched_requests += len(batch)
        stats.capacity_samples.append(capacity)
        stats.lane_busy_ms[lane] = stats.lane_busy_ms.get(lane, 0.0) + cost_ms
        return complete_ms

    @staticmethod
    def _record_latency(stats: ServeStats, result: ServeResult) -> None:
        stats.queue_wait_ms.add(result.queue_wait_ms)
        stats.service_ms.add(result.service_ms)
        stats.total_ms.add(result.latency_ms)
        stats.record_queue_wait(result.priority, result.queue_wait_ms)


class AsyncServeFront:
    """``asyncio`` front door over the same micro-batching queue.

    ``submit`` returns an awaitable that resolves to the request's
    :class:`BlockDecision`.  A full batch schedules a flush callback on
    the event loop (deferred, so a burst of submits already on the
    ready queue gets to enqueue — or shed — before compute runs); a
    partial batch flushes when its oldest request hits ``max_wait_ms``
    via a ``call_later`` timer.  A full queue raises
    :class:`ServeOverloadError` — backpressure is the caller's signal.

    Two compute placements:

    * default (``use_executor=False``): batch compute runs on the
      event-loop thread — numpy/BLAS release the GIL, and for pure
      throughput a thread hop only reorders the same GEMMs;
    * ``use_executor=True``: each flush's ``decide_many`` runs on a
      dedicated **single-thread** executor, so a slow batch never
      stalls the event loop — submits, timer callbacks, and unrelated
      coroutines keep running, and overload stays observable *during*
      compute, not just between batches.  The executor is deliberately
      one thread: the blocker's scratch buffers and the worker pool's
      dispatch protocol are not reentrant, so the front serializes
      forwards and leaves real compute parallelism to the pool's worker
      processes (and, in simulation, to :class:`ServeLoop`'s lanes).
    """

    def __init__(
        self,
        blocker: PercivalBlocker,
        settings: Optional[ServeSettings] = None,
        use_executor: bool = False,
        cascade: "CascadeRouter | None | bool" = None,
        differ: "FrameDiffer | None | bool" = None,
        chaos: "ChaosSchedule | None | bool" = None,
        resilience: "ResiliencePlane | None | bool" = None,
    ) -> None:
        self.blocker = blocker
        self.settings = configured_serve_settings(settings)
        self.use_executor = use_executor
        self.cascade = resolve_cascade(cascade, blocker.classifier.config)
        self.differ = resolve_differ(differ, blocker.classifier.config)
        #: chaos here runs on the front's real-millisecond clock; the
        #: invariant it exercises is value-independence (every resolved
        #: future's P(ad) is fault-free-identical), not replay timing
        self.chaos = resolve_chaos(chaos, blocker.classifier.config)
        self.resilience = resolve_resilience(
            resilience,
            blocker.classifier.config,
            chaos_active=self.chaos is not None,
        )
        self._chaos_cursor = (
            self.chaos.cursor() if self.chaos is not None else None
        )
        self.stats = ServeStats()
        if self.cascade is not None:
            self.stats.cascade = self.cascade.stats
        if self.differ is not None:
            self.stats.diff = self.differ.stats
        if self.resilience is not None:
            self.stats.resilience = self.resilience
        self._queue = BatchQueue(self.settings)
        self._pending: Dict[str, ServeRequest] = {}
        self._waiters: Dict[int, "asyncio.Future[BlockDecision]"] = {}
        self._arrivals: Dict[int, float] = {}
        self._timer: Optional[asyncio.TimerHandle] = None
        self._flush_handle: Optional[asyncio.Handle] = None
        self._origin_s: Optional[float] = None
        self._next_id = 0
        self._closed = False
        self._executor: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._inflight: Set["asyncio.Task[None]"] = set()

    # ------------------------------------------------------------------
    # Front door
    # ------------------------------------------------------------------
    async def submit(
        self,
        bitmap: np.ndarray,
        session_id: str = "session",
        priority: int = PRIORITY_VIEWPORT,
        provenance: Optional[FrameProvenance] = None,
        content_key: str = "",
    ) -> BlockDecision:
        """One classification request; resolves when its batch flushes."""
        if self._closed:
            raise ServeClosedError(
                "AsyncServeFront is closed; no new requests are admitted"
            )
        loop = asyncio.get_running_loop()
        now_ms = self._now_ms(loop)
        plane = self.resilience
        cursor = self._chaos_cursor
        controller = plane.controller if plane is not None else None
        protected = plane is not None or cursor is not None
        if cursor is not None:
            fired = cursor.fire_due(now_ms, pool=self.blocker.pool)
            if fired and plane is not None:
                plane.note_chaos(fired)
        if controller is not None:
            controller.evaluate(now_ms)
            self._queue.deadline_scale = controller.deadline_scale
        self.stats.submitted += 1
        if controller is not None and (
            controller.shed_all
            or (
                controller.drop_below_fold
                and priority > PRIORITY_VIEWPORT
            )
        ):
            self.stats.shed += 1
            plane.degraded_sheds += 1
            raise ServeOverloadError(
                f"request shed at brownout level"
                f" '{controller.level_name}'"
            )
        recalled = None
        if self.differ is not None and _tier_available(
            plane, cursor, "diff", now_ms
        ):
            if not protected:
                recalled = _diff_recall(
                    self.differ, session_id, provenance, content_key
                )
            else:
                try:
                    if cursor is not None and cursor.take_tier_error("diff"):
                        raise ChaosInjectedError(
                            "injected diff recall failure"
                        )
                    recalled = _diff_recall(
                        self.differ, session_id, provenance, content_key
                    )
                except Exception:
                    recalled = None
                    _absorb_tier_error(self.stats, plane)
                    _record_tier(plane, "diff", now_ms, False)
                else:
                    _record_tier(plane, "diff", now_ms, True)
        if recalled is not None:
            self.stats.diff_hits += 1
            self.stats.answered += 1
            self._record(now_ms, now_ms, now_ms, priority)
            return recalled
        audit = None
        if self.cascade is not None and _tier_available(
            plane, cursor, "cascade", now_ms
        ):
            routed = None
            if not protected:
                routed = self.cascade.route(provenance)
            else:
                try:
                    if cursor is not None and cursor.take_tier_error(
                        "cascade"
                    ):
                        raise ChaosInjectedError(
                            "injected cascade route failure"
                        )
                    routed = self.cascade.route(provenance)
                except Exception:
                    routed = None
                    _absorb_tier_error(self.stats, plane)
                    _record_tier(plane, "cascade", now_ms, False)
                else:
                    _record_tier(plane, "cascade", now_ms, True)
            if isinstance(routed, CascadeHit):
                self.stats.rule_hits += 1
                self.stats.answered += 1
                self._record(now_ms, now_ms, now_ms, priority)
                return routed.decision
            audit = routed
        key = self.blocker.fingerprint(bitmap)
        memo_live = cursor is None or not cursor.tier_out("memo", now_ms)
        if memo_live and cursor is not None and cursor.take_tier_error(
            "memo"
        ):
            # injected memo error degrades to a one-shot miss
            memo_live = False
        cached = (
            self.blocker.memoized_decision(key=key) if memo_live else None
        )
        if cached is not None:
            self.stats.memo_hits += 1
            self.stats.answered += 1
            self._record(now_ms, now_ms, now_ms, priority)
            if self.cascade is not None and _tier_available(
                plane, cursor, "cascade", now_ms, mutate=False
            ):
                def feed_cascade() -> None:
                    if audit is not None:
                        self.cascade.reconcile(audit, cached.is_ad)
                    else:
                        self.cascade.absorb(provenance, cached)

                if protected:
                    _guarded_feedback(self.stats, plane, feed_cascade)
                else:
                    feed_cascade()
            if self.differ is not None and _tier_available(
                plane, cursor, "diff", now_ms, mutate=False
            ):
                def feed_diff() -> None:
                    _diff_remember(
                        self.differ, session_id, provenance,
                        content_key, cached,
                    )

                if protected:
                    _guarded_feedback(self.stats, plane, feed_diff)
                else:
                    feed_diff()
            return cached
        self._next_id += 1
        request = ServeRequest(
            request_id=self._next_id,
            session_id=session_id,
            key=key,
            bitmap=bitmap,
            arrival_ms=now_ms,
            priority=priority,
            provenance=provenance,
            audit=audit,
            content_key=content_key,
        )
        future: "asyncio.Future[BlockDecision]" = loop.create_future()
        leader = self._pending.get(key)
        if leader is not None:
            leader.coalesced.append(request)
            self.stats.coalesced += 1
        else:
            if not self._queue.offer(request, now_ms):
                self.stats.shed += 1
                if controller is not None:
                    controller.observe_pressure("queue overflow shed")
                raise ServeOverloadError(
                    f"queue depth {self._queue.depth} at its bound "
                    f"({self.settings.max_depth}); request shed"
                )
            self._pending[key] = request
        self._waiters[request.request_id] = future
        self._arrivals[request.request_id] = now_ms
        if self._queue.due(now_ms):
            # defer to a callback instead of flushing inline: submit
            # returns immediately, and a burst of submits already on
            # the ready queue gets to enqueue (or shed) before the
            # flush runs — admission control stays observable
            self._schedule_flush(loop)
        else:
            self._arm_timer(loop)
        return await future

    async def drain(self) -> None:
        """Flush everything still queued, deadline or not, and wait for
        any in-flight executor batches to settle their waiters."""
        loop = asyncio.get_running_loop()
        while True:
            self._start_flush(loop, force=True)
            if not self._inflight:
                break
            await asyncio.gather(*list(self._inflight),
                                 return_exceptions=True)

    async def aclose(self) -> None:
        """Drain pending requests, disarm the flush timer, and refuse
        further submits.  Idempotent."""
        self._closed = True
        await self.drain()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    @property
    def depth(self) -> int:
        return self._queue.depth

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _now_ms(self, loop: asyncio.AbstractEventLoop) -> float:
        if self._origin_s is None:
            self._origin_s = loop.time()
        return (loop.time() - self._origin_s) * 1000.0

    def _arm_timer(self, loop: asyncio.AbstractEventLoop) -> None:
        deadline = self._queue.next_deadline_ms()
        if deadline is None or self._timer is not None:
            return
        delay_s = max(deadline - self._now_ms(loop), 0.0) / 1000.0
        self._timer = loop.call_later(delay_s, self._on_deadline, loop)

    def _on_deadline(self, loop: asyncio.AbstractEventLoop) -> None:
        self._timer = None
        try:
            if self._queue.due(self._now_ms(loop)):
                self._start_flush(loop)
        finally:
            # whatever the flush did, requests still queued must keep
            # a live deadline timer — an unarmed partial batch would
            # wait forever
            self._arm_timer(loop)

    def _schedule_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._flush_handle is None:
            self._flush_handle = loop.call_soon(self._run_flush, loop)

    def _run_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        self._flush_handle = None
        self._start_flush(loop)

    def _start_flush(
        self, loop: asyncio.AbstractEventLoop, force: bool = False
    ) -> None:
        """Flush every due batch — inline on the event-loop thread by
        default, or as tracked tasks computing on the executor."""
        if not self.use_executor:
            self._flush_sync(loop, force=force)
            return
        while True:
            flush_ms = self._now_ms(loop)
            batch = self._queue.pop_batch(flush_ms, force=force)
            if batch is None:
                break
            task = loop.create_task(self._flush_batch(loop, batch, flush_ms))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)
        if self._timer is None and self._queue.depth:
            self._arm_timer(loop)

    def _pool_gate(
        self, batch: List[ServeRequest], flush_ms: float
    ) -> tuple:
        """Consult the pool breaker for one flush.  Returns ``(pool,
        pool_eligible, bypass, fallbacks_before)``; when ``bypass`` the
        pool is already detached (caller restores it in a finally) so
        exactly this flush computes in-process — bit-identical verdicts
        by batch-composition invariance."""
        plane = self.resilience
        pool = self.blocker.pool
        pool_eligible = (
            pool is not None
            and not getattr(pool, "closed", False)
            and len(batch) >= self.blocker.shard_min_batch
        )
        bypass = False
        if plane is not None and pool_eligible:
            bypass = not plane.breakers["pool"].allow(flush_ms)
        fallbacks_before = getattr(self.blocker, "pool_fallbacks", 0)
        if bypass:
            self.blocker.pool = None
            plane.pool_bypassed += 1
        return pool, pool_eligible, bypass, fallbacks_before

    def _pool_outcome(
        self,
        flush_ms: float,
        pool_eligible: bool,
        bypass: bool,
        fallbacks_before: int,
        ok: bool = True,
    ) -> None:
        """Feed the flush's dispatch outcome to the pool breaker (the
        blocker heals pool failures silently — the fallback counter is
        the breaker's only window into them)."""
        if pool_eligible and not bypass:
            _record_tier(
                self.resilience, "pool", flush_ms,
                ok
                and getattr(self.blocker, "pool_fallbacks", 0)
                == fallbacks_before,
            )

    def _flush_sync(
        self, loop: asyncio.AbstractEventLoop, force: bool = False
    ) -> None:
        while True:
            flush_ms = self._now_ms(loop)
            batch = self._queue.pop_batch(flush_ms, force=force)
            if batch is None:
                break
            bitmaps = [request.bitmap for request in batch]
            keys = [request.key for request in batch]
            capacity = _pool_capacity(self.blocker.pool)
            pool, eligible, bypass, before = self._pool_gate(
                batch, flush_ms
            )
            try:
                decisions = self.blocker.decide_many(bitmaps, keys=keys)
            except Exception as exc:
                self._pool_outcome(flush_ms, eligible, bypass, before,
                                   ok=False)
                self._settle_failure(batch, exc)
                continue
            finally:
                if bypass:
                    self.blocker.pool = pool
            self._pool_outcome(flush_ms, eligible, bypass, before)
            try:
                self._settle_batch(
                    batch, decisions, flush_ms, self._now_ms(loop),
                    capacity,
                )
            except Exception as exc:
                # backstop: _settle_batch resolves futures before any
                # feedback, so reaching here means something settled
                # partially — _settle_failure's pops are idempotent and
                # finish the job exactly once
                self._settle_failure(batch, exc)
        # re-arm for whatever is still queued (partial batch)
        if self._timer is None and self._queue.depth:
            self._arm_timer(loop)

    async def _flush_batch(
        self,
        loop: asyncio.AbstractEventLoop,
        batch: List[ServeRequest],
        flush_ms: float,
    ) -> None:
        """Executor-mode flush of one already-popped batch."""
        bitmaps = [request.bitmap for request in batch]
        keys = [request.key for request in batch]
        capacity = _pool_capacity(self.blocker.pool)
        # the detach window spans this task's await; a concurrently
        # interleaved flush would also compute in-process once, which
        # only moves *where* its batch computes, never its verdicts
        pool, eligible, bypass, before = self._pool_gate(batch, flush_ms)
        try:
            decisions = await loop.run_in_executor(
                self._get_executor(),
                lambda: self.blocker.decide_many(bitmaps, keys=keys),
            )
        except Exception as exc:
            self._pool_outcome(flush_ms, eligible, bypass, before,
                               ok=False)
            self._settle_failure(batch, exc)
            return
        finally:
            if bypass:
                self.blocker.pool = pool
        self._pool_outcome(flush_ms, eligible, bypass, before)
        try:
            self._settle_batch(
                batch, decisions, flush_ms, self._now_ms(loop), capacity
            )
        except Exception as exc:
            self._settle_failure(batch, exc)

    def _get_executor(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._executor is None:
            # one thread, on purpose: serializes decide_many (scratch
            # buffers / pool dispatch are not reentrant) while keeping
            # the event loop free during compute
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="percival-serve"
            )
        return self._executor

    def _settle_batch(
        self,
        batch: List[ServeRequest],
        decisions: Sequence[BlockDecision],
        flush_ms: float,
        complete_ms: float,
        capacity: int,
    ) -> None:
        plane = self.resilience
        cursor = self._chaos_cursor
        controller = plane.controller if plane is not None else None
        diff_ok = self.differ is not None and _tier_available(
            plane, cursor, "diff", complete_ms, mutate=False
        )
        cascade_ok = self.cascade is not None and _tier_available(
            plane, cursor, "cascade", complete_ms, mutate=False
        )
        # pass 1 — resolve every waiter (leaders and riders alike)
        # before any tier feedback runs: a raising remember/feed can
        # no longer orphan a coalesced rider's future
        groups = []
        for request, decision in zip(batch, decisions):
            self._pending.pop(request.key, None)
            group = (request, *request.coalesced)
            for settled in group:
                future = self._waiters.pop(settled.request_id, None)
                arrival_ms = self._arrivals.pop(
                    settled.request_id, flush_ms
                )
                if future is not None and not future.done():
                    future.set_result(decision)
                self.stats.answered += 1
                self._record(
                    arrival_ms, flush_ms, complete_ms, settled.priority
                )
                if controller is not None:
                    controller.observe_latency(complete_ms - arrival_ms)
            groups.append((group, decision))
        # pass 2 — tier feedback, each write guarded so one failing
        # tier cannot take the flush (or the timer re-arm) down
        for group, decision in groups:
            if diff_ok:
                for settled in group:
                    _guarded_feedback(
                        self.stats, plane,
                        lambda settled=settled, decision=decision:
                            _diff_remember(
                                self.differ, settled.session_id,
                                settled.provenance, settled.content_key,
                                decision,
                            ),
                    )
            if cascade_ok:
                # one computed verdict -> one healer observation,
                # regardless of how many riders share the batch slot
                _guarded_feedback(
                    self.stats, plane,
                    lambda group=group, decision=decision:
                        _feed_cascade_once(self.cascade, group, decision),
                )
        self.stats.batches += 1
        self.stats.batched_requests += len(batch)
        self.stats.capacity_samples.append(capacity)
        if controller is not None:
            controller.evaluate(complete_ms)

    def _settle_failure(
        self, batch: List[ServeRequest], exc: Exception
    ) -> None:
        # the batch is already popped: its waiters must hear about the
        # failure, not hang, and its keys must leave _pending so later
        # duplicates are not coalesced onto a leader that no longer
        # exists.  Pops tolerate absence so this doubles as the
        # exactly-once backstop behind a partially-settled batch.
        plane = self.resilience
        if plane is not None:
            plane.failed_batches += 1
            plane.controller.observe_pressure("batch classification failed")
        for request in batch:
            self._pending.pop(request.key, None)
            for settled in (request, *request.coalesced):
                future = self._waiters.pop(settled.request_id, None)
                self._arrivals.pop(settled.request_id, None)
                if future is None:
                    continue
                if not future.done():
                    future.set_exception(exc)
                self.stats.failed += 1

    def _record(
        self,
        arrival_ms: float,
        flush_ms: float,
        complete_ms: float,
        priority: int = PRIORITY_VIEWPORT,
    ) -> None:
        self.stats.queue_wait_ms.add(flush_ms - arrival_ms)
        self.stats.service_ms.add(complete_ms - flush_ms)
        self.stats.total_ms.add(complete_ms - arrival_ms)
        self.stats.record_queue_wait(priority, flush_ms - arrival_ms)
