"""The serving layer: deterministic simulation loop + asyncio front door.

Two drivers share the same :class:`~repro.serve.queue.BatchQueue`,
memoization contract, and metrics:

* :class:`ServeLoop` — a **deterministic** discrete-event simulator on a
  :class:`~repro.utils.clock.VirtualClock` (the same device the
  renderer's ``WorkerLanes`` use).  Classification is *real* — every
  flush calls ``PercivalBlocker.decide_many``, which may scatter across
  the worker pool — but time is virtual, so latency distributions,
  backpressure behaviour, and failure injections replay bit-identically
  run after run.  This is what the property/fault harness and the
  ``serve-sim`` CLI drive.
* :class:`AsyncServeFront` — the ``asyncio`` front door for real
  concurrent callers: ``await front.submit(bitmap)`` resolves to a
  :class:`~repro.core.blocker.BlockDecision` once the request's batch
  flushes (on ``max_batch`` or the ``max_wait_ms`` timer, whichever
  first).

Both resolve duplicate work without spending compute on it, in two
tiers: a fingerprint that hits the blocker's **memo** is answered
immediately and never enters the queue (cross-session sharing — the
paper's memoized deployment, lifted above the page), and a fingerprint
already **queued** coalesces onto the queued request as a rider,
sharing its verdict without consuming queue depth or a batch slot.

Admission control is explicit: a full queue sheds the request — the
simulator records it, the asyncio front raises
:class:`ServeOverloadError` — so overload degrades visibly instead of
growing an unbounded queue.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.blocker import BlockDecision, PercivalBlocker
from repro.core.config import ServeSettings, configured_serve_settings
from repro.serve.metrics import ServeStats
from repro.serve.queue import BatchQueue, ServeRequest
from repro.utils.clock import VirtualClock


class ServeOverloadError(RuntimeError):
    """The request was shed at admission: queue depth is at its bound.

    Explicit backpressure — callers decide whether to retry, degrade
    (render without a verdict, as async mode already does), or surface
    the overload.  The serving layer never queues unboundedly and never
    drops a request silently.
    """


@dataclass(frozen=True)
class ArrivalEvent:
    """One simulated request: a frame from a page session."""

    at_ms: float
    session_id: str
    bitmap: np.ndarray


@dataclass
class ServeResult:
    """Outcome of one simulated request."""

    request_id: int
    session_id: str
    key: str
    arrival_ms: float
    decision: Optional[BlockDecision] = None
    shed: bool = False
    memo_hit: bool = False
    #: rode along with an identical queued fingerprint (no batch slot)
    coalesced: bool = False
    flush_ms: float = 0.0
    complete_ms: float = 0.0

    @property
    def queue_wait_ms(self) -> float:
        return self.flush_ms - self.arrival_ms

    @property
    def service_ms(self) -> float:
        return self.complete_ms - self.flush_ms

    @property
    def latency_ms(self) -> float:
        return self.complete_ms - self.arrival_ms


@dataclass
class ServeReport:
    """Everything a simulation run produced, in submission order."""

    results: List[ServeResult]
    stats: ServeStats
    makespan_ms: float

    @property
    def answered(self) -> List[ServeResult]:
        return [r for r in self.results if not r.shed]

    @property
    def shed(self) -> List[ServeResult]:
        return [r for r in self.results if r.shed]


class BatchComputeModel:
    """Virtual cost of one batched forward, ``setup + n * per_image``.

    Defaults derive from the blocker's calibrated per-image latency so
    a batch of one costs exactly one calibrated classification, and the
    marginal frame costs ``amortization`` of it — the shape the PR 1
    fast-path benchmark measured (batched inference amortizes fixed
    per-call overhead across the batch).
    """

    #: marginal cost of one more frame, as a fraction of the
    #: single-image latency (PR 1 measured >= 4x batched throughput)
    AMORTIZATION = 0.25

    def __init__(self, per_image_ms: float, setup_ms: float) -> None:
        if per_image_ms < 0 or setup_ms < 0:
            raise ValueError("compute-model costs must be non-negative")
        self.per_image_ms = per_image_ms
        self.setup_ms = setup_ms

    @classmethod
    def from_blocker(cls, blocker: PercivalBlocker) -> "BatchComputeModel":
        latency = blocker.calibrated_latency_ms
        return cls(
            per_image_ms=latency * cls.AMORTIZATION,
            setup_ms=latency * (1.0 - cls.AMORTIZATION),
        )

    def __call__(self, batch_size: int) -> float:
        if batch_size <= 0:
            return 0.0
        return self.setup_ms + batch_size * self.per_image_ms


class ServeLoop:
    """Deterministic micro-batching simulator over a virtual clock.

    ``run`` replays a traffic trace (:class:`ArrivalEvent` list) through
    the full serving stack: memo lookup, fingerprint coalescing,
    admission control, deadline/size-based flushing, and one real
    ``decide_many`` per flushed batch.  Batch compute occupies a single
    virtual compute lane (``compute_model`` prices it), so a slow batch
    visibly delays the batches behind it — the p99 tail under load is a
    property of the trace, not of the host machine.
    """

    def __init__(
        self,
        blocker: PercivalBlocker,
        settings: Optional[ServeSettings] = None,
        compute_model: Optional[Callable[[int], float]] = None,
    ) -> None:
        self.blocker = blocker
        self.settings = configured_serve_settings(settings)
        self.compute_model = (
            compute_model
            if compute_model is not None
            else BatchComputeModel.from_blocker(blocker)
        )

    def run(self, events: Sequence[ArrivalEvent]) -> ServeReport:
        """Replay ``events`` through the serving stack.

        Discrete-event structure: the compute lane is retired first,
        then a due batch is dispatched if the lane is free, then the
        clock advances to the earliest of {next arrival, lane
        completion, queue deadline}.  Gating dispatch on the lane is
        what makes overload *visible*: while a batch computes, arrivals
        pile into the queue, and past ``max_depth`` they shed — exactly
        the backpressure a real single-model server exhibits.  (The
        queue itself still never holds a due request at poll time;
        that contract is property-tested on :class:`BatchQueue`
        directly.)
        """
        events = sorted(events, key=lambda event: event.at_ms)
        queue = BatchQueue(self.settings)
        clock = VirtualClock()
        stats = ServeStats()
        results: List[ServeResult] = []
        pending: Dict[str, ServeRequest] = {}
        #: which ServeResult belongs to each queued request (leaders
        #: and riders alike), resolved at flush time
        open_results: Dict[int, ServeResult] = {}
        #: virtual time the single compute lane frees up (None = idle)
        busy_until: Optional[float] = None
        index = 0
        next_id = 0

        while True:
            now = clock.now_ms
            if busy_until is not None and now >= busy_until:
                busy_until = None
            if busy_until is None:
                batch = queue.pop_batch(now)
                if batch is not None:
                    busy_until = self._flush(
                        batch, now, pending, open_results, stats
                    )
                    continue
            arrival = events[index].at_ms if index < len(events) else None
            deadline = queue.next_deadline_ms()
            candidates = [
                t
                for t in (
                    arrival,
                    busy_until,
                    # a deadline is only actionable once the lane frees
                    deadline if busy_until is None else None,
                )
                if t is not None
            ]
            if not candidates:
                break
            next_time = min(candidates)
            clock.advance_to(next_time)
            if arrival is not None and next_time >= arrival:
                event = events[index]
                index += 1
                next_id += 1
                results.append(
                    self._admit(
                        event, next_id, clock.now_ms,
                        queue, pending, open_results, stats,
                    )
                )

        return ServeReport(
            results=results, stats=stats, makespan_ms=clock.now_ms
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _admit(
        self,
        event: ArrivalEvent,
        request_id: int,
        now_ms: float,
        queue: BatchQueue,
        pending: Dict[str, ServeRequest],
        open_results: Dict[int, ServeResult],
        stats: ServeStats,
    ) -> ServeResult:
        stats.submitted += 1
        key = self.blocker.fingerprint(event.bitmap)
        result = ServeResult(
            request_id=request_id,
            session_id=event.session_id,
            key=key,
            arrival_ms=now_ms,
        )
        cached = self.blocker.memoized_decision(key=key)
        if cached is not None:
            # tier 1: shared memo — answered instantly, no queue entry
            result.decision = cached
            result.memo_hit = True
            result.flush_ms = result.complete_ms = now_ms
            stats.memo_hits += 1
            stats.answered += 1
            self._record_latency(stats, result)
            return result
        request = ServeRequest(
            request_id=request_id,
            session_id=event.session_id,
            key=key,
            bitmap=event.bitmap,
            arrival_ms=now_ms,
        )
        leader = pending.get(key)
        if leader is not None:
            # tier 2: same fingerprint already queued — ride along
            leader.coalesced.append(request)
            result.coalesced = True
            stats.coalesced += 1
            open_results[request_id] = result
            return result
        if not queue.offer(request, now_ms):
            result.shed = True
            result.flush_ms = result.complete_ms = now_ms
            stats.shed += 1
            return result
        pending[key] = request
        open_results[request_id] = result
        return result

    def _flush(
        self,
        batch: List[ServeRequest],
        now_ms: float,
        pending: Dict[str, ServeRequest],
        open_results: Dict[int, ServeResult],
        stats: ServeStats,
    ) -> float:
        """Dispatch one batch on the (free) compute lane; returns the
        virtual time the lane frees up again."""
        bitmaps = [request.bitmap for request in batch]
        keys = [request.key for request in batch]
        pool = self.blocker.pool
        capacity = (
            pool.available_capacity
            if pool is not None and hasattr(pool, "available_capacity")
            else 0
        )
        decisions = self.blocker.decide_many(bitmaps, keys=keys)
        cost_ms = float(self.compute_model(len(batch)))
        complete_ms = now_ms + cost_ms
        for request, decision in zip(batch, decisions):
            pending.pop(request.key, None)
            for settled in (request, *request.coalesced):
                result = open_results.pop(settled.request_id)
                result.decision = decision
                result.flush_ms = now_ms
                result.complete_ms = complete_ms
                stats.answered += 1
                self._record_latency(stats, result)
        stats.batches += 1
        stats.batched_requests += len(batch)
        stats.capacity_samples.append(capacity)
        return complete_ms

    @staticmethod
    def _record_latency(stats: ServeStats, result: ServeResult) -> None:
        stats.queue_wait_ms.add(result.queue_wait_ms)
        stats.service_ms.add(result.service_ms)
        stats.total_ms.add(result.latency_ms)


class AsyncServeFront:
    """``asyncio`` front door over the same micro-batching queue.

    ``submit`` returns an awaitable that resolves to the request's
    :class:`BlockDecision`.  A full batch schedules a flush callback on
    the event loop (deferred, so a burst of submits already on the
    ready queue gets to enqueue — or shed — before compute runs); a
    partial batch flushes when its oldest request hits ``max_wait_ms``
    via a ``call_later`` timer.  Batch compute runs on the event-loop
    thread (numpy/BLAS release the GIL, and a dedicated executor would
    only reorder the same GEMMs).  A full queue raises
    :class:`ServeOverloadError` — backpressure is the caller's signal.
    """

    def __init__(
        self,
        blocker: PercivalBlocker,
        settings: Optional[ServeSettings] = None,
    ) -> None:
        self.blocker = blocker
        self.settings = configured_serve_settings(settings)
        self.stats = ServeStats()
        self._queue = BatchQueue(self.settings)
        self._pending: Dict[str, ServeRequest] = {}
        self._waiters: Dict[int, "asyncio.Future[BlockDecision]"] = {}
        self._arrivals: Dict[int, float] = {}
        self._timer: Optional[asyncio.TimerHandle] = None
        self._flush_handle: Optional[asyncio.Handle] = None
        self._origin_s: Optional[float] = None
        self._next_id = 0

    # ------------------------------------------------------------------
    # Front door
    # ------------------------------------------------------------------
    async def submit(
        self, bitmap: np.ndarray, session_id: str = "session"
    ) -> BlockDecision:
        """One classification request; resolves when its batch flushes."""
        loop = asyncio.get_running_loop()
        now_ms = self._now_ms(loop)
        self.stats.submitted += 1
        key = self.blocker.fingerprint(bitmap)
        cached = self.blocker.memoized_decision(key=key)
        if cached is not None:
            self.stats.memo_hits += 1
            self.stats.answered += 1
            self._record(now_ms, now_ms, now_ms)
            return cached
        self._next_id += 1
        request = ServeRequest(
            request_id=self._next_id,
            session_id=session_id,
            key=key,
            bitmap=bitmap,
            arrival_ms=now_ms,
        )
        future: "asyncio.Future[BlockDecision]" = loop.create_future()
        leader = self._pending.get(key)
        if leader is not None:
            leader.coalesced.append(request)
            self.stats.coalesced += 1
        else:
            if not self._queue.offer(request, now_ms):
                self.stats.shed += 1
                raise ServeOverloadError(
                    f"queue depth {self._queue.depth} at its bound "
                    f"({self.settings.max_depth}); request shed"
                )
            self._pending[key] = request
        self._waiters[request.request_id] = future
        self._arrivals[request.request_id] = now_ms
        if self._queue.due(now_ms):
            # defer to a callback instead of flushing inline: submit
            # returns immediately, and a burst of submits already on
            # the ready queue gets to enqueue (or shed) before the
            # flush runs — admission control stays observable
            self._schedule_flush(loop)
        else:
            self._arm_timer(loop)
        return await future

    async def drain(self) -> None:
        """Flush everything still queued, deadline or not."""
        loop = asyncio.get_running_loop()
        self._flush(loop, force=True)

    async def aclose(self) -> None:
        """Drain pending requests and disarm the flush timer."""
        await self.drain()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None

    @property
    def depth(self) -> int:
        return self._queue.depth

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _now_ms(self, loop: asyncio.AbstractEventLoop) -> float:
        if self._origin_s is None:
            self._origin_s = loop.time()
        return (loop.time() - self._origin_s) * 1000.0

    def _arm_timer(self, loop: asyncio.AbstractEventLoop) -> None:
        deadline = self._queue.next_deadline_ms()
        if deadline is None or self._timer is not None:
            return
        delay_s = max(deadline - self._now_ms(loop), 0.0) / 1000.0
        self._timer = loop.call_later(delay_s, self._on_deadline, loop)

    def _on_deadline(self, loop: asyncio.AbstractEventLoop) -> None:
        self._timer = None
        if self._queue.due(self._now_ms(loop)):
            self._flush(loop)
        self._arm_timer(loop)

    def _schedule_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._flush_handle is None:
            self._flush_handle = loop.call_soon(self._run_flush, loop)

    def _run_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        self._flush_handle = None
        self._flush(loop)

    def _flush(
        self, loop: asyncio.AbstractEventLoop, force: bool = False
    ) -> None:
        while True:
            flush_ms = self._now_ms(loop)
            batch = self._queue.pop_batch(flush_ms, force=force)
            if batch is None:
                break
            bitmaps = [request.bitmap for request in batch]
            keys = [request.key for request in batch]
            pool = self.blocker.pool
            capacity = (
                pool.available_capacity
                if pool is not None and hasattr(pool, "available_capacity")
                else 0
            )
            try:
                decisions = self.blocker.decide_many(bitmaps, keys=keys)
            except Exception as exc:
                # the batch is already popped: its waiters must hear
                # about the failure, not hang, and its keys must leave
                # _pending so later duplicates are not coalesced onto a
                # leader that no longer exists
                for request in batch:
                    self._pending.pop(request.key, None)
                    for settled in (request, *request.coalesced):
                        future = self._waiters.pop(settled.request_id)
                        self._arrivals.pop(settled.request_id)
                        if not future.done():
                            future.set_exception(exc)
                        self.stats.failed += 1
                continue
            complete_ms = self._now_ms(loop)
            for request, decision in zip(batch, decisions):
                self._pending.pop(request.key, None)
                for settled in (request, *request.coalesced):
                    future = self._waiters.pop(settled.request_id)
                    arrival_ms = self._arrivals.pop(settled.request_id)
                    if not future.done():
                        future.set_result(decision)
                    self.stats.answered += 1
                    self._record(arrival_ms, flush_ms, complete_ms)
            self.stats.batches += 1
            self.stats.batched_requests += len(batch)
            self.stats.capacity_samples.append(capacity)
        # re-arm for whatever is still queued (partial batch)
        if self._timer is None and self._queue.depth:
            self._arm_timer(loop)

    def _record(
        self, arrival_ms: float, flush_ms: float, complete_ms: float
    ) -> None:
        self.stats.queue_wait_ms.add(flush_ms - arrival_ms)
        self.stats.service_ms.add(complete_ms - flush_ms)
        self.stats.total_ms.add(complete_ms - arrival_ms)
