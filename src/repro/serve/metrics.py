"""Serving-layer latency and throughput accounting.

Per-request latency is split into the two components that matter for
tuning the micro-batcher: **queue wait** (arrival → flush; grows with
``max_wait_ms`` and shrinks with traffic, because full batches flush
early) and **service** (flush → answer; batch compute plus any time
spent queued behind an earlier batch on the compute lane).  Batch-level
stats record how well coalescing is doing: mean batch size, riders
(fingerprint-coalesced duplicates), and the pool capacity observed at
each flush.

All percentiles are computed on demand from the raw samples — serving
simulations are small enough that exact percentiles beat streaming
sketches on both precision and code size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.eval.reporting import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cascade.router import CascadeStats
    from repro.diff.differ import DiffStats
    from repro.resilience.plane import ResiliencePlane


class LatencySummary:
    """Accumulates latency samples; exact percentiles on demand."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def add(self, value_ms: float) -> None:
        if value_ms < 0:
            raise ValueError("latency samples cannot be negative")
        self._samples.append(float(value_ms))

    @property
    def count(self) -> int:
        return len(self._samples)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100) of the samples; 0.0 when no
        samples have been recorded yet."""
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, p))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return float(np.mean(self._samples))

    @property
    def max(self) -> float:
        if not self._samples:
            return 0.0
        return float(np.max(self._samples))


@dataclass
class ServeStats:
    """Aggregate outcome of a serving run (simulated or real)."""

    submitted: int = 0
    answered: int = 0
    shed: int = 0
    #: requests whose batch's classification raised after it was popped
    #: (asyncio front only: their awaiters receive the exception)
    failed: int = 0
    #: answered from the session's page snapshot (diff tier), before
    #: the request's bitmap was even fingerprinted
    diff_hits: int = 0
    #: answered by a cascade rule tier, bypassing memo and queue both
    rule_hits: int = 0
    #: answered straight from the shared memo, bypassing the queue
    memo_hits: int = 0
    #: duplicate-fingerprint requests that rode along with a queued
    #: leader instead of occupying their own batch slot
    coalesced: int = 0
    batches: int = 0
    #: sum of *unique* requests across flushed batches
    batched_requests: int = 0
    #: virtual compute lanes the run was simulated with (1 = the
    #: serializing pre-lane loop; the asyncio front always reports 1)
    lanes: int = 1
    #: worker-pool capacity observed at each flush (0 = in-process)
    capacity_samples: List[int] = field(default_factory=list)
    #: virtual ms each lane spent computing, keyed by lane index —
    #: utilization skew here means arrivals never overlapped enough to
    #: fill the later lanes
    lane_busy_ms: Dict[int, float] = field(default_factory=dict)
    queue_wait_ms: LatencySummary = field(default_factory=LatencySummary)
    service_ms: LatencySummary = field(default_factory=LatencySummary)
    total_ms: LatencySummary = field(default_factory=LatencySummary)
    #: queue wait split by priority class — the whole point of priority
    #: lanes is that this distribution differs across classes while the
    #: conservation law stays priority-blind
    queue_wait_by_priority: Dict[int, LatencySummary] = field(
        default_factory=dict
    )
    #: router-side cascade accounting, attached when a run serves with
    #: the confidence router enabled (None = cascade off)
    cascade: Optional["CascadeStats"] = None
    #: differ-side accounting, attached when a run serves with the
    #: snapshot/diff layer enabled (None = diff off)
    diff: Optional["DiffStats"] = None
    #: the live resilience plane (breakers + degradation ladder),
    #: attached when a run serves with resilience enabled (None = off)
    resilience: Optional["ResiliencePlane"] = None
    #: tier calls (recall, route, feedback) that raised and were
    #: absorbed instead of taking the request or the flush down
    tier_errors: int = 0

    def record_queue_wait(self, priority: int, value_ms: float) -> None:
        """Attribute one queue-wait sample to its priority class."""
        summary = self.queue_wait_by_priority.get(priority)
        if summary is None:
            summary = self.queue_wait_by_priority[priority] = LatencySummary()
        summary.add(value_ms)

    @property
    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        return self.batched_requests / self.batches

    def conserved(self) -> bool:
        """The serving conservation law: every submitted request was
        answered, explicitly shed, or explicitly failed — nothing lost,
        nothing invented."""
        return self.submitted == self.answered + self.shed + self.failed

    def to_table(self, title: str = "Serving metrics") -> str:
        rows = [
            ("requests submitted", self.submitted),
            ("requests answered", self.answered),
            ("requests shed (backpressure)", self.shed),
            ("requests failed (batch error)", self.failed),
            ("diff hits (snapshot verdict, no hash)", self.diff_hits),
            ("rule hits (cascade, no queue entry)", self.rule_hits),
            ("memo hits (no queue entry)", self.memo_hits),
            ("coalesced duplicates", self.coalesced),
            ("batches flushed", self.batches),
            ("mean batch size", f"{self.mean_batch_size:.2f}"),
            ("compute lanes", self.lanes),
            ("lane busy (ms)",
             " / ".join(
                 f"{self.lane_busy_ms.get(lane, 0.0):.1f}"
                 for lane in range(self.lanes)
             )),
            ("queue wait p50/p95/p99 (ms)",
             f"{self.queue_wait_ms.p50:.2f} / {self.queue_wait_ms.p95:.2f}"
             f" / {self.queue_wait_ms.p99:.2f}"),
            ("service p50/p95/p99 (ms)",
             f"{self.service_ms.p50:.2f} / {self.service_ms.p95:.2f}"
             f" / {self.service_ms.p99:.2f}"),
            ("total p50/p95/p99 (ms)",
             f"{self.total_ms.p50:.2f} / {self.total_ms.p95:.2f}"
             f" / {self.total_ms.p99:.2f}"),
        ]
        for priority in sorted(self.queue_wait_by_priority):
            summary = self.queue_wait_by_priority[priority]
            rows.append(
                (f"queue wait p50/p99 (ms) [prio {priority}]",
                 f"{summary.p50:.2f} / {summary.p99:.2f}"),
            )
        if self.cascade is not None:
            residual = (
                self.batched_requests / self.answered
                if self.answered
                else 0.0
            )
            rows.extend([
                ("cascade micro-rule hits", self.cascade.micro_hits),
                ("cascade filterlist hits", self.cascade.list_hits),
                ("cascade audits (model verify)", self.cascade.audits),
                ("cascade rules compiled", self.cascade.compiled),
                ("cascade rules invalidated", self.cascade.invalidations),
                ("cascade invalidations audit/shadow",
                 f"{self.cascade.audit_invalidations} / "
                 f"{self.cascade.shadow_invalidations}"),
                ("residual CNN fraction", f"{residual:.3f}"),
            ])
        if self.diff is not None:
            rows.extend([
                ("diff recalls (probe/hit)",
                 f"{self.diff.recalls} / {self.diff.recall_hits}"),
                ("diff regions remembered", self.diff.remembered),
            ])
        if self.resilience is not None:
            plane = self.resilience
            controller = plane.controller
            states = " / ".join(
                f"{name}={state}"
                for name, state in plane.breaker_states().items()
            )
            dwell = " / ".join(
                f"{name}={controller.dwell_ms[name]:.1f}"
                for name in controller.dwell_ms
                if controller.dwell_ms[name] > 0.0
            ) or "normal=0.0"
            rows.extend([
                ("brownout level", controller.level_name),
                ("ladder transitions (down/up)",
                 f"{sum(1 for t in controller.transitions if t.direction == 'down')}"
                 f" / "
                 f"{sum(1 for t in controller.transitions if t.direction == 'up')}"),
                ("brownout dwell (ms)", dwell),
                ("breaker states", states),
                ("breaker trips", plane.breaker_trips()),
                ("chaos events injected", plane.chaos_injected),
                ("tier errors absorbed", self.tier_errors),
                ("ladder sheds (of shed)", plane.degraded_sheds),
                ("pool flushes bypassed (breaker)", plane.pool_bypassed),
                ("failed batches", plane.failed_batches),
            ])
        table = format_table(("metric", "value"), rows)
        return f"{title}\n{table}"
