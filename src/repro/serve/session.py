"""Simulated multi-user traffic and the renderer's serving bridge.

PERCIVAL's deployment is many concurrent page renders feeding one
in-browser model.  :func:`synthesize_traffic` builds that workload as a
deterministic trace: N page sessions, each decoding a stream of frames,
where a configurable fraction of frames are *shared creatives* — the
same ad unit syndicated across sites — so cross-session memoization and
fingerprint coalescing have something real to bite on.

:class:`RenderServeBridge` is the hook that routes a renderer's
async-mode decodes through the micro-batching layer: misses enqueue
during raster (paint never waits), and the page's pending frames
classify in ``max_batch``-sized chunks at drain time.  The bridge keeps
one blocker across pages, so a creative classified while serving one
page session answers every later session from the shared memo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cascade.provenance import FrameProvenance
from repro.cascade.router import CascadeHit, CascadeRouter
from repro.core.blocker import BlockDecision, PercivalBlocker
from repro.core.config import ServeSettings, configured_serve_settings
from repro.serve.loop import ArrivalEvent, BatchComputeModel
from repro.serve.queue import PRIORITY_BELOW_FOLD, PRIORITY_VIEWPORT
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of a synthesized multi-session request stream."""

    sessions: int = 8
    frames_per_session: int = 12
    #: fraction of frames drawn from the shared creative pool (the same
    #: ad syndicated across pages) rather than freshly generated
    duplicate_fraction: float = 0.3
    #: size of that shared pool
    shared_creatives: int = 6
    #: fraction of *fresh* frames that are ads (shared pool is half ads)
    ad_fraction: float = 0.5
    #: mean virtual inter-arrival gap between one session's frames
    mean_gap_ms: float = 2.0
    #: virtual stagger between session starts
    session_stagger_ms: float = 1.0
    #: the first N frames of each session land inside the viewport
    #: (:data:`~repro.serve.queue.PRIORITY_VIEWPORT`); the rest are
    #: below the fold — pages paint top-down, so the user-visible slots
    #: are the ones decoded first
    viewport_frames: int = 4
    #: attach :class:`~repro.cascade.FrameProvenance` to every event
    #: (URL + DOM path + slot shape), synthesized from a *separate*
    #: derived RNG stream — the bitmap/arrival trace is bit-identical
    #: with provenance on or off
    provenance: bool = False
    #: distinct page sites sessions cycle through (micro-rules are
    #: per-site, so fewer sites = more cross-session rule sharing)
    sites: int = 4
    #: revisit epochs appended after the base trace: each session
    #: re-emits its page's frames (same URL, same content key, same
    #: bitmap) that many more times — the scroll/feed-update workload
    #: the diff tier answers in O(delta).  0 = the classic flat trace,
    #: bit-identical to the pre-revisit generator.
    revisits: int = 0
    #: fraction of a session's slots that swap in a *fresh* creative on
    #: each revisit (the feed-update delta the differ cannot inherit)
    revisit_churn: float = 0.1
    #: virtual idle gap between the end of one epoch and the next
    revisit_gap_ms: float = 50.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.revisits < 0:
            raise ValueError("revisits must be >= 0")
        if not 0.0 <= self.revisit_churn <= 1.0:
            raise ValueError("revisit_churn must be in [0, 1]")


def synthesize_traffic(spec: Optional[TrafficSpec] = None) -> List[ArrivalEvent]:
    """A deterministic multi-session arrival trace for the serve loop.

    Frames are real synthesized creatives/content (the same generators
    the calibration gate and training corpus use), and arrival times
    are virtual milliseconds — the trace replays identically for a
    given spec, so simulation assertions can be exact.
    """
    # leaf import: the synth generators stay out of serve's import graph
    # for deployments that only use the asyncio front door
    from repro.synth.adgen import AdSpec, generate_ad
    from repro.synth.contentgen import generate_content

    spec = spec or TrafficSpec()
    rng = spawn_rng(spec.seed, "serve-traffic")
    # provenance draws come from their own derived stream so attaching
    # (or dropping) provenance never perturbs the bitmap/arrival trace
    prov = _ProvenanceSynth(spec) if spec.provenance else None
    shared: List[np.ndarray] = []
    for index in range(spec.shared_creatives):
        if index % 2 == 0:
            shared.append(generate_ad(rng, AdSpec()))
        else:
            shared.append(generate_content(rng))

    events: List[ArrivalEvent] = []
    # per-session slot state, kept so revisit epochs can re-emit the
    # page's frames (same bitmap, same provenance, same content key)
    pages: List[List[tuple]] = []
    fresh_serial = 0
    for session_index in range(spec.sessions):
        session_id = f"session-{session_index:03d}"
        site = f"site{session_index % max(spec.sites, 1)}.example"
        at_ms = session_index * spec.session_stagger_ms
        slots: List[tuple] = []
        for frame_index in range(spec.frames_per_session):
            at_ms += rng.uniform(0.0, 2.0 * spec.mean_gap_ms)
            shared_index = -1
            if shared and rng.uniform() < spec.duplicate_fraction:
                shared_index = int(rng.integers(len(shared)))
                bitmap = shared[shared_index]
                is_ad_frame = shared_index % 2 == 0
                content_key = f"s{shared_index:03d}"
            elif rng.uniform() < spec.ad_fraction:
                bitmap = generate_ad(rng, AdSpec())
                is_ad_frame = True
                fresh_serial += 1
                content_key = f"c{fresh_serial:06d}"
            else:
                bitmap = generate_content(rng)
                is_ad_frame = False
                fresh_serial += 1
                content_key = f"c{fresh_serial:06d}"
            priority = (
                PRIORITY_VIEWPORT
                if frame_index < spec.viewport_frames
                else PRIORITY_BELOW_FOLD
            )
            provenance = None
            if prov is not None:
                provenance = prov.for_frame(
                    site, bitmap, is_ad_frame, shared_index
                )
            slots.append((bitmap, priority, provenance, content_key))
            events.append(
                ArrivalEvent(
                    at_ms=at_ms,
                    session_id=session_id,
                    bitmap=bitmap,
                    priority=priority,
                    provenance=provenance,
                    content_key=content_key,
                )
            )
        pages.append(slots)

    if spec.revisits:
        # revisit draws come from their own derived stream: the base
        # trace above is bit-identical with revisits on or off
        revisit_rng = spawn_rng(spec.seed, "serve-traffic-revisit")
        horizon = max((event.at_ms for event in events), default=0.0)
        for _ in range(spec.revisits):
            epoch_start = horizon + spec.revisit_gap_ms
            for session_index, slots in enumerate(pages):
                session_id = f"session-{session_index:03d}"
                site = f"site{session_index % max(spec.sites, 1)}.example"
                at_ms = epoch_start + session_index * spec.session_stagger_ms
                for slot_index, slot in enumerate(slots):
                    at_ms += revisit_rng.uniform(0.0, 2.0 * spec.mean_gap_ms)
                    if revisit_rng.uniform() < spec.revisit_churn:
                        # feed update: this slot swaps in a fresh
                        # creative the snapshot cannot answer
                        is_ad_frame = (
                            revisit_rng.uniform() < spec.ad_fraction
                        )
                        if is_ad_frame:
                            bitmap = generate_ad(revisit_rng, AdSpec())
                        else:
                            bitmap = generate_content(revisit_rng)
                        fresh_serial += 1
                        content_key = f"c{fresh_serial:06d}"
                        provenance = slot[2]
                        if prov is not None:
                            provenance = prov.for_frame(
                                site, bitmap, is_ad_frame, -1
                            )
                        slot = (bitmap, slot[1], provenance, content_key)
                        slots[slot_index] = slot
                    bitmap, priority, provenance, content_key = slot
                    events.append(
                        ArrivalEvent(
                            at_ms=at_ms,
                            session_id=session_id,
                            bitmap=bitmap,
                            priority=priority,
                            provenance=provenance,
                            content_key=content_key,
                        )
                    )
                    horizon = max(horizon, at_ms)

    events.sort(key=lambda event: event.at_ms)
    return events


class _ProvenanceSynth:
    """Synthesizes per-frame provenance off a dedicated RNG stream.

    Ad frames resolve to an ad-network URL (rotating creative serial
    under a stable host + path prefix — the shape real networks serve
    at) and a conventional ad container class; content frames resolve
    to the site's own CDN.  Shared creatives keep one stable URL/class
    per pool slot, so every syndicated appearance looks like the same
    resource — only the embedding page changes.
    """

    def __init__(self, spec: TrafficSpec) -> None:
        from repro.synth.webgen import (
            AD_NETWORKS,
            CONTENT_CLASSES,
            KNOWN_AD_CLASSES,
        )

        self._rng = spawn_rng(spec.seed, "serve-traffic-prov")
        self._networks = AD_NETWORKS
        self._ad_classes = KNOWN_AD_CLASSES
        self._content_classes = CONTENT_CLASSES
        self._serial = 0
        #: pool slot -> (url, css class) for shared creatives
        self._shared: dict = {}

    def _ad_resource(self, serial: int) -> Tuple[str, str]:
        network = self._networks[
            int(self._rng.integers(len(self._networks)))
        ]
        url = (
            f"https://{network.domain}{network.path_prefix}"
            f"/c{serial:05d}.png"
        )
        css = self._ad_classes[
            int(self._rng.integers(len(self._ad_classes)))
        ]
        return url, css

    def _content_resource(self, site: str, serial: int) -> Tuple[str, str]:
        url = f"https://cdn.{site}/img/{serial:05d}.jpg"
        css = self._content_classes[
            int(self._rng.integers(len(self._content_classes)))
        ]
        return url, css

    def for_frame(
        self,
        site: str,
        bitmap: np.ndarray,
        is_ad_frame: bool,
        shared_index: int,
    ) -> FrameProvenance:
        if shared_index >= 0:
            cached = self._shared.get(shared_index)
            if cached is None:
                self._serial += 1
                cached = (
                    self._ad_resource(self._serial)
                    if is_ad_frame
                    else self._content_resource("syndicated.example",
                                                self._serial)
                )
                self._shared[shared_index] = cached
            url, css = cached
        else:
            self._serial += 1
            url, css = (
                self._ad_resource(self._serial)
                if is_ad_frame
                else self._content_resource(site, self._serial)
            )
        height, width = int(bitmap.shape[0]), int(bitmap.shape[1])
        return FrameProvenance(
            url=url,
            page_domain=site,
            tag="img",
            css_classes=(css,),
            width=width,
            height=height,
        )


class RenderServeBridge:
    """Routes a renderer's async-mode classification through batches.

    The renderer calls :meth:`lookup` per decoded frame (shared-memo
    fast path) and :meth:`enqueue` on a miss; the frame paints
    immediately either way.  :meth:`drain` then classifies everything
    pending in ``max_batch`` chunks through ``decide_many`` — one
    batched forward (sharded across the worker pool when the blocker
    holds one) instead of per-frame passes — and reports each frame's
    verdict with its amortized virtual cost for the renderer's async
    lanes.  The bridge outlives a single page: later sessions reuse
    every verdict via the blocker's memo.
    """

    def __init__(
        self,
        blocker: PercivalBlocker,
        settings: Optional[ServeSettings] = None,
        cascade: "CascadeRouter | None | bool" = None,
        differ=None,
    ) -> None:
        # leaf imports: the resolvers read their PERCIVAL_* knobs
        from repro.cascade.router import resolve_cascade
        from repro.diff.differ import resolve_differ

        self.blocker = blocker
        self.settings = configured_serve_settings(settings)
        self.compute_model = BatchComputeModel.from_blocker(blocker)
        self.cascade = resolve_cascade(cascade, blocker.classifier.config)
        #: session-scoped snapshot differ; the renderer picks this up so
        #: revisits of a page inherit unchanged regions' verdicts before
        #: any decode happens (None = diff off)
        self.differ = resolve_differ(differ, blocker.classifier.config)
        #: (priority, enqueue seq, key, bitmap, audit, provenance) —
        #: drained most-urgent first, FIFO within a priority class
        self._pending: List[tuple] = []
        #: audit tickets opened by :meth:`route` for keys that memo-
        #: missed, waiting to ride the next :meth:`enqueue` of that key
        self._open_tickets: dict = {}
        self.frames_enqueued = 0
        self.batches_flushed = 0
        #: frames answered by the cascade rule tiers via :meth:`route`
        self.rule_hits = 0

    def lookup(
        self, bitmap: np.ndarray, key: Optional[str] = None
    ) -> Optional[BlockDecision]:
        """Shared-memo lookup; ``None`` means the frame needs compute."""
        return self.blocker.memoized_decision(bitmap, key=key)

    def route(
        self,
        bitmap: np.ndarray,
        key: Optional[str] = None,
        provenance: Optional[FrameProvenance] = None,
    ) -> Optional[BlockDecision]:
        """Cascade rule tier + shared memo, in serve-tier order.

        A rule hit answers without touching the memo; a memo hit
        reconciles (or absorbs into) the cascade; ``None`` means the
        frame needs compute — any open audit ticket waits for the key's
        next :meth:`enqueue` and settles at drain time.
        """
        if key is None:
            key = self.blocker.fingerprint(bitmap)
        audit = None
        if self.cascade is not None:
            routed = self.cascade.route(provenance)
            if isinstance(routed, CascadeHit):
                self.rule_hits += 1
                return routed.decision
            audit = routed
        cached = self.blocker.memoized_decision(bitmap, key=key)
        if cached is not None:
            if self.cascade is not None:
                if audit is not None:
                    self.cascade.reconcile(audit, cached.is_ad)
                else:
                    self.cascade.absorb(provenance, cached)
            return cached
        if audit is not None:
            self._open_tickets.setdefault(key, []).append(audit)
        return None

    def fingerprint(self, bitmap: np.ndarray) -> str:
        return self.blocker.fingerprint(bitmap)

    def enqueue(
        self,
        bitmap: np.ndarray,
        key: str,
        priority: int = PRIORITY_VIEWPORT,
        provenance: Optional[FrameProvenance] = None,
    ) -> None:
        """Queue a memo-missed frame for the next drain.

        ``priority`` is the frame's provenance on the page: the
        renderer passes :data:`PRIORITY_VIEWPORT` for frames whose slot
        is inside the viewport and :data:`PRIORITY_BELOW_FOLD`
        otherwise, so the drain classifies what the user can see first.
        """
        audit = None
        tickets = self._open_tickets.get(key)
        if tickets:
            audit = tickets.pop(0)
            if not tickets:
                del self._open_tickets[key]
        self._pending.append(
            (priority, self.frames_enqueued, key, bitmap, audit, provenance)
        )
        self.frames_enqueued += 1

    @property
    def depth(self) -> int:
        return len(self._pending)

    def drain(self) -> List[Tuple[BlockDecision, float]]:
        """Classify everything pending, in ``max_batch`` chunks.

        Returns one ``(decision, amortized_cost_ms)`` pair per enqueued
        frame, most-urgent-first: viewport frames fill the earliest
        chunks (FIFO within a priority class), so their verdicts
        memoize — and their ads stop flashing — before any below-the-
        fold work runs.  The chunking itself is priority-blind: the
        drain always flushes ``ceil(pending / max_batch)`` batches.
        Duplicate fingerprints within a chunk share one classification
        (``decide_many`` deduplicates), and the amortized cost splits
        the chunk's batched compute evenly across its frames — the
        virtual-clock reflection of what batching buys over per-frame
        inference.
        """
        drained: List[Tuple[BlockDecision, float]] = []
        max_batch = self.settings.max_batch
        pending, self._pending = self._pending, []
        pending.sort(key=lambda entry: (entry[0], entry[1]))
        for start in range(0, len(pending), max_batch):
            chunk = pending[start:start + max_batch]
            keys = [entry[2] for entry in chunk]
            bitmaps = [entry[3] for entry in chunk]
            decisions = self.blocker.decide_many(bitmaps, keys=keys)
            per_frame_ms = float(self.compute_model(len(chunk))) / len(chunk)
            for entry, decision in zip(chunk, decisions):
                drained.append((decision, per_frame_ms))
                if self.cascade is not None:
                    _, _, _, _, audit, provenance = entry
                    if audit is not None:
                        self.cascade.reconcile(audit, decision.is_ad)
                    else:
                        self.cascade.absorb(provenance, decision)
            self.batches_flushed += 1
        return drained
