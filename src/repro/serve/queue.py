"""Deadline-based micro-batch coalescing with priority classes.

:class:`BatchQueue` is the data structure at the heart of the serving
layer: independent classification requests (from many concurrent page
sessions) enter one at a time and leave as shard-sized batches.  A
batch flushes when the queue reaches ``max_batch`` requests **or** when
its oldest request has waited ``max_wait_ms`` — whichever comes first —
so throughput-friendly batching can never hold a single quiet-hour
request hostage.

Requests carry a **priority class** (lower number = more urgent;
:data:`PRIORITY_VIEWPORT` frames are what the user is looking at right
now, :data:`PRIORITY_BELOW_FOLD` frames are not on screen yet).  A
popped batch is assembled most-urgent-first, FIFO within each class, so
viewport frames jump the line — but never permanently: a queued
request's *effective* priority improves one level per ``aging_ms``
waited, which makes the scheduler starvation-free under a sustained
viewport flood.

The queue is deliberately pure: it never reads a wall clock.  Every
operation takes ``now_ms`` explicitly, so the deterministic virtual-
clock serve loop, the asyncio front door, and the Hypothesis property
suite all drive the *same* code with their own notion of time.

Admission control is part of the type: ``offer`` refuses requests past
``max_depth`` (counted across every priority class) and counts them as
shed.  A refused request is an explicit backpressure signal to the
caller — the conservation invariant the property suite pins is "every
submitted request is either answered or *visibly* shed", never silently
dropped.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import ServeSettings

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cascade.provenance import FrameProvenance
    from repro.cascade.router import CascadeAudit

#: the frame is inside the viewport: the user is looking at the slot,
#: so its verdict gates what they see right now
PRIORITY_VIEWPORT = 0
#: the frame is below the fold: it must be decided before the user
#: scrolls to it, but nothing visible is waiting on it
PRIORITY_BELOW_FOLD = 1


@dataclass
class ServeRequest:
    """One classification request inside the serving layer."""

    request_id: int
    session_id: str
    key: str
    bitmap: np.ndarray
    arrival_ms: float
    #: scheduling class (lower = more urgent); riders coalesced onto
    #: this request are served at this request's priority
    priority: int = PRIORITY_VIEWPORT
    #: requests with the same fingerprint that arrived while this one
    #: was queued; they ride along and share the computed verdict
    #: without consuming queue depth or a batch slot
    coalesced: List["ServeRequest"] = field(default_factory=list)
    #: renderer-side frame context (URL, DOM path, slot shape) the
    #: cascade's structural tiers route on; None = unknown provenance,
    #: the request takes the memo/queue path unconditionally
    provenance: Optional["FrameProvenance"] = None
    #: open audit ticket: a cascade rule predicted this frame and the
    #: model verdict must be reconciled against the rule's health
    audit: Optional["CascadeAudit"] = None
    #: pre-decode content hash of the frame's encoded bytes; with a
    #: differ attached, the computed verdict is streamed into the
    #: session's page snapshot under this key at settle time
    content_key: str = ""


class BatchQueue:
    """Priority-class FIFO queue with deadline-based batch coalescing.

    One FIFO deque per priority class; ``pop_batch`` merges them
    most-urgent-first by ``(effective priority, admission order)``.
    Within a class the head is always the best candidate (earlier
    arrivals have waited at least as long, so they never rank worse),
    which keeps every pop O(batch x classes) and — crucially — keeps
    per-``(session, priority)`` FIFO intact: two frames of one session
    at one priority can never reorder.
    """

    def __init__(self, settings: Optional[ServeSettings] = None) -> None:
        self.settings = settings or ServeSettings()
        #: priority class -> FIFO of (admission seq, request)
        self._classes: Dict[int, Deque[Tuple[int, ServeRequest]]] = {}
        self._depth = 0
        self._seq = 0
        #: requests refused at admission (explicit backpressure)
        self.shed_count = 0
        #: requests accepted over the queue's lifetime
        self.accepted_count = 0
        #: requests handed out in popped batches
        self.flushed_count = 0
        #: multiplier on ``max_wait_ms`` for deadline purposes — the
        #: degradation ladder's "widen-deadlines" brownout level sets
        #: this above 1.0 to trade queue wait for batch amortization;
        #: 1.0 (the default) is byte-identical to the pre-ladder queue
        self.deadline_scale = 1.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests currently queued across every priority class
        (coalesced riders excluded)."""
        return self._depth

    def next_deadline_ms(self) -> Optional[float]:
        """Virtual time by which the oldest request must flush, or
        ``None`` when the queue is empty.  The deadline is priority-
        blind: ``max_wait_ms`` bounds every class's queue wait."""
        oldest = self._oldest_arrival_ms()
        if oldest is None:
            return None
        return oldest + self.settings.max_wait_ms * self.deadline_scale

    def due(self, now_ms: float) -> bool:
        """True when a batch must flush now: a full ``max_batch`` is
        waiting, or the oldest request's deadline has arrived."""
        if not self._depth:
            return False
        if self._depth >= self.settings.max_batch:
            return True
        return (
            now_ms
            >= self._oldest_arrival_ms()
            + self.settings.max_wait_ms * self.deadline_scale
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def offer(self, request: ServeRequest, now_ms: float) -> bool:
        """Admit ``request`` at ``now_ms``; ``False`` means it was shed.

        Sheds exactly when the queue already holds ``max_depth``
        requests (summed across priority classes) — bounded memory under
        overload, and the caller gets the backpressure signal
        synchronously (no request ever enters and then disappears).
        Priority buys scheduling order, not admission: an overloaded
        queue sheds a viewport frame as visibly as any other.
        """
        if now_ms < request.arrival_ms:
            raise ValueError("cannot admit a request before it arrives")
        if request.priority < 0:
            raise ValueError("priority must be >= 0")
        if self._depth >= self.settings.max_depth:
            self.shed_count += 1
            return False
        self._seq += 1
        lane = self._classes.setdefault(request.priority, deque())
        lane.append((self._seq, request))
        self._depth += 1
        self.accepted_count += 1
        return True

    def pop_batch(
        self, now_ms: float, force: bool = False
    ) -> Optional[List[ServeRequest]]:
        """The next due batch (up to ``max_batch`` requests, assembled
        by ``(effective priority, admission order)``), or ``None`` when
        nothing is due.  ``force=True`` flushes whatever is queued
        regardless of deadlines (drain/shutdown)."""
        if not self._depth:
            return None
        if not force and not self.due(now_ms):
            return None
        batch: List[ServeRequest] = []
        while self._depth and len(batch) < self.settings.max_batch:
            best_rank: Optional[Tuple[int, int]] = None
            best_priority = 0
            for priority, lane in self._classes.items():
                if not lane:
                    continue
                seq, request = lane[0]
                rank = (self.effective_priority(request, now_ms), seq)
                if best_rank is None or rank < best_rank:
                    best_rank = rank
                    best_priority = priority
            _, request = self._classes[best_priority].popleft()
            self._depth -= 1
            batch.append(request)
        self.flushed_count += len(batch)
        return batch

    # ------------------------------------------------------------------
    # Scheduling policy
    # ------------------------------------------------------------------
    def effective_priority(self, request: ServeRequest, now_ms: float) -> int:
        """``request``'s priority after aging: one level more urgent per
        ``aging_ms`` waited, floored at the most urgent class.  This is
        the starvation-freedom mechanism — any request reaches the top
        class after ``priority * aging_ms`` of waiting, after which only
        strictly older top-class requests outrank it."""
        if request.priority <= 0:
            return request.priority
        waited = max(now_ms - request.arrival_ms, 0.0)
        steps = int(waited // self.settings.aging_ms)
        return max(request.priority - steps, 0)

    def _oldest_arrival_ms(self) -> Optional[float]:
        heads = [
            lane[0][1].arrival_ms
            for lane in self._classes.values()
            if lane
        ]
        if not heads:
            return None
        return min(heads)
