"""Deadline-based micro-batch coalescing.

:class:`BatchQueue` is the data structure at the heart of the serving
layer: independent classification requests (from many concurrent page
sessions) enter one at a time and leave as shard-sized batches.  A
batch flushes when it reaches ``max_batch`` requests **or** when its
oldest request has waited ``max_wait_ms`` — whichever comes first — so
throughput-friendly batching can never hold a single quiet-hour request
hostage.

The queue is deliberately pure: it never reads a wall clock.  Every
operation takes ``now_ms`` explicitly, so the deterministic virtual-
clock serve loop, the asyncio front door, and the Hypothesis property
suite all drive the *same* code with their own notion of time.

Admission control is part of the type: ``offer`` refuses requests past
``max_depth`` and counts them as shed.  A refused request is an
explicit backpressure signal to the caller — the conservation invariant
the property suite pins is "every submitted request is either answered
or *visibly* shed", never silently dropped.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

import numpy as np

from repro.core.config import ServeSettings


@dataclass
class ServeRequest:
    """One classification request inside the serving layer."""

    request_id: int
    session_id: str
    key: str
    bitmap: np.ndarray
    arrival_ms: float
    #: requests with the same fingerprint that arrived while this one
    #: was queued; they ride along and share the computed verdict
    #: without consuming queue depth or a batch slot
    coalesced: List["ServeRequest"] = field(default_factory=list)


class BatchQueue:
    """FIFO request queue with deadline-based batch coalescing."""

    def __init__(self, settings: Optional[ServeSettings] = None) -> None:
        self.settings = settings or ServeSettings()
        self._queue: Deque[ServeRequest] = deque()
        #: requests refused at admission (explicit backpressure)
        self.shed_count = 0
        #: requests accepted over the queue's lifetime
        self.accepted_count = 0
        #: requests handed out in popped batches
        self.flushed_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests currently queued (coalesced riders excluded)."""
        return len(self._queue)

    def next_deadline_ms(self) -> Optional[float]:
        """Virtual time by which the oldest request must flush, or
        ``None`` when the queue is empty."""
        if not self._queue:
            return None
        return self._queue[0].arrival_ms + self.settings.max_wait_ms

    def due(self, now_ms: float) -> bool:
        """True when a batch must flush now: a full ``max_batch`` is
        waiting, or the oldest request's deadline has arrived."""
        if not self._queue:
            return False
        if len(self._queue) >= self.settings.max_batch:
            return True
        return now_ms >= self._queue[0].arrival_ms + self.settings.max_wait_ms

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def offer(self, request: ServeRequest, now_ms: float) -> bool:
        """Admit ``request`` at ``now_ms``; ``False`` means it was shed.

        Sheds exactly when the queue already holds ``max_depth``
        requests — bounded memory under overload, and the caller gets
        the backpressure signal synchronously (no request ever enters
        and then disappears).
        """
        if now_ms < request.arrival_ms:
            raise ValueError("cannot admit a request before it arrives")
        if len(self._queue) >= self.settings.max_depth:
            self.shed_count += 1
            return False
        self._queue.append(request)
        self.accepted_count += 1
        return True

    def pop_batch(
        self, now_ms: float, force: bool = False
    ) -> Optional[List[ServeRequest]]:
        """The next due batch (oldest ``<= max_batch`` requests), or
        ``None`` when nothing is due.  ``force=True`` flushes whatever
        is queued regardless of deadlines (drain/shutdown)."""
        if not self._queue:
            return None
        if not force and not self.due(now_ms):
            return None
        size = min(len(self._queue), self.settings.max_batch)
        batch = [self._queue.popleft() for _ in range(size)]
        self.flushed_count += len(batch)
        return batch
