"""Fleet-scale serving simulation: diurnal traffic + SLO autoscaling.

PERCIVAL's deployment story is millions of browsers feeding shared
infrastructure, and real ad traffic is neither flat nor uniform: load
swells and ebbs over the day, and at peak a handful of *hot creatives*
(the campaign everyone is being shown) dominate the stream.  This
module replays that shape through the deterministic
:class:`~repro.serve.loop.ServeLoop` one **epoch** at a time and lets an
SLO policy react between epochs — exactly the observe/decide/act cadence
of a production autoscaler, compressed into virtual time.

Per epoch the simulator:

1. synthesizes traffic from the epoch's point on the diurnal curve —
   session count interpolates ``base_sessions → peak_sessions`` on a
   raised-cosine day, and the shared-creative fraction grows with
   ``hot_creative_bias`` toward the peak (hot creatives make memo/
   coalescing *more* effective exactly when load is worst, which is the
   paper's cross-session memoization argument at fleet scale);
2. replays it through a :class:`ServeLoop` pinned to the current lane
   count (and, when the blocker holds a resizable worker pool, resizes
   the pool to match — lanes model capacity, the pool provides it);
3. hands the epoch's :class:`~repro.serve.metrics.ServeStats` to the
   :class:`SLOPolicy`, which scales lanes up on a p99 or shed breach
   and down when the tail has ample headroom.

Everything is seeded: epoch ``e`` of a spec synthesizes from
``spec.seed + e``, so a fleet replay is bit-identical run to run — the
property the test suite pins.  Conservation is checked per epoch and
aggregated: scaling may move the tail, it may never lose a request.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

from repro.core.blocker import PercivalBlocker
from repro.core.config import ServeSettings, configured_serve_settings
from repro.eval.reporting import format_table
from repro.serve.loop import ServeLoop, ServeReport
from repro.serve.session import TrafficSpec, synthesize_traffic


@dataclass(frozen=True)
class SLOPolicy:
    """Reactive lane autoscaling against a latency/shed SLO.

    The classic two-threshold controller: scale up one lane when the
    observed p99 total latency breaches ``p99_target_ms`` or any
    request shed; scale down one lane when p99 sits below
    ``scale_down_headroom`` of the target *and* nothing shed — the gap
    between the thresholds is the hysteresis that keeps the fleet from
    flapping.  One step per epoch, clamped to ``[min_lanes,
    max_lanes]``.
    """

    p99_target_ms: float = 25.0
    #: scale down only while p99 < headroom * target (and no sheds)
    scale_down_headroom: float = 0.4
    min_lanes: int = 1
    max_lanes: int = 8

    def __post_init__(self) -> None:
        if self.p99_target_ms <= 0:
            raise ValueError("p99_target_ms must be > 0")
        if not 0.0 < self.scale_down_headroom < 1.0:
            raise ValueError("scale_down_headroom must be in (0, 1)")
        if not 1 <= self.min_lanes <= self.max_lanes:
            raise ValueError("need 1 <= min_lanes <= max_lanes")

    def next_lanes(self, current: int, p99_ms: float, shed: int) -> int:
        """The lane count for the next epoch given this epoch's tail."""
        if shed > 0 or p99_ms > self.p99_target_ms:
            proposed = current + 1
        elif p99_ms < self.p99_target_ms * self.scale_down_headroom:
            proposed = current - 1
        else:
            proposed = current
        return min(max(proposed, self.min_lanes), self.max_lanes)


@dataclass(frozen=True)
class FleetSpec:
    """Shape of a simulated traffic day."""

    #: epochs per replay (one autoscaler observe/act step each)
    epochs: int = 8
    #: concurrent sessions in the quietest epoch
    base_sessions: int = 4
    #: concurrent sessions at the diurnal peak
    peak_sessions: int = 16
    frames_per_session: int = 8
    #: how much the shared-creative fraction grows at peak: at the top
    #: of the curve ``duplicate_fraction`` rises by this much (capped
    #: at 0.9) — the "everyone sees the hot campaign" skew
    hot_creative_bias: float = 0.3
    #: traffic template; per-epoch session count, duplicate fraction,
    #: and seed are derived from it (its own sessions field is ignored)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not 1 <= self.base_sessions <= self.peak_sessions:
            raise ValueError("need 1 <= base_sessions <= peak_sessions")
        if self.frames_per_session < 1:
            raise ValueError("frames_per_session must be >= 1")
        if self.hot_creative_bias < 0:
            raise ValueError("hot_creative_bias must be >= 0")

    def diurnal_multiplier(self, epoch: int) -> float:
        """Position on the raised-cosine day curve, in ``[0, 1]``:
        0 at the quiet edges of the day, 1 at the peak epoch."""
        if self.epochs == 1:
            return 1.0
        return 0.5 * (1.0 - math.cos(2.0 * math.pi * epoch / self.epochs))

    def epoch_traffic(self, epoch: int) -> TrafficSpec:
        """The fully-derived traffic spec for ``epoch``."""
        load = self.diurnal_multiplier(epoch)
        sessions = round(
            self.base_sessions
            + (self.peak_sessions - self.base_sessions) * load
        )
        duplicate = min(
            self.traffic.duplicate_fraction
            + self.hot_creative_bias * load,
            0.9,
        )
        return replace(
            self.traffic,
            sessions=max(int(sessions), 1),
            frames_per_session=self.frames_per_session,
            duplicate_fraction=duplicate,
            seed=self.seed + epoch,
        )


@dataclass
class EpochReport:
    """One autoscaler step: the traffic it saw and what it decided."""

    epoch: int
    sessions: int
    offered: int
    lanes: int
    p99_ms: float
    queue_wait_p99_ms: float
    answered: int
    shed: int
    makespan_ms: float
    #: lane count the policy chose for the NEXT epoch
    next_lanes: int
    report: ServeReport
    #: degradation-ladder level at the end of the epoch ("" when the
    #: resilience plane is off)
    brownout_level: str = ""
    #: ladder transitions (down and up) recorded during this epoch
    ladder_transitions: int = 0


@dataclass
class FleetReport:
    """A full simulated day: per-epoch tails plus fleet-wide totals."""

    epochs: List[EpochReport]
    policy: SLOPolicy

    @property
    def offered(self) -> int:
        return sum(e.offered for e in self.epochs)

    @property
    def answered(self) -> int:
        return sum(e.answered for e in self.epochs)

    @property
    def shed(self) -> int:
        return sum(e.shed for e in self.epochs)

    def conserved(self) -> bool:
        """Fleet-wide conservation: scaling decisions may move the
        tail; they may never lose or invent a request."""
        return all(e.report.stats.conserved() for e in self.epochs)

    @property
    def peak_p99_ms(self) -> float:
        return max((e.p99_ms for e in self.epochs), default=0.0)

    @property
    def peak_lanes(self) -> int:
        return max((e.lanes for e in self.epochs), default=0)

    def to_table(self, title: str = "Fleet replay (SLO autoscaler)") -> str:
        rows = [
            (
                str(e.epoch),
                str(e.sessions),
                str(e.offered),
                str(e.lanes),
                f"{e.p99_ms:.2f}",
                f"{e.queue_wait_p99_ms:.2f}",
                str(e.shed),
                str(e.next_lanes),
            )
            for e in self.epochs
        ]
        table = format_table(
            (
                "epoch", "sessions", "offered", "lanes",
                "p99 ms", "qwait p99", "shed", "→ lanes",
            ),
            rows,
        )
        footer = (
            f"offered={self.offered} answered={self.answered} "
            f"shed={self.shed} conserved={self.conserved()} "
            f"peak p99={self.peak_p99_ms:.2f} ms "
            f"(target {self.policy.p99_target_ms:.0f} ms)"
        )
        ladder = sum(e.ladder_transitions for e in self.epochs)
        if ladder or any(e.brownout_level for e in self.epochs):
            levels = " ".join(
                e.brownout_level or "normal" for e in self.epochs
            )
            footer += (
                f"\nbrownout: {ladder} ladder transitions;"
                f" per-epoch levels: {levels}"
            )
        return f"{title}\n{table}\n{footer}"


class FleetSimulator:
    """Replays a diurnal traffic day with SLO-driven lane scaling.

    Deterministic end to end: traffic is seeded per epoch, the serve
    loop is a virtual-clock DES, and the policy is a pure function of
    observed stats — so two runs of the same spec produce identical
    epoch tables, which is what lets a fleet replay serve as a
    regression artifact rather than a demo.
    """

    def __init__(
        self,
        blocker: PercivalBlocker,
        settings: Optional[ServeSettings] = None,
        policy: Optional[SLOPolicy] = None,
        compute_model: Optional[Callable[[int], float]] = None,
        initial_lanes: int = 1,
        cascade: "object | None | bool" = None,
        chaos: "object | None | bool" = None,
        resilience: "object | None | bool" = None,
    ) -> None:
        # leaf import: only the fleet constructor resolves the knob
        from repro.cascade.router import resolve_cascade
        from repro.resilience import resolve_chaos, resolve_resilience

        if initial_lanes < 1:
            raise ValueError("initial_lanes must be >= 1")
        self.blocker = blocker
        self.settings = configured_serve_settings(settings)
        self.policy = policy or SLOPolicy()
        self.compute_model = compute_model
        self.initial_lanes = initial_lanes
        #: resolved once and shared by every epoch's ServeLoop, so the
        #: compiled rule cache (and its quarantine) persists across the
        #: whole simulated day — rules learned at dawn serve the peak
        self.cascade = resolve_cascade(cascade, blocker.classifier.config)
        #: the same seeded schedule replays inside every epoch (each
        #: epoch's run walks it with a fresh cursor over its own clock)
        self.chaos = resolve_chaos(chaos, blocker.classifier.config)
        #: one plane shared across the day, like the cascade's rule
        #: cache: breakers tripped at the peak stay tripped into the
        #: next epoch, and the dwell ledger spans the whole replay
        self.resilience = resolve_resilience(
            resilience,
            blocker.classifier.config,
            chaos_active=self.chaos is not None,
        )

    def run(self, spec: Optional[FleetSpec] = None) -> FleetReport:
        spec = spec or FleetSpec()
        lanes = min(
            max(self.initial_lanes, self.policy.min_lanes),
            self.policy.max_lanes,
        )
        epochs: List[EpochReport] = []
        for epoch in range(spec.epochs):
            traffic = spec.epoch_traffic(epoch)
            if self.cascade is not None and not traffic.provenance:
                # provenance rides a separate RNG stream, so switching
                # it on leaves the bitmap/arrival trace untouched
                traffic = replace(traffic, provenance=True)
            events = synthesize_traffic(traffic)
            self._resize_pool(lanes)
            transitions_before = (
                len(self.resilience.controller.transitions)
                if self.resilience is not None
                else 0
            )
            loop = ServeLoop(
                self.blocker,
                # pin the epoch's lane count: the policy, not the
                # environment, is the authority during a fleet replay
                replace(self.settings, lanes=lanes),
                compute_model=self.compute_model,
                # `or False`: a resolved None must stay off inside the
                # epoch loop even if the environment knob flips mid-run
                cascade=self.cascade or False,
                chaos=self.chaos or False,
                resilience=self.resilience or False,
            )
            report = loop.run(events)
            stats = report.stats
            p99 = stats.total_ms.p99
            next_lanes = self.policy.next_lanes(lanes, p99, stats.shed)
            epochs.append(
                EpochReport(
                    epoch=epoch,
                    sessions=traffic.sessions,
                    offered=stats.submitted,
                    lanes=lanes,
                    p99_ms=p99,
                    queue_wait_p99_ms=stats.queue_wait_ms.p99,
                    answered=stats.answered,
                    shed=stats.shed,
                    makespan_ms=report.makespan_ms,
                    next_lanes=next_lanes,
                    report=report,
                    brownout_level=(
                        self.resilience.controller.level_name
                        if self.resilience is not None
                        else ""
                    ),
                    ladder_transitions=(
                        len(self.resilience.controller.transitions)
                        - transitions_before
                        if self.resilience is not None
                        else 0
                    ),
                )
            )
            lanes = next_lanes
        return FleetReport(epochs=epochs, policy=self.policy)

    def _resize_pool(self, lanes: int) -> None:
        """Keep the worker pool's capacity in step with the lane count.

        Lanes are the model of capacity; the pool is the capacity.  A
        resize failure (e.g. mid-dispatch) downgrades to the current
        size rather than aborting the replay — the blocker would fall
        back in-process on pool trouble anyway, never mis-classify.
        """
        pool = self.blocker.pool
        resize = getattr(pool, "resize", None)
        if pool is None or resize is None:
            return
        try:
            resize(lanes)
        except Exception:
            pass
