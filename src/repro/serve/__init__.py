"""``repro.serve``: the async micro-batching inference service.

The first layer of the reproduction that models *multi-user* traffic:
independent classification requests from many page sessions coalesce
into shard-sized batches in front of one
:class:`~repro.core.blocker.PercivalBlocker` (and, through it, the
sharded worker pool).  See ``docs/serving.md`` for the architecture and
the ``PERCIVAL_SERVE_*`` knobs.

* :class:`BatchQueue` — deadline-based coalescing (flush on
  ``max_batch`` or ``max_wait_ms``) with bounded-depth admission,
* :class:`ServeLoop` — deterministic virtual-clock simulator (real
  compute, virtual time; the fault/property harness drives this),
* :class:`AsyncServeFront` — the ``asyncio`` front door
  (``await submit(bitmap)`` → :class:`BlockDecision`),
* :class:`RenderServeBridge` — routes the renderer's async-mode
  decodes through the batching layer (viewport frames first),
* :func:`synthesize_traffic` — deterministic multi-session workloads,
* :class:`FleetSimulator` — diurnal traffic replay driving SLO-based
  autoscaling of lanes/workers (see ``repro.serve.fleet``).

With the ``PERCIVAL_CASCADE`` knob on, every entry point accepts a
:class:`~repro.cascade.CascadeRouter` (``cascade=``) that resolves
most provenance-tagged frames from rule tiers before the memo/queue —
see ``repro.cascade`` and ``docs/cascade.md``.  With ``PERCIVAL_DIFF``
on, a :class:`~repro.diff.FrameDiffer` (``differ=``) answers revisited
frames from per-session page snapshots before anything else runs — see
``repro.diff`` and ``docs/diffing.md``.

With ``PERCIVAL_CHAOS`` set, both drivers replay a seeded
:class:`~repro.resilience.ChaosSchedule` (``chaos=``) against the
stack, and the :class:`~repro.resilience.ResiliencePlane`
(``resilience=`` / ``PERCIVAL_RESILIENCE``) puts circuit breakers and
the graceful-degradation ladder in front of every tier — see
``repro.resilience`` and ``docs/resilience.md``.
"""

from repro.cascade.provenance import FrameProvenance
from repro.cascade.router import CascadeRouter, CascadeStats, resolve_cascade
from repro.core.config import (
    ServeSettings,
    configured_cascade_enabled,
    configured_diff_enabled,
    configured_serve_lanes,
    configured_serve_settings,
)
from repro.diff.differ import DiffStats, FrameDiffer, resolve_differ
from repro.resilience import (
    ChaosSchedule,
    ResiliencePlane,
    resolve_chaos,
    resolve_resilience,
)
from repro.serve.loop import (
    ArrivalEvent,
    AsyncServeFront,
    BatchComputeModel,
    ServeClosedError,
    ServeLoop,
    ServeOverloadError,
    ServeReport,
    ServeResult,
)
from repro.serve.metrics import LatencySummary, ServeStats
from repro.serve.queue import (
    PRIORITY_BELOW_FOLD,
    PRIORITY_VIEWPORT,
    BatchQueue,
    ServeRequest,
)
from repro.serve.session import (
    RenderServeBridge,
    TrafficSpec,
    synthesize_traffic,
)
from repro.serve.fleet import (
    FleetReport,
    FleetSimulator,
    FleetSpec,
    SLOPolicy,
)

__all__ = [
    "ArrivalEvent",
    "AsyncServeFront",
    "BatchComputeModel",
    "BatchQueue",
    "CascadeRouter",
    "CascadeStats",
    "ChaosSchedule",
    "DiffStats",
    "FleetReport",
    "FleetSimulator",
    "FleetSpec",
    "FrameDiffer",
    "FrameProvenance",
    "LatencySummary",
    "PRIORITY_BELOW_FOLD",
    "PRIORITY_VIEWPORT",
    "RenderServeBridge",
    "ResiliencePlane",
    "SLOPolicy",
    "ServeClosedError",
    "ServeLoop",
    "ServeOverloadError",
    "ServeReport",
    "ServeRequest",
    "ServeResult",
    "ServeSettings",
    "ServeStats",
    "TrafficSpec",
    "configured_cascade_enabled",
    "configured_diff_enabled",
    "configured_serve_lanes",
    "configured_serve_settings",
    "resolve_cascade",
    "resolve_chaos",
    "resolve_differ",
    "resolve_resilience",
    "synthesize_traffic",
]
