"""Token-indexed rule lookup.

Real ad blockers never scan 60k rules per request: each rule is indexed
by a distinctive substring token, and only rules whose token occurs in
the request URL are tried.  This module implements that scheme — both
for fidelity and because the synthetic render benchmarks issue tens of
thousands of lookups.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Dict, Iterable, List

from repro.filterlist.rules import NetworkRule

_TOKEN_RE = re.compile(r"[a-z0-9]{3,}")
_WILDCARD_SPLIT = re.compile(r"[*^|]")


def rule_tokens(pattern: str) -> List[str]:
    """Candidate index tokens of a rule pattern.

    Tokens are the alphanumeric runs (length >= 3) of the pattern's
    literal segments — wildcard and anchor characters break segments.
    """
    tokens: List[str] = []
    for segment in _WILDCARD_SPLIT.split(pattern.lower()):
        tokens.extend(_TOKEN_RE.findall(segment))
    return tokens


def best_token(pattern: str) -> str:
    """Pick the most selective (longest) token, or "" if none exists."""
    tokens = rule_tokens(pattern)
    if not tokens:
        return ""
    return max(tokens, key=len)


class TokenIndex:
    """Maps URL tokens to the subset of rules that could match."""

    def __init__(self, rules: Iterable[NetworkRule]) -> None:
        self._by_token: Dict[str, List[NetworkRule]] = defaultdict(list)
        self._tokenless: List[NetworkRule] = []
        count = 0
        for rule in rules:
            token = best_token(rule.pattern)
            if token:
                self._by_token[token].append(rule)
            else:
                self._tokenless.append(rule)
            count += 1
        self._size = count

    def __len__(self) -> int:
        return self._size

    def candidates(self, url: str) -> List[NetworkRule]:
        """Rules whose index token occurs in ``url`` (plus tokenless)."""
        url_tokens = set(_TOKEN_RE.findall(url.lower()))
        found: List[NetworkRule] = []
        for token in url_tokens:
            found.extend(self._by_token.get(token, ()))
        found.extend(self._tokenless)
        return found

    @property
    def bucket_count(self) -> int:
        return len(self._by_token)
