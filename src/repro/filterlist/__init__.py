"""Adblock-Plus-syntax filter-list engine (the EasyList substrate).

The paper compares PERCIVAL's decisions against EasyList, the dominant
crowd-sourced filter list.  This package implements the relevant subset
of the ABP rule language:

* network rules — substring patterns with ``||`` domain anchors, ``|``
  edge anchors, ``*`` wildcards, ``^`` separators, and the common
  options (``domain=``, ``third-party``, ``image``),
* exception rules (``@@`` prefix),
* element-hiding rules (``##selector`` with optional domain scoping),

plus a token-indexed matcher (how real ad blockers make rule lookup
cheap) and a generator that produces a synthetic EasyList covering most
— deliberately not all — of the synthetic ad ecosystem.
"""

from repro.filterlist.rules import (
    NetworkRule,
    ElementHideRule,
    RuleParseError,
    parse_rule,
    parse_filter_list,
)
from repro.filterlist.matcher import TokenIndex
from repro.filterlist.engine import FilterEngine, FilterDecision
from repro.filterlist.easylist import (
    build_synthetic_easylist,
    default_easylist,
)

__all__ = [
    "NetworkRule",
    "ElementHideRule",
    "RuleParseError",
    "parse_rule",
    "parse_filter_list",
    "TokenIndex",
    "FilterEngine",
    "FilterDecision",
    "build_synthetic_easylist",
    "default_easylist",
]
