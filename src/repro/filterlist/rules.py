"""Parsing of Adblock-Plus-syntax filter rules.

Supported grammar (the subset EasyList's ad-blocking core uses):

``! comment``
    Ignored.
``@@pattern$options``
    Exception (allow) network rule.
``pattern$options``
    Blocking network rule.  ``pattern`` may use ``||`` (domain anchor),
    ``|`` (edge anchor), ``*`` (wildcard), ``^`` (separator).
``domain1,~domain2##selector``
    Element-hiding rule, optionally scoped to domains (``~`` negates).

Recognized options: ``domain=a|b|~c``, ``third-party``, ``~third-party``,
``image``, ``script`` (resource types other than image are parsed and
matched but unused by the image-focused experiments).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple


class RuleParseError(ValueError):
    """Raised for rules outside the supported grammar."""


_SEPARATOR_CLASS = r"[^A-Za-z0-9._%\-]"


@dataclass(frozen=True)
class NetworkRule:
    """A compiled network (URL-pattern) rule."""

    raw: str
    pattern: str
    is_exception: bool
    regex: "re.Pattern[str]"
    domains: FrozenSet[str] = frozenset()
    excluded_domains: FrozenSet[str] = frozenset()
    third_party: Optional[bool] = None
    resource_types: FrozenSet[str] = frozenset()

    def applies_to(
        self,
        page_domain: str,
        third_party: bool,
        resource_type: str,
    ) -> bool:
        """Check the rule's option constraints (not the URL pattern)."""
        if self.third_party is not None and self.third_party != third_party:
            return False
        if self.resource_types and resource_type not in self.resource_types:
            return False
        if self.excluded_domains and _domain_in(page_domain, self.excluded_domains):
            return False
        if self.domains and not _domain_in(page_domain, self.domains):
            return False
        return True

    def matches_url(self, url: str) -> bool:
        return self.regex.search(url) is not None


@dataclass(frozen=True)
class ElementHideRule:
    """An element-hiding (cosmetic) rule: ``domains##selector``."""

    raw: str
    selector: str
    tag: str = ""
    css_class: str = ""
    element_id: str = ""
    domains: FrozenSet[str] = frozenset()
    excluded_domains: FrozenSet[str] = frozenset()

    def applies_to(self, page_domain: str) -> bool:
        if self.excluded_domains and _domain_in(page_domain, self.excluded_domains):
            return False
        if self.domains and not _domain_in(page_domain, self.domains):
            return False
        return True

    def matches_element(
        self, tag: str, classes: Tuple[str, ...], element_id: str
    ) -> bool:
        if self.tag and self.tag != tag:
            return False
        if self.css_class and self.css_class not in classes:
            return False
        if self.element_id and self.element_id != element_id:
            return False
        return bool(self.tag or self.css_class or self.element_id)


def _domain_in(domain: str, candidates: FrozenSet[str]) -> bool:
    """True if ``domain`` equals or is a subdomain of any candidate."""
    for candidate in candidates:
        if domain == candidate or domain.endswith("." + candidate):
            return True
    return False


def _compile_pattern(pattern: str) -> "re.Pattern[str]":
    """Compile an ABP URL pattern into a Python regex."""
    regex_parts: List[str] = []
    i = 0
    if pattern.startswith("||"):
        # domain anchor: scheme + optional subdomains, then the domain
        regex_parts.append(r"^[a-z][a-z0-9+.-]*://(?:[^/?#]*\.)?")
        i = 2
    elif pattern.startswith("|"):
        regex_parts.append("^")
        i = 1
    end_anchor = False
    if pattern.endswith("|") and len(pattern) > i:
        end_anchor = True
        pattern = pattern[:-1]
    while i < len(pattern):
        ch = pattern[i]
        if ch == "*":
            regex_parts.append(".*")
        elif ch == "^":
            regex_parts.append(f"(?:{_SEPARATOR_CLASS}|$)")
        else:
            regex_parts.append(re.escape(ch))
        i += 1
    if end_anchor:
        regex_parts.append("$")
    return re.compile("".join(regex_parts))


def _parse_domains(spec: str, sep: str) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    include, exclude = set(), set()
    for token in filter(None, spec.split(sep)):
        if token.startswith("~"):
            exclude.add(token[1:].lower())
        else:
            include.add(token.lower())
    return frozenset(include), frozenset(exclude)


_KNOWN_TYPES = {"image", "script", "stylesheet", "subdocument", "xmlhttprequest"}


def _parse_network_rule(line: str) -> NetworkRule:
    is_exception = line.startswith("@@")
    body = line[2:] if is_exception else line

    options = ""
    # the options separator is the last '$' not inside the pattern body;
    # EasyList patterns never contain a literal '$', so rsplit is safe.
    if "$" in body:
        body, options = body.rsplit("$", 1)
    if not body:
        raise RuleParseError(f"empty pattern in rule {line!r}")

    domains: FrozenSet[str] = frozenset()
    excluded: FrozenSet[str] = frozenset()
    third_party: Optional[bool] = None
    resource_types = set()
    for option in filter(None, options.split(",")):
        if option.startswith("domain="):
            domains, excluded = _parse_domains(option[len("domain="):], "|")
        elif option == "third-party":
            third_party = True
        elif option == "~third-party":
            third_party = False
        elif option in _KNOWN_TYPES:
            resource_types.add(option)
        elif option.startswith("~") and option[1:] in _KNOWN_TYPES:
            continue  # negated types: treat as unconstrained
        else:
            raise RuleParseError(f"unsupported option {option!r} in {line!r}")

    return NetworkRule(
        raw=line,
        pattern=body,
        is_exception=is_exception,
        regex=_compile_pattern(body),
        domains=domains,
        excluded_domains=excluded,
        third_party=third_party,
        resource_types=frozenset(resource_types),
    )


_SELECTOR_RE = re.compile(
    r"^(?P<tag>[a-zA-Z][a-zA-Z0-9]*)?"
    r"(?:\.(?P<cls>[a-zA-Z0-9_-]+))?"
    r"(?:\#(?P<id>[a-zA-Z0-9_-]+))?$"
)


def _parse_elemhide_rule(line: str) -> ElementHideRule:
    domain_spec, selector = line.split("##", 1)
    if not selector:
        raise RuleParseError(f"empty selector in {line!r}")
    match = _SELECTOR_RE.match(selector)
    if not match:
        raise RuleParseError(f"unsupported selector {selector!r}")
    domains, excluded = _parse_domains(domain_spec, ",")
    return ElementHideRule(
        raw=line,
        selector=selector,
        tag=(match.group("tag") or "").lower(),
        css_class=match.group("cls") or "",
        element_id=match.group("id") or "",
        domains=domains,
        excluded_domains=excluded,
    )


def parse_rule(line: str):
    """Parse one filter line into a rule object, or None for comments."""
    line = line.strip()
    if not line or line.startswith("!") or line.startswith("["):
        return None
    if "##" in line:
        return _parse_elemhide_rule(line)
    return _parse_network_rule(line)


def parse_filter_list(
    text: str, skip_errors: bool = False
) -> Tuple[List[NetworkRule], List[ElementHideRule]]:
    """Parse a filter-list document into network and element-hide rules."""
    network: List[NetworkRule] = []
    hiding: List[ElementHideRule] = []
    for line in text.splitlines():
        try:
            rule = parse_rule(line)
        except RuleParseError:
            if skip_errors:
                continue
            raise
        if rule is None:
            continue
        if isinstance(rule, NetworkRule):
            network.append(rule)
        else:
            hiding.append(rule)
    return network, hiding
