"""Filter engine: the decision surface of a list-based ad blocker.

Mirrors how uBlock-Origin-style blockers consult EasyList:

1. network requests are checked against blocking rules (token-indexed);
   a matching exception rule overrides a block,
2. DOM elements are checked against element-hiding rules scoped to the
   page's domain.

The engine also keeps match statistics, which the Figure 6 experiment
reads out (fraction of requests / elements matched).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple
from urllib.parse import urlparse

from repro.filterlist.matcher import TokenIndex
from repro.filterlist.rules import (
    ElementHideRule,
    NetworkRule,
    parse_filter_list,
)


@dataclass
class FilterDecision:
    """Outcome of a network-request check."""

    blocked: bool
    rule: Optional[NetworkRule] = None
    exception: Optional[NetworkRule] = None


@dataclass
class EngineStats:
    requests_checked: int = 0
    requests_blocked: int = 0
    elements_checked: int = 0
    elements_hidden: int = 0


class FilterEngine:
    """Compiled filter list with block / hide queries."""

    def __init__(
        self,
        network_rules: Tuple[NetworkRule, ...],
        hiding_rules: Tuple[ElementHideRule, ...],
    ) -> None:
        blocking = [r for r in network_rules if not r.is_exception]
        exceptions = [r for r in network_rules if r.is_exception]
        self._block_index = TokenIndex(blocking)
        self._exception_index = TokenIndex(exceptions)
        self._hiding_rules = tuple(hiding_rules)
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_text(cls, text: str, skip_errors: bool = False) -> "FilterEngine":
        network, hiding = parse_filter_list(text, skip_errors=skip_errors)
        return cls(tuple(network), tuple(hiding))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def check_request(
        self,
        url: str,
        page_domain: str,
        resource_type: str = "image",
    ) -> FilterDecision:
        """Should this request be blocked?

        ``page_domain`` drives the ``domain=`` and ``third-party``
        options; third-party-ness is derived by comparing the request
        host with the page domain, as the browser would.
        """
        self.stats.requests_checked += 1
        host = urlparse(url).netloc.lower()
        third_party = not (
            host == page_domain or host.endswith("." + page_domain)
        )

        matched: Optional[NetworkRule] = None
        for rule in self._block_index.candidates(url):
            if rule.applies_to(
                page_domain, third_party, resource_type
            ) and rule.matches_url(url):
                matched = rule
                break
        if matched is None:
            return FilterDecision(blocked=False)

        for rule in self._exception_index.candidates(url):
            if rule.applies_to(
                page_domain, third_party, resource_type
            ) and rule.matches_url(url):
                return FilterDecision(blocked=False, rule=matched,
                                      exception=rule)
        self.stats.requests_blocked += 1
        return FilterDecision(blocked=True, rule=matched)

    def should_hide_element(
        self,
        tag: str,
        classes: Tuple[str, ...],
        element_id: str,
        page_domain: str,
    ) -> Optional[ElementHideRule]:
        """First element-hiding rule matching the element, if any."""
        self.stats.elements_checked += 1
        for rule in self._hiding_rules:
            if rule.applies_to(page_domain) and rule.matches_element(
                tag, classes, element_id
            ):
                self.stats.elements_hidden += 1
                return rule
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_network_rules(self) -> int:
        return len(self._block_index) + len(self._exception_index)

    @property
    def num_hiding_rules(self) -> int:
        return len(self._hiding_rules)

    def reset_stats(self) -> None:
        self.stats = EngineStats()
