"""Synthetic EasyList generation.

Builds a filter list covering the synthetic ad ecosystem the way the
real EasyList covers the real one: network rules for the *known* ad
networks, path-keyword rules, element-hiding rules for the conventional
ad CSS classes, a handful of exception rules, and filler rules for
unrelated domains (EasyList is mostly rules that never fire on any given
page).

Coverage is deliberately imperfect — unknown networks, first-party ad
serving, and obfuscated CSS classes slip through — because imperfect
list coverage is precisely the gap PERCIVAL exists to close.
"""

from __future__ import annotations

from typing import List, Optional

from repro.filterlist.engine import FilterEngine
from repro.synth.webgen import AD_NETWORKS, KNOWN_AD_CLASSES
from repro.utils.rng import spawn_rng


def build_synthetic_easylist(
    seed: int = 0,
    filler_rules: int = 400,
) -> str:
    """Generate the filter-list document as text."""
    rng = spawn_rng(seed, "easylist")
    lines: List[str] = [
        "[Synthetic EasyList]",
        "! Generated for the PERCIVAL reproduction; ABP syntax subset.",
    ]

    # Network rules for the known ad networks.
    for network in AD_NETWORKS:
        if not network.known_to_easylist:
            continue
        lines.append(f"||{network.domain}^$third-party")
        lines.append(f"||{network.domain}{network.path_prefix}/*$image")

    # Generic path-keyword rules (EasyList's classic /ads/ style).
    lines.extend([
        "/serve/*$third-party,image",
        "/creative/*$third-party",
        "*/banner/*$image",
        "|https://px.*^$image,third-party",
    ])

    # Exceptions: one known network is allowlisted on one publisher
    # (mirrors EasyList's publisher-negotiated exception entries).
    lines.append("@@||ads.doublevision.test^$domain=news1.example")

    # Element-hiding rules for the conventional ad classes.
    for css_class in KNOWN_AD_CLASSES:
        lines.append(f"##.{css_class}")
    lines.append("news3.example###sidebar-promo")

    # Filler rules for domains that never appear in the synthetic web;
    # they exercise the token index without affecting decisions.
    for index in range(filler_rules):
        fake = f"unrelated{index}{rng.integers(10, 99)}.invalid"
        lines.append(f"||{fake}^")
    return "\n".join(lines)


_default_engine: Optional[FilterEngine] = None


def default_easylist(seed: int = 0) -> FilterEngine:
    """Compiled engine for the default synthetic EasyList (cached)."""
    global _default_engine
    if _default_engine is None or seed != 0:
        engine = FilterEngine.from_text(build_synthetic_easylist(seed))
        if seed != 0:
            return engine
        _default_engine = engine
    return _default_engine
