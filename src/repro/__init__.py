"""PERCIVAL reproduction: in-browser perceptual ad blocking.

A from-scratch Python reproduction of *PERCIVAL: Making In-Browser
Perceptual Ad Blocking Practical with Deep Learning* (Din, Tigas, King,
Livshits): a compressed SqueezeNet-fork CNN classifying every decoded
image inside a Blink-shaped render pipeline, evaluated against an
EasyList-style filter engine over a synthetic web.

Quickstart::

    from repro import get_reference_classifier, PercivalBlocker

    classifier = get_reference_classifier()   # trains once, then cached
    blocker = PercivalBlocker(classifier)
    verdict = blocker.decide(decoded_rgba_bitmap)
    if verdict.is_ad:
        ...  # clear the frame before it paints

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
per-figure experiment harness.
"""

from repro.core import (
    AdClassifier,
    BlockDecision,
    GradCam,
    ModelStore,
    PercivalBlocker,
    PercivalConfig,
    get_reference_classifier,
)
from repro.models import PercivalNet, SqueezeNet, describe_model
from repro.browser import BRAVE, CHROMIUM, Renderer
from repro.filterlist import FilterEngine, default_easylist
from repro.synth import SyntheticWeb, WebConfig

__version__ = "1.0.0"

__all__ = [
    "AdClassifier",
    "BlockDecision",
    "GradCam",
    "ModelStore",
    "PercivalBlocker",
    "PercivalConfig",
    "get_reference_classifier",
    "PercivalNet",
    "SqueezeNet",
    "describe_model",
    "BRAVE",
    "CHROMIUM",
    "Renderer",
    "FilterEngine",
    "default_easylist",
    "SyntheticWeb",
    "WebConfig",
    "__version__",
]
