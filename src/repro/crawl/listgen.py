"""Block-list generation from PERCIVAL verdicts (§6 "Deployment").

The paper's second deployment mode: run PERCIVAL in a crawler and use
its verdicts "to build and enhance block lists for traditional ad
blockers" — emitting URL rules for ad resources the existing lists
miss.  This module implements that loop:

1. crawl pages, classify every image with the model,
2. keep resources the model flags as ads that EasyList does *not*
   already block,
3. generalize them into ABP rules (domain rules when a host serves
   mostly flagged resources, exact-path rules otherwise),
4. measure the coverage gain of EasyList + generated rules.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple
from urllib.parse import urlparse

from repro.core.classifier import AdClassifier
from repro.filterlist.engine import FilterEngine
from repro.synth.webgen import Page


@dataclass
class GeneratedList:
    """Rules inferred from crawl verdicts, with provenance counts."""

    domain_rules: List[str] = field(default_factory=list)
    path_rules: List[str] = field(default_factory=list)

    @property
    def rules(self) -> List[str]:
        return self.domain_rules + self.path_rules

    def as_filter_text(self) -> str:
        lines = ["! PERCIVAL-generated supplement"] + self.rules
        return "\n".join(lines)


@dataclass
class ListGenReport:
    generated: GeneratedList
    easylist_recall: float       # fraction of ad requests blocked before
    combined_recall: float       # ... and after adding generated rules
    false_block_rate: float      # non-ad requests hit by generated rules

    def to_table(self) -> str:
        from repro.eval.reporting import format_table
        rows = [
            ("EasyList-only recall on ad requests",
             f"{self.easylist_recall:.3f}"),
            ("EasyList + generated recall",
             f"{self.combined_recall:.3f}"),
            ("false-block rate of generated rules",
             f"{self.false_block_rate:.3f}"),
            ("generated domain rules", len(self.generated.domain_rules)),
            ("generated path rules", len(self.generated.path_rules)),
        ]
        return (
            "== §6 deployment: block-list generation ==\n"
            + format_table(("metric", "value"), rows)
        )


def generate_block_list(
    classifier: AdClassifier,
    engine: FilterEngine,
    pages: Sequence[Page],
    domain_rule_threshold: float = 0.8,
    min_domain_observations: int = 3,
) -> GeneratedList:
    """Infer supplemental rules from classifier verdicts on a crawl.

    A host whose observed resources are flagged as ads at or above
    ``domain_rule_threshold`` (with at least ``min_domain_observations``
    sightings) earns a ``||host^`` rule; other flagged resources earn
    exact-path rules.  First-party promo paths thus become path rules
    (a domain rule would nuke the whole publisher).
    """
    host_stats: Dict[str, List[int]] = defaultdict(lambda: [0, 0])
    flagged: List[Tuple[str, str]] = []  # (host, url)

    for page in pages:
        for element in page.image_elements():
            if engine.check_request(
                element.url, page.site_domain, "image"
            ).blocked:
                continue  # list already covers it
            is_ad = classifier.is_ad(element.render())
            host = urlparse(element.url).netloc.lower()
            stats = host_stats[host]
            stats[1] += 1
            if is_ad:
                stats[0] += 1
                flagged.append((host, element.url))

    generated = GeneratedList()
    domain_hosts = set()
    for host, (ads, total) in sorted(host_stats.items()):
        if (
            total >= min_domain_observations
            and ads / total >= domain_rule_threshold
        ):
            domain_hosts.add(host)
            generated.domain_rules.append(f"||{host}^$image")

    seen_paths = set()
    for host, url in flagged:
        if host in domain_hosts:
            continue
        path = urlparse(url).path
        rule = f"||{host}{path}|"
        if rule not in seen_paths:
            seen_paths.add(rule)
            generated.path_rules.append(rule)
    return generated


def evaluate_list_generation(
    classifier: AdClassifier,
    engine: FilterEngine,
    train_pages: Sequence[Page],
    eval_pages: Sequence[Page],
) -> ListGenReport:
    """Generate rules on one crawl; measure coverage on another."""
    generated = generate_block_list(classifier, engine, train_pages)
    supplement = FilterEngine.from_text(generated.as_filter_text())

    ads_total = ads_blocked_before = ads_blocked_after = 0
    nonads_total = nonads_hit = 0
    for page in eval_pages:
        for element in page.image_elements():
            base = engine.check_request(
                element.url, page.site_domain, "image"
            ).blocked
            extra = supplement.check_request(
                element.url, page.site_domain, "image"
            ).blocked
            if element.is_ad:
                ads_total += 1
                ads_blocked_before += base
                ads_blocked_after += base or extra
            else:
                nonads_total += 1
                nonads_hit += (not base) and extra

    return ListGenReport(
        generated=generated,
        easylist_recall=ads_blocked_before / max(ads_total, 1),
        combined_recall=ads_blocked_after / max(ads_total, 1),
        false_block_rate=nonads_hit / max(nonads_total, 1),
    )
