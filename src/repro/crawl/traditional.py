"""Selenium-style screenshot crawler (§4.4.1).

Methodology reproduced from the paper: visit top sites, follow a few
random links, apply every EasyList rule, screenshot matching elements
as ad samples and non-matching elements as non-ad samples.

Two failure modes are modelled because the paper's §4.4.2 redesign is
motivated by them:

* **load races** — late-loading iframes are blank at screenshot time
  with probability ``race_probability``, producing white captures,
* **label noise** — EasyList is the labeller, so its misses (unknown
  networks, first-party ads) become mislabelled non-ads and its CSS
  over-selection pollutes the ad bucket.

The post-processing step (duplicate removal + manual spot-checking)
is reproduced as well: exact-duplicate removal plus probabilistic
detection of blank captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.preprocessing import preprocess_bitmap
from repro.crawl.dedup import deduplicate
from repro.data.dataset import LabeledImageDataset
from repro.filterlist.engine import FilterEngine
from repro.synth.drawing import blank
from repro.synth.webgen import Page, PageElement, SyntheticWeb
from repro.utils.rng import spawn_rng


@dataclass
class TraditionalCrawlStats:
    """Collection statistics (the paper reports these for §4.4.1)."""

    pages_visited: int = 0
    elements_screenshotted: int = 0
    white_screenshots: int = 0
    labelled_ads: int = 0
    labelled_nonads: int = 0
    mislabelled: int = 0          # EasyList label != ground truth
    removed_as_blank: int = 0
    removed_as_duplicate: int = 0


class TraditionalCrawler:
    """Crawl the synthetic web with EasyList-derived labels."""

    def __init__(
        self,
        web: SyntheticWeb,
        engine: FilterEngine,
        input_size: int = 32,
        race_probability: float = 0.55,
        blank_detection_rate: float = 0.85,
        seed: int = 0,
    ) -> None:
        self.web = web
        self.engine = engine
        self.input_size = input_size
        self.race_probability = race_probability
        self.blank_detection_rate = blank_detection_rate
        self.seed = seed

    def crawl(
        self,
        num_sites: int,
        pages_per_site: int = 3,
    ) -> Tuple[LabeledImageDataset, TraditionalCrawlStats]:
        """Crawl and return the (cleaned, balanced) dataset plus stats."""
        rng = spawn_rng(self.seed, "traditional-crawl")
        stats = TraditionalCrawlStats()
        images: List[np.ndarray] = []
        labels: List[int] = []
        fingerprint_meta: List[dict] = []

        for page in self.web.iter_pages(
            self.web.top_sites(num_sites), pages_per_site
        ):
            stats.pages_visited += 1
            for element in page.image_elements():
                easylist_says_ad = self._easylist_label(page, element)
                bitmap, was_white = self._screenshot(element, rng)
                stats.elements_screenshotted += 1
                if was_white:
                    stats.white_screenshots += 1
                label = int(easylist_says_ad)
                if easylist_says_ad != element.is_ad:
                    stats.mislabelled += 1
                images.append(preprocess_bitmap(bitmap, self.input_size))
                labels.append(label)
                fingerprint_meta.append({
                    "url": element.url,
                    "white": was_white,
                    "truth": int(element.is_ad),
                })
                if label:
                    stats.labelled_ads += 1
                else:
                    stats.labelled_nonads += 1

        dataset = LabeledImageDataset(
            np.stack(images), np.array(labels, dtype=np.int64),
            fingerprint_meta,
        )
        dataset = self._post_process(dataset, rng, stats)
        return dataset.balanced(seed=self.seed), stats

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _easylist_label(self, page: Page, element: PageElement) -> bool:
        if self.engine.check_request(
            element.url, page.site_domain, "image"
        ).blocked:
            return True
        rule = self.engine.should_hide_element(
            element.tag, element.css_classes, element.element_id,
            page.site_domain,
        )
        return rule is not None

    def _screenshot(
        self, element: PageElement, rng: np.random.Generator
    ) -> Tuple[np.ndarray, bool]:
        """Capture the element; late loaders may race to a blank frame."""
        if element.loads_late and rng.random() < self.race_probability:
            height = max(element.height // 8, 8)
            width = max(element.width // 8, 8)
            return blank(height, width), True
        return element.render(), False

    def _post_process(
        self,
        dataset: LabeledImageDataset,
        rng: np.random.Generator,
        stats: TraditionalCrawlStats,
    ) -> LabeledImageDataset:
        """Duplicate removal + manual blank spot-checking (semi-automated)."""
        deduped, removed = deduplicate(dataset)
        stats.removed_as_duplicate = removed
        keep = []
        for index, meta in enumerate(deduped.metadata):
            if meta.get("white") and rng.random() < self.blank_detection_rate:
                stats.removed_as_blank += 1
                continue
            keep.append(index)
        return deduped.subset(np.array(keep, dtype=np.int64))
