"""PERCIVAL-based pipeline crawler (§4.4.2, Figure 5).

Instead of screenshotting the rendered page, this crawler sits where
PERCIVAL sits — after image decode — and stores every frame the render
engine sees.  That eliminates the screenshot race entirely ("we are
guaranteed to capture all the iframes that were rendered, independently
of the time of rendering or refresh rate") and captures exactly the
bytes the classifier will later see in production.

Frames are bucketed (ad / non-ad) by the *current* model, so each crawl
phase's data quality reflects the model that collected it; ground truth
is retained separately for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.browser.codecs import decode_image, encode_image, format_for_url
from repro.core.classifier import AdClassifier
from repro.core.preprocessing import preprocess_bitmap
from repro.crawl.dedup import deduplicate
from repro.data.dataset import LabeledImageDataset
from repro.synth.webgen import SyntheticWeb


@dataclass
class PipelineCrawlStats:
    """Collection statistics for one pipeline crawl."""

    pages_visited: int = 0
    frames_captured: int = 0
    bucketed_ads: int = 0
    bucketed_nonads: int = 0
    removed_as_duplicate: int = 0
    white_screenshots: int = 0  # always 0: the pipeline cannot race

    @property
    def useful_fraction(self) -> float:
        """Fraction of captured frames surviving dedup (paper: 15-20%)."""
        if self.frames_captured == 0:
            return 0.0
        return 1.0 - self.removed_as_duplicate / self.frames_captured


class PipelineCrawler:
    """Crawl by reading decoded frames out of the render pipeline."""

    def __init__(
        self,
        web: SyntheticWeb,
        classifier: Optional[AdClassifier] = None,
        input_size: int = 32,
        seed: int = 0,
    ) -> None:
        self.web = web
        self.classifier = classifier
        self.input_size = input_size
        self.seed = seed

    def crawl(
        self,
        num_sites: int,
        pages_per_site: int = 3,
    ) -> Tuple[LabeledImageDataset, PipelineCrawlStats]:
        """Capture every decoded frame; bucket with the model if present.

        Returned labels are the *bucket* labels (model verdicts) when a
        classifier is attached, else ground truth (bootstrap mode);
        metadata always records ground truth for evaluation.
        """
        stats = PipelineCrawlStats()
        images: List[np.ndarray] = []
        labels: List[int] = []
        metadata: List[dict] = []

        for page in self.web.iter_pages(
            self.web.top_sites(num_sites), pages_per_site
        ):
            stats.pages_visited += 1
            for element in page.image_elements():
                # the decode-pipeline path: encode to wire format, decode
                # back — the captured frame is exactly the decoded buffer.
                pixels = element.render()
                frame = decode_image(
                    encode_image(pixels, format_for_url(element.url))
                )
                stats.frames_captured += 1
                tensor = preprocess_bitmap(frame, self.input_size)
                if self.classifier is not None:
                    bucket = int(
                        self.classifier.ad_probability(frame)
                        >= self.classifier.config.ad_threshold
                    )
                else:
                    bucket = int(element.is_ad)
                images.append(tensor)
                labels.append(bucket)
                metadata.append({
                    "url": element.url,
                    "truth": int(element.is_ad),
                    "white": False,
                })
                if bucket:
                    stats.bucketed_ads += 1
                else:
                    stats.bucketed_nonads += 1

        dataset = LabeledImageDataset(
            np.stack(images), np.array(labels, dtype=np.int64), metadata
        )
        deduped, removed = deduplicate(dataset)
        stats.removed_as_duplicate = removed
        return deduped.balanced(seed=self.seed), stats
