"""Crawling infrastructure (§4.4).

Two data-collection systems, mirroring the paper:

* :mod:`repro.crawl.traditional` — a Selenium-style crawler that
  screenshots EasyList-matched elements.  It inherits the method's two
  real problems: EasyList labels are noisy, and dynamically-loading
  elements race the screenshot, yielding blank captures.
* :mod:`repro.crawl.pipeline` — the PERCIVAL-based crawler (Figure 5)
  that reads every decoded frame out of the render pipeline, eliminating
  the race, and buckets frames using the current model.
* :mod:`repro.crawl.phases` — the 8-phase crawl / dedup / retrain loop
  (§4.4.2) that grows the corpus and the model together.
"""

from repro.crawl.traditional import TraditionalCrawler, TraditionalCrawlStats
from repro.crawl.pipeline import PipelineCrawler, PipelineCrawlStats
from repro.crawl.dedup import deduplicate
from repro.crawl.phases import run_crawl_phases, PhaseReport
from repro.crawl.listgen import (
    generate_block_list,
    evaluate_list_generation,
)
from repro.crawl.crowdsource import (
    aggregate_reports,
    browse_and_report,
    run_crowdsource_simulation,
)

__all__ = [
    "TraditionalCrawler",
    "TraditionalCrawlStats",
    "PipelineCrawler",
    "PipelineCrawlStats",
    "deduplicate",
    "run_crawl_phases",
    "PhaseReport",
    "generate_block_list",
    "evaluate_list_generation",
    "aggregate_reports",
    "browse_and_report",
    "run_crowdsource_simulation",
]
