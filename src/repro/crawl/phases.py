"""The 8-phase crawl / retrain loop (§4.4.2).

The paper crawls in 8 phases spread over 4 months, retraining PERCIVAL
after each phase on the union of all data collected so far, with
duplicates removed and classes balanced.  This module reproduces the
loop at configurable scale: each phase crawls a fresh slice of the
synthetic web, accumulates (deduplicated, balanced) data, retrains, and
records held-out accuracy — showing the data flywheel the paper
describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.classifier import AdClassifier
from repro.core.config import PercivalConfig
from repro.crawl.dedup import deduplicate
from repro.crawl.pipeline import PipelineCrawler
from repro.data.dataset import LabeledImageDataset
from repro.synth.webgen import SyntheticWeb, WebConfig
from repro.utils.rng import derive


@dataclass
class PhaseReport:
    """Outcome of one crawl+retrain phase."""

    phase: int
    frames_captured: int
    unique_kept: int
    corpus_size: int
    holdout_accuracy: float
    bucket_agreement: float  # fraction of buckets matching ground truth


@dataclass
class CrawlPhasesResult:
    phases: List[PhaseReport] = field(default_factory=list)
    final_classifier: Optional[AdClassifier] = None

    @property
    def accuracy_curve(self) -> List[float]:
        return [p.holdout_accuracy for p in self.phases]


def run_crawl_phases(
    num_phases: int = 8,
    sites_per_phase: int = 10,
    pages_per_site: int = 2,
    epochs_per_phase: int = 4,
    seed: int = 0,
    config: Optional[PercivalConfig] = None,
    holdout: Optional[LabeledImageDataset] = None,
) -> CrawlPhasesResult:
    """Run the crawl/retrain loop and return per-phase reports.

    Phase 0 bootstraps with ground-truth labels (standing in for the
    EasyList-bootstrapped initial model, §4.4.1); later phases bucket
    with the model trained so far, as in Figure 5.
    """
    config = config or PercivalConfig()
    classifier = AdClassifier(config)
    result = CrawlPhasesResult()
    accumulated: Optional[LabeledImageDataset] = None

    if holdout is None:
        holdout_web = SyntheticWeb(WebConfig(
            seed=derive(seed, "holdout"), num_sites=6,
        ))
        holdout_crawler = PipelineCrawler(
            holdout_web, classifier=None, input_size=config.input_size,
            seed=derive(seed, "holdout-crawl"),
        )
        holdout, _ = holdout_crawler.crawl(6, pages_per_site=2)

    for phase in range(num_phases):
        web = SyntheticWeb(WebConfig(
            seed=derive(seed, f"phase{phase}"),
            num_sites=sites_per_phase,
        ))
        crawler = PipelineCrawler(
            web,
            classifier=classifier if phase > 0 else None,
            input_size=config.input_size,
            seed=derive(seed, f"crawl{phase}"),
        )
        phase_data, stats = crawler.crawl(sites_per_phase, pages_per_site)

        truths = np.array(
            [m.get("truth", 0) for m in phase_data.metadata], dtype=np.int64
        )
        agreement = float((phase_data.labels == truths).mean())

        if accumulated is None:
            accumulated = phase_data
        else:
            merged = LabeledImageDataset.concatenate(
                [accumulated, phase_data]
            )
            merged, _ = deduplicate(merged)
            accumulated = merged.balanced(seed=derive(seed, f"bal{phase}"))

        classifier.train(
            accumulated.images, accumulated.labels,
            epochs=epochs_per_phase,
        )
        holdout_truth = np.array(
            [m.get("truth", 0) for m in holdout.metadata], dtype=np.int64
        )
        predictions = classifier.predict_tensor(holdout.images)
        accuracy = float((predictions == holdout_truth).mean())

        result.phases.append(PhaseReport(
            phase=phase,
            frames_captured=stats.frames_captured,
            unique_kept=len(phase_data),
            corpus_size=len(accumulated),
            holdout_accuracy=accuracy,
            bucket_agreement=agreement,
        ))

    result.final_classifier = classifier
    return result
