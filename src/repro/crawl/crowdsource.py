"""Crowd-sourced rule aggregation (§6 "Deployment Concerns").

The paper's third deployment sketch: "collect URLs (and possibly XPath
expressions) in the browser that are not already blocked by existing
block lists, and then to crowd-source these from a variety of users."

This module simulates that pipeline: many independent users browse
different slices of the web with PERCIVAL; each reports the resource
hosts/paths the model blocked that EasyList missed; a coordinator
aggregates the reports and promotes only rules confirmed by at least
``min_reporters`` distinct users — the consensus threshold that keeps a
single user's false positives (or a poisoning attempt) out of the
shared list.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set
from urllib.parse import urlparse

from repro.core.classifier import AdClassifier
from repro.filterlist.engine import FilterEngine
from repro.synth.webgen import SyntheticWeb, WebConfig
from repro.utils.rng import derive


@dataclass
class UserReport:
    """Hosts a single user's PERCIVAL flagged beyond the filter list."""

    user_id: int
    flagged_hosts: Set[str] = field(default_factory=set)
    pages_browsed: int = 0


@dataclass
class CrowdsourceResult:
    reports: List[UserReport]
    promoted_rules: List[str]
    rejected_hosts: Dict[str, int]  # host -> reporter count (below bar)
    consensus_threshold: int

    def to_table(self) -> str:
        from repro.eval.reporting import format_table
        rows = [
            ("users reporting", len(self.reports)),
            ("consensus threshold", self.consensus_threshold),
            ("promoted rules", len(self.promoted_rules)),
            ("hosts below consensus", len(self.rejected_hosts)),
        ]
        return (
            "== §6 deployment: crowd-sourced rule aggregation ==\n"
            + format_table(("metric", "value"), rows)
        )


def browse_and_report(
    user_id: int,
    classifier: AdClassifier,
    engine: FilterEngine,
    seed: int,
    num_sites: int = 6,
    pages_per_site: int = 2,
) -> UserReport:
    """One simulated user's browsing session with in-browser reporting.

    Each user sees a different slice of the synthetic web (own seed),
    mirroring how real users' browsing diverges; only hosts whose
    flagged resource the list did not block are reported.
    """
    web = SyntheticWeb(WebConfig(
        seed=derive(seed, f"user{user_id}"), num_sites=num_sites,
    ))
    report = UserReport(user_id=user_id)
    for page in web.iter_pages(web.top_sites(num_sites), pages_per_site):
        report.pages_browsed += 1
        for element in page.image_elements():
            if engine.check_request(
                element.url, page.site_domain, "image"
            ).blocked:
                continue
            if classifier.is_ad(element.render()):
                host = urlparse(element.url).netloc.lower()
                # publishers' own hosts are never reported as domains;
                # those need path-level rules (see listgen)
                if host != page.site_domain:
                    report.flagged_hosts.add(host)
    return report


def aggregate_reports(
    reports: Sequence[UserReport],
    min_reporters: int = 3,
) -> CrowdsourceResult:
    """Promote hosts confirmed by at least ``min_reporters`` users."""
    if min_reporters < 1:
        raise ValueError("min_reporters must be >= 1")
    counts: Dict[str, int] = defaultdict(int)
    for report in reports:
        for host in report.flagged_hosts:
            counts[host] += 1

    promoted: List[str] = []
    rejected: Dict[str, int] = {}
    for host, count in sorted(counts.items()):
        if count >= min_reporters:
            promoted.append(f"||{host}^$image")
        else:
            rejected[host] = count
    return CrowdsourceResult(
        reports=list(reports),
        promoted_rules=promoted,
        rejected_hosts=rejected,
        consensus_threshold=min_reporters,
    )


def run_crowdsource_simulation(
    classifier: AdClassifier,
    engine: FilterEngine,
    num_users: int = 8,
    min_reporters: int = 3,
    seed: int = 990,
) -> CrowdsourceResult:
    """End-to-end: users browse, report, and the coordinator aggregates."""
    reports = [
        browse_and_report(user, classifier, engine, seed)
        for user in range(num_users)
    ]
    return aggregate_reports(reports, min_reporters)
