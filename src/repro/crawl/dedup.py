"""Duplicate removal.

Ad networks serve the same creative across many slots and pages, so raw
crawls are dominated by duplicates — the paper keeps only ~15-20% of
each crawl phase after dedup.  Exact duplicates are detected by pixel
fingerprint (shape + bytes), which is what the campaign-pool generator
produces; the first occurrence is kept.
"""

from __future__ import annotations

from typing import Set, Tuple

import numpy as np

from repro.data.dataset import LabeledImageDataset
from repro.utils.hashing import image_fingerprint


def deduplicate(
    dataset: LabeledImageDataset,
) -> Tuple[LabeledImageDataset, int]:
    """Remove exact-duplicate images; returns (deduped, removed_count)."""
    seen: Set[str] = set()
    keep = []
    for index in range(len(dataset)):
        fingerprint = image_fingerprint(dataset.images[index])
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        keep.append(index)
    removed = len(dataset) - len(keep)
    return dataset.subset(np.array(keep, dtype=np.int64)), removed
