"""Train-once model caching.

Experiments, benchmarks and examples all need "the trained PERCIVAL
model".  Training even the reduced-scale model costs a minute or two,
so the store trains once per configuration and caches weights under
``<repo>/.cache/models``; subsequent calls load instantly.

The reference training run follows the paper's §4.3/§4.4 methodology:
transfer the stem from a (synthetically) pretrained SqueezeNet-style
donor, then fine-tune on a balanced crawled corpus.

The store also owns the sharded-inference worker pool
(:class:`~repro.core.workerpool.InferenceWorkerPool`): ``worker_pool``
hands out a pool with the given classifier's weights published,
re-publishing (fingerprint-keyed, precision included) whenever the
classifier loaded or trained new weights — or runs at a different
storage precision — since the last publication; workers then rebuild
their compiled plans from the fresh shared-memory segment.  Cached
weights are always written fp32 (full fidelity); the precision knob
quantizes at plan-compile time, so one cache entry serves every
precision.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.core.classifier import AdClassifier
from repro.core.config import PercivalConfig, configured_worker_count
from repro.core.workerpool import InferenceWorkerPool
from repro.data.corpus import build_training_corpus, CorpusConfig
from repro.models.percivalnet import build_percival_net
from repro.models.zoo import pretrain_stem, transfer_stem_weights
from repro.utils.hashing import stable_hash


def _default_cache_dir() -> str:
    root = os.environ.get(
        "PERCIVAL_CACHE",
        os.path.join(os.path.dirname(__file__), "..", "..", "..", ".cache"),
    )
    return os.path.abspath(os.path.join(root, "models"))


class ModelStore:
    """Weight cache keyed by configuration hash."""

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self.cache_dir = cache_dir or _default_cache_dir()
        self._pool: Optional[InferenceWorkerPool] = None

    def _paths(self, key: str) -> tuple:
        return (
            os.path.join(self.cache_dir, f"{key}.npz"),
            os.path.join(self.cache_dir, f"{key}.json"),
        )

    def load_or_train(
        self, config: PercivalConfig, verbose: bool = False
    ) -> AdClassifier:
        """Return a trained classifier for ``config`` (cached)."""
        key = stable_hash(config.cache_key())[:16]
        weights_path, meta_path = self._paths(key)
        classifier = AdClassifier(config)

        if os.path.exists(weights_path):
            classifier.load(weights_path)
            return classifier

        report = self._train(classifier, config, verbose)
        os.makedirs(self.cache_dir, exist_ok=True)
        classifier.save(weights_path)
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "config": config.cache_key(),
                    "final_train_accuracy": report.final_train_accuracy,
                    "final_val_accuracy": report.final_val_accuracy,
                    "epochs": len(report.epochs),
                },
                handle,
                indent=2,
            )
        return classifier

    # ------------------------------------------------------------------
    # Sharded-inference pool lifecycle
    # ------------------------------------------------------------------
    def worker_pool(
        self,
        classifier: AdClassifier,
        num_workers: Optional[int] = None,
    ) -> Optional[InferenceWorkerPool]:
        """The store's inference pool, with ``classifier`` published.

        ``num_workers`` overrides the resolution chain (explicit arg >
        ``classifier.config.num_workers`` > ``PERCIVAL_WORKERS`` env >
        auto = cores - 1).  Returns ``None`` when the resolved count is
        0 — sharding disabled, callers run the single-process path.

        Publication is fingerprint-keyed (weights *and* storage
        precision): calling again after ``classifier.load()`` (or
        training), or with a classifier at another precision, ships
        the new artifact and every worker recompiles its plan; calling
        with unchanged weights is a no-op.  The pool is shared across
        calls and torn down by :meth:`shutdown_pool` (also wired to
        ``atexit``).
        """
        if num_workers is None:
            num_workers = classifier.config.num_workers
        count = configured_worker_count(num_workers)
        if count == 0:
            return None
        if self._pool is not None and (
            self._pool.closed or self._pool.num_workers != count
        ):
            self.shutdown_pool()
        if self._pool is None:
            self._pool = InferenceWorkerPool(count)
        try:
            self._pool.publish(classifier)
        except Exception:
            self.shutdown_pool()
            raise
        return self._pool

    def shutdown_pool(self) -> None:
        """Tear down the store's worker pool.  Idempotent."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    @staticmethod
    def _train(
        classifier: AdClassifier, config: PercivalConfig, verbose: bool
    ):
        # §4.3: reuse pretrained stem features (synthetic proxy donor).
        donor = build_percival_net(
            input_size=config.input_size,
            in_channels=config.in_channels,
            seed=config.seed + 1,
            width=config.width,
        )
        pretrain_stem(donor, seed=config.seed)
        transfer_stem_weights(donor, classifier.network, num_blocks=5)

        corpus = build_training_corpus(CorpusConfig(
            seed=config.seed,
            num_ads=config.num_train_ads,
            num_nonads=config.num_train_nonads,
            input_size=config.input_size,
        ))
        train, val = corpus.split(0.9, seed=config.seed)
        report = classifier.train(
            train.images, train.labels, val.images, val.labels
        )
        if verbose:
            print(
                f"trained {len(report.epochs)} epochs: "
                f"train_acc={report.final_train_accuracy:.3f} "
                f"val_acc={report.final_val_accuracy}"
            )
        return report


_store = ModelStore()


def get_reference_classifier(
    config: Optional[PercivalConfig] = None, verbose: bool = False
) -> AdClassifier:
    """The shared trained classifier (default reduced-scale config)."""
    return _store.load_or_train(config or PercivalConfig(), verbose=verbose)


def get_worker_pool(
    classifier: Optional[AdClassifier] = None,
    num_workers: Optional[int] = None,
) -> Optional[InferenceWorkerPool]:
    """Sharded-inference pool of the module store, with ``classifier``
    (default: the reference classifier) published.  ``None`` when
    sharding is disabled — see :meth:`ModelStore.worker_pool`."""
    if classifier is None:
        classifier = get_reference_classifier()
    return _store.worker_pool(classifier, num_workers)


def shutdown_worker_pool() -> None:
    """Tear down the module store's worker pool (idempotent)."""
    _store.shutdown_pool()
