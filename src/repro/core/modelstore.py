"""Train-once model caching.

Experiments, benchmarks and examples all need "the trained PERCIVAL
model".  Training even the reduced-scale model costs a minute or two,
so the store trains once per configuration and caches weights under
``<repo>/.cache/models``; subsequent calls load instantly.

The reference training run follows the paper's §4.3/§4.4 methodology:
transfer the stem from a (synthetically) pretrained SqueezeNet-style
donor, then fine-tune on a balanced crawled corpus.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.core.classifier import AdClassifier
from repro.core.config import PercivalConfig
from repro.data.corpus import build_training_corpus, CorpusConfig
from repro.models.percivalnet import build_percival_net
from repro.models.zoo import pretrain_stem, transfer_stem_weights
from repro.utils.hashing import stable_hash


def _default_cache_dir() -> str:
    root = os.environ.get(
        "PERCIVAL_CACHE",
        os.path.join(os.path.dirname(__file__), "..", "..", "..", ".cache"),
    )
    return os.path.abspath(os.path.join(root, "models"))


class ModelStore:
    """Weight cache keyed by configuration hash."""

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self.cache_dir = cache_dir or _default_cache_dir()

    def _paths(self, key: str) -> tuple:
        return (
            os.path.join(self.cache_dir, f"{key}.npz"),
            os.path.join(self.cache_dir, f"{key}.json"),
        )

    def load_or_train(
        self, config: PercivalConfig, verbose: bool = False
    ) -> AdClassifier:
        """Return a trained classifier for ``config`` (cached)."""
        key = stable_hash(config.cache_key())[:16]
        weights_path, meta_path = self._paths(key)
        classifier = AdClassifier(config)

        if os.path.exists(weights_path):
            classifier.load(weights_path)
            return classifier

        report = self._train(classifier, config, verbose)
        os.makedirs(self.cache_dir, exist_ok=True)
        classifier.save(weights_path)
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "config": config.cache_key(),
                    "final_train_accuracy": report.final_train_accuracy,
                    "final_val_accuracy": report.final_val_accuracy,
                    "epochs": len(report.epochs),
                },
                handle,
                indent=2,
            )
        return classifier

    @staticmethod
    def _train(
        classifier: AdClassifier, config: PercivalConfig, verbose: bool
    ):
        # §4.3: reuse pretrained stem features (synthetic proxy donor).
        donor = build_percival_net(
            input_size=config.input_size,
            in_channels=config.in_channels,
            seed=config.seed + 1,
            width=config.width,
        )
        pretrain_stem(donor, seed=config.seed)
        transfer_stem_weights(donor, classifier.network, num_blocks=5)

        corpus = build_training_corpus(CorpusConfig(
            seed=config.seed,
            num_ads=config.num_train_ads,
            num_nonads=config.num_train_nonads,
            input_size=config.input_size,
        ))
        train, val = corpus.split(0.9, seed=config.seed)
        report = classifier.train(
            train.images, train.labels, val.images, val.labels
        )
        if verbose:
            print(
                f"trained {len(report.epochs)} epochs: "
                f"train_acc={report.final_train_accuracy:.3f} "
                f"val_acc={report.final_val_accuracy}"
            )
        return report


_store = ModelStore()


def get_reference_classifier(
    config: Optional[PercivalConfig] = None, verbose: bool = False
) -> AdClassifier:
    """The shared trained classifier (default reduced-scale config)."""
    return _store.load_or_train(config or PercivalConfig(), verbose=verbose)
