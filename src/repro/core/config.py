"""PERCIVAL configuration."""

from __future__ import annotations

import os
from dataclasses import dataclass, asdict

from repro.nn.quantize import validate_precision


@dataclass(frozen=True)
class PercivalConfig:
    """Configuration of the classifier + blocker stack.

    ``input_size=224, width=1.0`` is the paper's shipping model;
    experiments default to the reduced profile (32 px, quarter width)
    which trains at laptop scale — the architecture is identical.
    """

    input_size: int = 32
    width: float = 0.25
    in_channels: int = 4
    seed: int = 0
    ad_threshold: float = 0.5      # P(ad) above which a frame blocks
    epochs: int = 12
    num_train_ads: int = 1500
    num_train_nonads: int = 1500
    #: virtual per-image classification cost used by the render
    #: experiments; None -> measure the real model's latency once.
    calibrated_latency_ms: float | None = None
    #: worker processes for sharded batch inference; None defers to the
    #: ``PERCIVAL_WORKERS`` environment knob (see
    #: :func:`configured_worker_count`).  0 disables sharding entirely
    #: and reproduces the single-process fast path.
    num_workers: int | None = None
    #: smallest memo-miss batch ``PercivalBlocker.decide_many`` will
    #: scatter across the worker pool; smaller batches stay in-process
    #: (scatter/gather IPC would cost more than it saves).
    shard_min_batch: int = 32
    #: storage precision of the inference weight artifact
    #: (``fp32``/``fp16``/``int8``); None defers to the
    #: ``PERCIVAL_PRECISION`` environment knob (see
    #: :func:`configured_precision`).  Compute stays fp32 either way —
    #: this selects what ships, persists, and stays resident.
    precision: str | None = None
    #: calibration gate: maximum P(ad) drift vs. the fp32 reference a
    #: quantized artifact may show on the held-out calibration batch
    #: before the precision is rejected (falls back to fp32).
    quantization_drift_tolerance: float = 1e-2
    #: enable the :mod:`repro.cascade` confidence router in front of
    #: the serving stack; None defers to the ``PERCIVAL_CASCADE``
    #: environment knob (see :func:`configured_cascade_enabled`).
    #: Off reproduces the pre-cascade pipeline bit for bit.
    cascade_enabled: bool | None = None
    #: minimum model confidence ``max(P(ad), 1 - P(ad))`` a verdict
    #: needs before the cascade compiles it into a micro-rule.
    cascade_confidence: float = 0.9
    #: enable the :mod:`repro.diff` incremental re-classification layer
    #: (per-session snapshot/diff with verdict inheritance); None defers
    #: to the ``PERCIVAL_DIFF`` environment knob (see
    #: :func:`configured_diff_enabled`).  Off reproduces the pre-diff
    #: pipeline bit for bit.
    diff_enabled: bool | None = None

    @classmethod
    def paper(cls) -> "PercivalConfig":
        """The full-size configuration of Figure 3 (224x224x4)."""
        return cls(input_size=224, width=1.0)

    def cache_key(self) -> dict:
        """Stable dict identifying a trained-model cache entry."""
        payload = asdict(self)
        # deployment knobs: they do not affect the trained weights
        payload.pop("calibrated_latency_ms")
        payload.pop("ad_threshold")
        payload.pop("num_workers")
        payload.pop("shard_min_batch")
        payload.pop("precision")
        payload.pop("quantization_drift_tolerance")
        payload.pop("cascade_enabled")
        payload.pop("cascade_confidence")
        payload.pop("diff_enabled")
        return payload


def configured_worker_count(explicit: int | None = None) -> int:
    """Resolve the ``PERCIVAL_WORKERS`` knob to a worker count.

    Resolution order: an ``explicit`` value (e.g.
    ``PercivalConfig.num_workers``) wins; otherwise the
    ``PERCIVAL_WORKERS`` environment variable is consulted, where
    ``"auto"`` (or unset) means *cores minus one* — leave one core for
    the renderer/parent — and an integer pins the count.  ``0`` always
    means sharding is disabled (single-process inference); on a
    single-core machine ``auto`` therefore resolves to ``0``.
    """
    if explicit is not None:
        return max(int(explicit), 0)
    raw = os.environ.get("PERCIVAL_WORKERS", "auto").strip().lower()
    if raw in ("", "auto"):
        return max((os.cpu_count() or 1) - 1, 0)
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"PERCIVAL_WORKERS must be an integer or 'auto', got {raw!r}"
        ) from exc
    return max(value, 0)


@dataclass(frozen=True)
class ServeSettings:
    """Micro-batching knobs of the :mod:`repro.serve` layer.

    These are pure deployment knobs — they decide how independent
    classification requests coalesce into batches, never what any
    verdict is — so they live outside :class:`PercivalConfig` and the
    model cache key entirely.
    """

    #: flush a batch as soon as it reaches this many unique requests
    max_batch: int = 16
    #: ... or as soon as the oldest queued request has waited this long
    max_wait_ms: float = 4.0
    #: admission limit: requests queued beyond this depth are shed
    #: (explicit backpressure, never silent loss)
    max_depth: int = 128
    #: virtual compute lanes the serve loop may overlap flushes on.
    #: ``None`` means auto: the ``PERCIVAL_SERVE_LANES`` environment
    #: knob if set, else the attached worker pool's capacity, else 1
    #: (see :func:`configured_serve_lanes`).
    lanes: int | None = None
    #: starvation-free aging: a queued request's effective priority
    #: improves one level for every ``aging_ms`` it has waited, so a
    #: flood of viewport frames can delay below-the-fold frames but
    #: never starve them.
    aging_ms: float = 8.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_depth < self.max_batch:
            raise ValueError(
                "max_depth must be >= max_batch (a full batch must be "
                "admissible)"
            )
        if self.lanes is not None and self.lanes < 1:
            raise ValueError("lanes must be >= 1 (or None for auto)")
        if self.aging_ms <= 0:
            raise ValueError("aging_ms must be > 0")


def configured_serve_settings(
    explicit: ServeSettings | None = None,
) -> ServeSettings:
    """Resolve the ``PERCIVAL_SERVE_*`` knobs to :class:`ServeSettings`.

    An ``explicit`` settings object wins outright; otherwise each field
    falls back to its environment variable (``PERCIVAL_SERVE_MAX_BATCH``,
    ``PERCIVAL_SERVE_MAX_WAIT_MS``, ``PERCIVAL_SERVE_MAX_DEPTH``) and
    then to the dataclass default.  Invalid values raise ``ValueError``
    naming the offending variable.
    """
    if explicit is not None:
        return explicit

    def _env(name: str, cast, default):
        raw = os.environ.get(name, "").strip()
        if not raw:
            return default
        try:
            return cast(raw)
        except ValueError as exc:
            raise ValueError(f"invalid {name}: {raw!r}") from exc

    return ServeSettings(
        max_batch=_env("PERCIVAL_SERVE_MAX_BATCH", int,
                       ServeSettings.max_batch),
        max_wait_ms=_env("PERCIVAL_SERVE_MAX_WAIT_MS", float,
                         ServeSettings.max_wait_ms),
        max_depth=_env("PERCIVAL_SERVE_MAX_DEPTH", int,
                       ServeSettings.max_depth),
        aging_ms=_env("PERCIVAL_SERVE_AGING_MS", float,
                      ServeSettings.aging_ms),
    )


def configured_serve_lanes(explicit: int | None = None) -> int | None:
    """Resolve the ``PERCIVAL_SERVE_LANES`` knob to a lane count.

    Resolution order: an ``explicit`` value (``ServeSettings.lanes``)
    wins; otherwise the ``PERCIVAL_SERVE_LANES`` environment variable is
    consulted, where unset/empty/``"auto"`` returns ``None`` — meaning
    the serve loop sizes its lane set from the attached worker pool's
    ``available_capacity`` (1 when there is no pool).  An integer pins
    the count; anything below 1 raises ``ValueError``.
    """
    if explicit is not None:
        if int(explicit) < 1:
            raise ValueError("serve lanes must be >= 1")
        return int(explicit)
    raw = os.environ.get("PERCIVAL_SERVE_LANES", "").strip().lower()
    if raw in ("", "auto"):
        return None
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"PERCIVAL_SERVE_LANES must be an integer or 'auto', got {raw!r}"
        ) from exc
    if value < 1:
        raise ValueError(f"PERCIVAL_SERVE_LANES must be >= 1, got {value}")
    return value


def configured_cascade_enabled(explicit: bool | None = None) -> bool:
    """Resolve the ``PERCIVAL_CASCADE`` knob to on/off.

    Resolution order: an ``explicit`` value (e.g.
    ``PercivalConfig.cascade_enabled``) wins; otherwise the
    ``PERCIVAL_CASCADE`` environment variable is consulted, where
    unset/empty/``off``/``0``/``false``/``no`` means off — the
    bit-identical pre-cascade pipeline — and ``on``/``1``/``true``/
    ``yes`` enables the confidence router.  Anything else raises
    ``ValueError``.
    """
    if explicit is not None:
        return bool(explicit)
    raw = os.environ.get("PERCIVAL_CASCADE", "").strip().lower()
    if raw in ("", "off", "0", "false", "no"):
        return False
    if raw in ("on", "1", "true", "yes"):
        return True
    raise ValueError(
        f"PERCIVAL_CASCADE must be 'on' or 'off', got {raw!r}"
    )


def configured_diff_enabled(explicit: bool | None = None) -> bool:
    """Resolve the ``PERCIVAL_DIFF`` knob to on/off.

    Resolution order: an ``explicit`` value (e.g.
    ``PercivalConfig.diff_enabled``) wins; otherwise the
    ``PERCIVAL_DIFF`` environment variable is consulted, where
    unset/empty/``off``/``0``/``false``/``no`` means off — the
    bit-identical pre-diff pipeline — and ``on``/``1``/``true``/``yes``
    enables the snapshot/diff layer.  Anything else raises
    ``ValueError``.
    """
    if explicit is not None:
        return bool(explicit)
    raw = os.environ.get("PERCIVAL_DIFF", "").strip().lower()
    if raw in ("", "off", "0", "false", "no"):
        return False
    if raw in ("on", "1", "true", "yes"):
        return True
    raise ValueError(
        f"PERCIVAL_DIFF must be 'on' or 'off', got {raw!r}"
    )


def configured_diff_capacity(explicit: int | None = None) -> int:
    """Resolve the ``PERCIVAL_DIFF_CAPACITY`` knob: how many
    ``(session, page)`` snapshots the differ's LRU store keeps.

    An ``explicit`` value wins; otherwise the environment variable
    applies, and unset/empty means the default (512).  Values below 1
    raise ``ValueError`` — a snapshot store that can hold nothing would
    silently disable the diff layer.
    """
    if explicit is None:
        raw = os.environ.get("PERCIVAL_DIFF_CAPACITY", "").strip()
        if not raw:
            return 512
        try:
            explicit = int(raw)
        except ValueError as exc:
            raise ValueError(
                f"PERCIVAL_DIFF_CAPACITY must be an integer, got {raw!r}"
            ) from exc
    value = int(explicit)
    if value < 1:
        raise ValueError(
            f"PERCIVAL_DIFF_CAPACITY must be >= 1, got {value}"
        )
    return value


def configured_chaos_seed(explicit: int | None = None) -> int | None:
    """Resolve the ``PERCIVAL_CHAOS`` knob to a schedule seed or None.

    Resolution order: an ``explicit`` value wins; otherwise the
    ``PERCIVAL_CHAOS`` environment variable is consulted, where
    unset/empty/``off``/``false``/``no`` means *no chaos* — the
    bit-identical fault-free path — ``on`` means seed 0, and an
    integer is used as the
    :meth:`~repro.resilience.ChaosSchedule.seeded` seed directly
    (``0`` is a valid seed, not "off").  Anything else raises
    ``ValueError``.
    """
    if explicit is not None:
        return int(explicit)
    raw = os.environ.get("PERCIVAL_CHAOS", "").strip().lower()
    if raw in ("", "off", "false", "no", "none"):
        return None
    if raw in ("on", "true", "yes"):
        return 0
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(
            f"PERCIVAL_CHAOS must be 'off', 'on', or an integer seed,"
            f" got {raw!r}"
        ) from exc


def configured_resilience_enabled(explicit: bool | None = None) -> bool:
    """Resolve the ``PERCIVAL_RESILIENCE`` knob to on/off.

    Resolution order: an ``explicit`` value wins; otherwise the
    ``PERCIVAL_RESILIENCE`` environment variable is consulted, where
    unset/empty/``off``/``0``/``false``/``no`` means off — the
    bit-identical pre-resilience serving path — and
    ``on``/``1``/``true``/``yes`` attaches the breaker/ladder plane.
    (An active chaos schedule implies the plane regardless.)
    """
    if explicit is not None:
        return bool(explicit)
    raw = os.environ.get("PERCIVAL_RESILIENCE", "").strip().lower()
    if raw in ("", "off", "0", "false", "no"):
        return False
    if raw in ("on", "1", "true", "yes"):
        return True
    raise ValueError(
        f"PERCIVAL_RESILIENCE must be 'on' or 'off', got {raw!r}"
    )


def configured_respawn_budget(explicit: int | None = None) -> int:
    """Resolve the ``PERCIVAL_RESPAWN_BUDGET`` knob: how many worker
    *replacements* (respawns after a death — initial spawns and resize
    growth are free) a pool may perform over its lifetime.

    An ``explicit`` value wins; otherwise the environment variable
    applies, and unset/empty means the default (16).  Values below 0
    raise ``ValueError``; 0 means a dead worker is never replaced.
    """
    if explicit is None:
        raw = os.environ.get("PERCIVAL_RESPAWN_BUDGET", "").strip()
        if not raw:
            return 16
        try:
            explicit = int(raw)
        except ValueError as exc:
            raise ValueError(
                f"PERCIVAL_RESPAWN_BUDGET must be an integer, got {raw!r}"
            ) from exc
    value = int(explicit)
    if value < 0:
        raise ValueError(
            f"PERCIVAL_RESPAWN_BUDGET must be >= 0, got {value}"
        )
    return value


def configured_precision(explicit: str | None = None) -> str:
    """Resolve the ``PERCIVAL_PRECISION`` knob to a precision name.

    Resolution order: an ``explicit`` value (e.g.
    ``PercivalConfig.precision``) wins; otherwise the
    ``PERCIVAL_PRECISION`` environment variable is consulted, where
    unset/empty means ``fp32`` — the bit-for-bit default pipeline.
    Anything outside ``fp32``/``fp16``/``int8`` raises ``ValueError``.
    """
    if explicit is not None:
        return validate_precision(explicit)
    raw = os.environ.get("PERCIVAL_PRECISION", "").strip() or "fp32"
    try:
        return validate_precision(raw)
    except ValueError as exc:
        raise ValueError(f"invalid PERCIVAL_PRECISION: {exc}") from exc
