"""PERCIVAL configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, asdict


@dataclass(frozen=True)
class PercivalConfig:
    """Configuration of the classifier + blocker stack.

    ``input_size=224, width=1.0`` is the paper's shipping model;
    experiments default to the reduced profile (32 px, quarter width)
    which trains at laptop scale — the architecture is identical.
    """

    input_size: int = 32
    width: float = 0.25
    in_channels: int = 4
    seed: int = 0
    ad_threshold: float = 0.5      # P(ad) above which a frame blocks
    epochs: int = 12
    num_train_ads: int = 1500
    num_train_nonads: int = 1500
    #: virtual per-image classification cost used by the render
    #: experiments; None -> measure the real model's latency once.
    calibrated_latency_ms: float | None = None

    @classmethod
    def paper(cls) -> "PercivalConfig":
        """The full-size configuration of Figure 3 (224x224x4)."""
        return cls(input_size=224, width=1.0)

    def cache_key(self) -> dict:
        """Stable dict identifying a trained-model cache entry."""
        payload = asdict(self)
        payload.pop("calibrated_latency_ms")
        payload.pop("ad_threshold")
        return payload
