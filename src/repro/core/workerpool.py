"""Multiprocess inference sharding.

:class:`InferenceWorkerPool` owns N worker processes that each hold a
private copy of the model and a compiled
:class:`~repro.nn.inference.InferencePlan`.  The parent splits a
memo-miss batch into per-worker sub-batches, scatters them over pipes,
and gathers per-frame ad probabilities back in order — so a page's
batched forward pass scales with cores instead of saturating one GIL.

Weight handoff is the part worth reading twice:

* ``publish()`` ships the classifier's packed
  :class:`~repro.nn.artifact.WeightArtifact` buffer once into a single
  ``multiprocessing.shared_memory`` segment (the model is < 2 MB at
  fp32, ~4x smaller again at int8 storage) and sends each worker only
  the segment *name* plus a
  :class:`~repro.core.classifier.PlanExport` manifest (storage dtypes
  and per-channel scales per parameter) — weights are never pickled
  per call, and never per worker.
* each worker attaches, **copies** the packed bytes into private
  memory, and closes the segment immediately.  The copy is deliberate:
  numpy views pinning a shared mmap would make
  ``SharedMemory.close()`` raise ``BufferError`` ("cannot close
  exported pointers exist") for the worker's whole lifetime.
  Quantized manifests dequantize worker-side into the rebuilt
  network, so per-worker shipped bytes shrink with the precision while
  every worker computes over exactly the bytes the parent compiled
  with (the calibration gate runs once, parent-side).
* publication is fingerprint-keyed, and the fingerprint covers the
  storage precision.  Re-publishing the same weights is a no-op;
  publishing after ``AdClassifier.load()``/``train()`` — or from a
  classifier at a different precision — ships a fresh segment and
  every worker recompiles its plan.  A pool can therefore never mix
  precisions across a publication.

Failure semantics: any worker death or timeout surfaces as
:class:`WorkerPoolError`, which callers (``PercivalBlocker``) treat as
"fall back to in-process inference" — a dying pool can slow a page
down, never mis-classify it.  Dead workers are respawned on the next
call, but not forever: replacements draw on a bounded **respawn
budget** (``PERCIVAL_RESPAWN_BUDGET``) with exponential backoff
between attempts, so a deterministically-crashing worker degrades the
pool to its surviving workers (and eventually to the in-process path)
instead of burning a fork per batch.  Teardown (``close()``) is
idempotent and also registered via ``atexit``; the pool is a context
manager.

The ``chaos_*`` methods are the deterministic fault-injection surface
the :mod:`repro.resilience` chaos plane drives: they *arm* a fault on
a live worker (die/stall on its next sub-batch, emit an unsolicited
reply, fail the next publication) so the failure lands mid-protocol,
exactly where the recovery paths above must catch it.  They are inert
unless called — a pool that never sees chaos runs the same bytes as
before.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import time
from multiprocessing import shared_memory
from multiprocessing.connection import Connection
from typing import List, Optional, Tuple

import numpy as np

from repro.core.classifier import AdClassifier, PlanExport
from repro.core.config import configured_respawn_budget


class WorkerPoolError(RuntimeError):
    """Sharded inference could not complete; callers fall back serial."""


_DEFAULT_TIMEOUT_S = 60.0


def _preferred_context() -> mp.context.BaseContext:
    """Fork where available (cheap: no re-import of numpy per worker);
    spawn elsewhere.  Workers rebuild their model from the shared
    segment either way, so both start methods run the same code path.
    """
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _worker_main(conn: Connection) -> None:
    """Worker loop: (re)build the plan on ``plan``, score on ``run``.

    Replies: ``("ready", fingerprint)`` after a successful plan build,
    ``("result", task_id, probabilities)`` per sub-batch, and
    ``("error", detail)`` / ``("error", task_id, detail)`` on failure —
    the worker survives a failed request and keeps serving.

    Chaos commands (armed by the parent's ``chaos_*`` methods) fire on
    the *next* ``run`` so the fault lands mid-batch: ``chaos-die-on-run``
    exits without replying (the parent gathers an EOF),
    ``chaos-stall-on-run`` sleeps past the pool timeout first, and
    ``chaos-echo`` emits an unsolicited reply immediately (the parent's
    next gather goes out-of-sync and discards this worker's pipe).
    """
    classifier: Optional[AdClassifier] = None
    die_on_run = False
    stall_on_run_s = 0.0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "chaos-die-on-run":
            die_on_run = True
        elif kind == "chaos-stall-on-run":
            stall_on_run_s = float(message[1])
        elif kind == "chaos-echo":
            try:
                conn.send(("chaos-echo",))
            except (BrokenPipeError, OSError):
                break
        elif kind == "plan":
            _, export, segment_name = message
            try:
                segment = shared_memory.SharedMemory(name=segment_name)
                try:
                    classifier = AdClassifier.from_plan_export(export, segment.buf)
                finally:
                    segment.close()
                conn.send(("ready", export.fingerprint))
            except Exception as exc:
                classifier = None
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
        elif kind == "run":
            _, task_id, batch = message
            if die_on_run:
                break
            if stall_on_run_s > 0.0:
                time.sleep(stall_on_run_s)
                stall_on_run_s = 0.0
            if classifier is None:
                conn.send(("error", task_id, "no published weights"))
                continue
            try:
                probabilities = classifier.predict_proba_tensor(batch)
                conn.send(("result", task_id, probabilities))
            except Exception as exc:
                conn.send(("error", task_id, f"{type(exc).__name__}: {exc}"))
        elif kind == "stop":
            break
    try:
        conn.close()
    except OSError:
        pass


class _Worker:
    """Parent-side handle: process, pipe, last-acked fingerprint."""

    __slots__ = ("process", "conn", "fingerprint")

    def __init__(self, process, conn: Connection) -> None:
        self.process = process
        self.conn = conn
        self.fingerprint: Optional[str] = None


class InferenceWorkerPool:
    """A process pool sharding batched inference across cores."""

    #: ceiling of the exponential respawn backoff
    _MAX_RESPAWN_BACKOFF_S = 2.0

    def __init__(
        self,
        num_workers: int,
        start_method: Optional[str] = None,
        timeout_s: float = _DEFAULT_TIMEOUT_S,
        respawn_budget: Optional[int] = None,
        respawn_backoff_s: float = 0.05,
    ) -> None:
        if num_workers < 1:
            raise ValueError(
                "num_workers must be >= 1; use configured_worker_count()"
                " == 0 (PERCIVAL_WORKERS=0) to disable sharding instead"
            )
        if respawn_backoff_s < 0:
            raise ValueError("respawn_backoff_s must be >= 0")
        self.num_workers = int(num_workers)
        self.timeout_s = float(timeout_s)
        #: worker replacements (after a death) this pool may still make;
        #: None defers to the PERCIVAL_RESPAWN_BUDGET knob
        self.respawn_budget = configured_respawn_budget(respawn_budget)
        self.respawn_backoff_s = float(respawn_backoff_s)
        self._ctx = (
            mp.get_context(start_method)
            if start_method is not None
            else _preferred_context()
        )
        self._workers: List[_Worker] = []
        self._segment: Optional[shared_memory.SharedMemory] = None
        self._export: Optional[PlanExport] = None
        self._task_counter = 0
        self._closed = False
        self._dispatching = False
        #: worker replacements performed so far (initial spawns and
        #: resize growth are free — they replace nothing)
        self.respawns = 0
        self._respawn_streak = 0
        self._respawn_not_before_s = 0.0
        self._chaos_publish_failures = 0
        self._fail_next_publish = False
        atexit.register(self.close)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def alive_workers(self) -> int:
        return sum(1 for w in self._workers if w.process.is_alive())

    @property
    def published_fingerprint(self) -> Optional[str]:
        """Fingerprint of the weights workers currently hold.

        Reads as unpublished while a chaos publish failure is armed, so
        the caller's staleness check routes through ``publish()`` and
        hits the injected failure exactly once."""
        if self._fail_next_publish:
            return None
        return self._export.fingerprint if self._export else None

    @property
    def budget_exhausted(self) -> bool:
        """True once every allowed worker replacement has been spent."""
        return self.respawns >= self.respawn_budget

    def stats(self) -> dict:
        """Pool health counters for serving dashboards and tests."""
        return {
            "num_workers": self.num_workers,
            "alive_workers": self.alive_workers,
            "respawns": self.respawns,
            "respawn_budget": self.respawn_budget,
            "budget_exhausted": self.budget_exhausted,
            "chaos_publish_failures": self._chaos_publish_failures,
        }

    @property
    def dispatching(self) -> bool:
        """True while a scatter/gather call is in flight."""
        return self._dispatching

    @property
    def available_capacity(self) -> int:
        """Workers a new batch would scatter across *right now* without
        queueing behind anything.

        ``0`` when the pool is closed, has no published weights, or is
        mid-``predict_proba`` (the parent gathers synchronously, so a
        concurrent caller would serialize behind the in-flight batch);
        otherwise the full worker count — dead workers are respawned at
        call entry, so they still count as capacity.  Once the respawn
        budget is exhausted nothing will replace further deaths, so
        capacity honestly degrades to the surviving workers.  The
        serving layer polls this without blocking to size and pace its
        flushes.
        """
        if self._closed or self._export is None or self._dispatching:
            return 0
        if self.budget_exhausted:
            return self.alive_workers
        return self.num_workers

    # ------------------------------------------------------------------
    # Weight publication
    # ------------------------------------------------------------------
    def publish(self, classifier: AdClassifier) -> str:
        """Ship ``classifier``'s weights to every worker.

        Fingerprint-keyed: publishing unchanged weights to a healthy
        pool is a no-op; publishing after the classifier's weights were
        replaced (``load()``/``train()``) creates a fresh shared
        segment and every worker recompiles its plan from it.  Returns
        the published fingerprint.
        """
        self._ensure_open()
        if self._fail_next_publish:
            self._fail_next_publish = False
            self._chaos_publish_failures += 1
            raise WorkerPoolError("injected publish failure (chaos)")
        fingerprint = classifier.weights_fingerprint()
        if self._export is None or self._export.fingerprint != fingerprint:
            export = classifier.export_plan()
            try:
                segment = shared_memory.SharedMemory(
                    create=True, size=max(export.total_bytes, 1)
                )
            except OSError as exc:
                # e.g. /dev/shm full: a publication failure must surface
                # as WorkerPoolError so callers fall back in-process
                raise WorkerPoolError(
                    f"could not create shared segment: {exc}"
                ) from exc
            try:
                classifier.pack_weights_into(export, segment.buf)
            except Exception as exc:
                segment.close()
                segment.unlink()
                raise WorkerPoolError(f"could not pack weights: {exc}") from exc
            self._retire_segment()
            self._segment = segment
            self._export = export
        # same fingerprint: the live segment already holds these bytes;
        # only dead/stale workers need (re)syncing, which is a no-op for
        # a healthy pool.
        self._sync_workers()
        return fingerprint

    # ------------------------------------------------------------------
    # Sharded inference
    # ------------------------------------------------------------------
    def predict_proba(self, batch: np.ndarray) -> np.ndarray:
        """P(ad) for a preprocessed NCHW batch, sharded across workers.

        Sub-batches are contiguous ``array_split`` slices, gathered in
        scatter order, so the result aligns one-to-one with ``batch``.
        Raises :class:`WorkerPoolError` on worker death or timeout —
        never a silently wrong probability.  On any failure, workers
        still holding an in-flight reply are drained (or discarded when
        they cannot be), so one bad batch never poisons the pipes for
        the next call.
        """
        self._ensure_open()
        if self._export is None:
            raise WorkerPoolError("no weights published; call publish()")
        if batch.shape[0] == 0:
            return np.empty(0, dtype=np.float32)
        self._dispatching = True
        try:
            self._sync_workers()
            # split across the workers actually alive — a pool running
            # degraded (deferred/exhausted respawns) still covers the
            # whole batch, just across fewer processes
            shards = [
                shard
                for shard in np.array_split(batch, len(self._workers))
                if shard.shape[0]
            ]
            in_flight: List[Tuple[_Worker, int]] = []
            for worker, shard in zip(self._workers, shards):
                self._task_counter += 1
                task_id = self._task_counter
                try:
                    worker.conn.send(("run", task_id, shard))
                except (BrokenPipeError, OSError) as exc:
                    self._recover_in_flight(in_flight)
                    self._discard_worker(worker)
                    raise WorkerPoolError(
                        f"worker died during scatter: {exc}"
                    ) from exc
                in_flight.append((worker, task_id))
            gathered: List[np.ndarray] = []
            for position, (worker, task_id) in enumerate(in_flight):
                pending = in_flight[position + 1:]
                try:
                    reply = self._recv(worker)
                except WorkerPoolError:
                    self._discard_worker(worker)
                    self._recover_in_flight(pending)
                    raise
                if reply[0] == "result" and reply[1] == task_id:
                    gathered.append(np.asarray(reply[2], dtype=np.float32))
                    continue
                if reply[0] == "error" and len(reply) == 3 and reply[1] == task_id:
                    # clean failure: the worker consumed the task and its
                    # pipe stays in sync — only later workers need draining
                    self._recover_in_flight(pending)
                    raise WorkerPoolError(f"worker failed mid-batch: {reply[2]}")
                # out-of-sync reply: this worker's pipe cannot be trusted
                self._discard_worker(worker)
                self._recover_in_flight(pending)
                raise WorkerPoolError(
                    f"out-of-sync {reply[0]!r} reply from worker; discarded it"
                )
            return np.concatenate(gathered)
        finally:
            self._dispatching = False

    # ------------------------------------------------------------------
    # Deterministic fault injection (the repro.resilience chaos plane)
    # ------------------------------------------------------------------
    def chaos_arm_worker_death(self, index: int = 0) -> bool:
        """Arm worker ``index`` to exit on its next sub-batch, so the
        parent sees EOF mid-gather.  Returns False when no worker could
        be armed (pool closed/empty) — the fault is then a no-op."""
        return self._chaos_send(index, ("chaos-die-on-run",))

    def chaos_arm_worker_stall(
        self, index: int = 0, stall_s: Optional[float] = None
    ) -> bool:
        """Arm worker ``index`` to sleep past the pool timeout before
        answering its next sub-batch (the slow-worker path)."""
        if stall_s is None:
            stall_s = self.timeout_s * 2.0
        return self._chaos_send(index, ("chaos-stall-on-run", float(stall_s)))

    def chaos_corrupt_pipe(self, index: int = 0) -> bool:
        """Make worker ``index`` emit an unsolicited reply now, so the
        parent's next gather from it is out-of-sync (pipe corruption —
        the worker gets discarded, never trusted)."""
        return self._chaos_send(index, ("chaos-echo",))

    def chaos_fail_next_publish(self) -> bool:
        """The next ``publish()`` raises :class:`WorkerPoolError`, and
        until it does the published fingerprint reads unpublished (so
        the caller's staleness check actually routes through it)."""
        if self._closed:
            return False
        self._fail_next_publish = True
        return True

    def _chaos_send(self, index: int, command: tuple) -> bool:
        if self._closed or not self._workers:
            return False
        worker = self._workers[index % len(self._workers)]
        try:
            worker.conn.send(command)
        except (BrokenPipeError, OSError):
            return False
        return True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def resize(self, num_workers: int) -> int:
        """Grow or shrink the worker set to ``num_workers``; returns the
        new count.

        The autoscaling hook: growth spawns workers lazily (they attach
        to the already-published shared segment on the next
        ``_sync_workers``, so no re-publication and no re-packing), and
        shrinkage stops the highest-indexed workers — the same
        deterministic tie-break the serve loop's lanes use.  Resizing a
        mid-dispatch pool raises: the scatter order of an in-flight
        batch is already fixed.
        """
        self._ensure_open()
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self._dispatching:
            raise WorkerPoolError("cannot resize while a batch is in flight")
        num_workers = int(num_workers)
        if num_workers < len(self._workers):
            for worker in self._workers[num_workers:]:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=2.0)
                try:
                    worker.conn.close()
                except OSError:
                    pass
            self._workers = self._workers[:num_workers]
        self.num_workers = num_workers
        if self._export is not None:
            # grow eagerly so available_capacity reflects the new size
            # immediately (shrink already took effect above)
            self._sync_workers()
        return self.num_workers

    def close(self) -> None:
        """Stop workers and release the shared segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []
        self._retire_segment()
        self._export = None
        try:
            atexit.unregister(self.close)
        except Exception:
            pass

    def __enter__(self) -> "InferenceWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise WorkerPoolError("worker pool is closed")

    def _retire_segment(self) -> None:
        if self._segment is None:
            return
        try:
            self._segment.close()
        finally:
            try:
                self._segment.unlink()
            except FileNotFoundError:
                pass
            self._segment = None

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            daemon=True,
            name="percival-inference-worker",
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _sync_workers(self) -> None:
        """Respawn dead workers; (re)send the plan to stale ones.

        Replacements are budgeted: a worker that died costs one unit of
        ``respawn_budget`` to replace, and consecutive replacement
        rounds back off exponentially (a deterministically-crashing
        worker must not cost a fork per batch).  While a replacement is
        deferred — or the budget is spent — the pool keeps serving
        *degraded* on its surviving workers; with none left it raises
        :class:`WorkerPoolError` and the caller falls back in-process.
        Initial spawns and resize growth replace nothing and are free.
        """
        if self._export is None or self._segment is None:
            raise WorkerPoolError("no weights published; call publish()")
        alive: List[_Worker] = []
        dead = 0
        for worker in self._workers:
            if worker.process.is_alive():
                alive.append(worker)
            else:
                dead += 1
                try:
                    worker.conn.close()
                except OSError:
                    pass
        missing = max(self.num_workers - len(alive), 0)
        growth = max(missing - dead, 0)
        replacements = missing - growth
        for _ in range(growth):
            alive.append(self._spawn())
        if replacements:
            now_s = time.monotonic()
            if self.budget_exhausted or now_s < self._respawn_not_before_s:
                replacements = 0
            else:
                replacements = min(
                    replacements, self.respawn_budget - self.respawns
                )
        if replacements:
            for _ in range(replacements):
                alive.append(self._spawn())
            self.respawns += replacements
            self._respawn_streak += 1
            backoff = min(
                self.respawn_backoff_s * (2.0 ** (self._respawn_streak - 1)),
                self._MAX_RESPAWN_BACKOFF_S,
            )
            self._respawn_not_before_s = time.monotonic() + backoff
        elif not dead and len(alive) >= self.num_workers:
            # a fully healthy sync ends the crash streak: the next
            # death pays the base backoff again, not the escalated one
            self._respawn_streak = 0
        self._workers = alive
        if not self._workers:
            raise WorkerPoolError(
                "no live workers (respawn budget exhausted or backing"
                " off); callers fall back in-process"
            )
        stale = [
            worker
            for worker in self._workers
            if worker.fingerprint != self._export.fingerprint
        ]
        for worker in stale:
            try:
                worker.conn.send(("plan", self._export, self._segment.name))
            except (BrokenPipeError, OSError) as exc:
                raise WorkerPoolError(
                    f"worker died during weight publication: {exc}"
                ) from exc
        for worker in stale:
            reply = self._recv(worker)
            if reply[0] != "ready" or reply[1] != self._export.fingerprint:
                raise WorkerPoolError(f"worker failed to build plan: {reply[-1]}")
            worker.fingerprint = reply[1]

    def _recover_in_flight(self, pending: List[Tuple[_Worker, int]]) -> None:
        """Leave no poisoned pipes behind after a failed batch.

        Each pending worker holds at most one outstanding reply; drain
        it so the next ``predict_proba`` starts from clean pipes, and
        discard any worker that cannot be drained within the timeout
        (``_sync_workers`` respawns a replacement on the next call).
        """
        for worker, _task_id in pending:
            try:
                if worker.conn.poll(self.timeout_s):
                    worker.conn.recv()
                else:
                    self._discard_worker(worker)
            except (EOFError, OSError):
                self._discard_worker(worker)

    def _discard_worker(self, worker: _Worker) -> None:
        """Kill a worker whose pipe state is unknown; it is filtered
        out (and replaced) by the next ``_sync_workers``."""
        try:
            worker.process.terminate()
            worker.process.join(timeout=2.0)
        except (OSError, ValueError):
            pass
        try:
            worker.conn.close()
        except OSError:
            pass

    def _recv(self, worker: _Worker) -> tuple:
        if not worker.conn.poll(self.timeout_s):
            raise WorkerPoolError(
                f"timed out after {self.timeout_s:.0f}s waiting on worker"
            )
        try:
            return worker.conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerPoolError(f"worker connection lost: {exc}") from exc
