"""Multiprocess inference sharding.

:class:`InferenceWorkerPool` owns N worker processes that each hold a
private copy of the model and a compiled
:class:`~repro.nn.inference.InferencePlan`.  The parent splits a
memo-miss batch into per-worker sub-batches, scatters them over pipes,
and gathers per-frame ad probabilities back in order — so a page's
batched forward pass scales with cores instead of saturating one GIL.

Weight handoff is the part worth reading twice:

* ``publish()`` ships the classifier's packed
  :class:`~repro.nn.artifact.WeightArtifact` buffer once into a single
  ``multiprocessing.shared_memory`` segment (the model is < 2 MB at
  fp32, ~4x smaller again at int8 storage) and sends each worker only
  the segment *name* plus a
  :class:`~repro.core.classifier.PlanExport` manifest (storage dtypes
  and per-channel scales per parameter) — weights are never pickled
  per call, and never per worker.
* each worker attaches, **copies** the packed bytes into private
  memory, and closes the segment immediately.  The copy is deliberate:
  numpy views pinning a shared mmap would make
  ``SharedMemory.close()`` raise ``BufferError`` ("cannot close
  exported pointers exist") for the worker's whole lifetime.
  Quantized manifests dequantize worker-side into the rebuilt
  network, so per-worker shipped bytes shrink with the precision while
  every worker computes over exactly the bytes the parent compiled
  with (the calibration gate runs once, parent-side).
* publication is fingerprint-keyed, and the fingerprint covers the
  storage precision.  Re-publishing the same weights is a no-op;
  publishing after ``AdClassifier.load()``/``train()`` — or from a
  classifier at a different precision — ships a fresh segment and
  every worker recompiles its plan.  A pool can therefore never mix
  precisions across a publication.

Failure semantics: any worker death or timeout surfaces as
:class:`WorkerPoolError`, which callers (``PercivalBlocker``) treat as
"fall back to in-process inference" — a dying pool can slow a page
down, never mis-classify it.  Dead workers are respawned on the next
call.  Teardown (``close()``) is idempotent and also registered via
``atexit``; the pool is a context manager.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
from multiprocessing import shared_memory
from multiprocessing.connection import Connection
from typing import List, Optional, Tuple

import numpy as np

from repro.core.classifier import AdClassifier, PlanExport


class WorkerPoolError(RuntimeError):
    """Sharded inference could not complete; callers fall back serial."""


_DEFAULT_TIMEOUT_S = 60.0


def _preferred_context() -> mp.context.BaseContext:
    """Fork where available (cheap: no re-import of numpy per worker);
    spawn elsewhere.  Workers rebuild their model from the shared
    segment either way, so both start methods run the same code path.
    """
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _worker_main(conn: Connection) -> None:
    """Worker loop: (re)build the plan on ``plan``, score on ``run``.

    Replies: ``("ready", fingerprint)`` after a successful plan build,
    ``("result", task_id, probabilities)`` per sub-batch, and
    ``("error", detail)`` / ``("error", task_id, detail)`` on failure —
    the worker survives a failed request and keeps serving.
    """
    classifier: Optional[AdClassifier] = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "plan":
            _, export, segment_name = message
            try:
                segment = shared_memory.SharedMemory(name=segment_name)
                try:
                    classifier = AdClassifier.from_plan_export(export, segment.buf)
                finally:
                    segment.close()
                conn.send(("ready", export.fingerprint))
            except Exception as exc:
                classifier = None
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
        elif kind == "run":
            _, task_id, batch = message
            if classifier is None:
                conn.send(("error", task_id, "no published weights"))
                continue
            try:
                probabilities = classifier.predict_proba_tensor(batch)
                conn.send(("result", task_id, probabilities))
            except Exception as exc:
                conn.send(("error", task_id, f"{type(exc).__name__}: {exc}"))
        elif kind == "stop":
            break
    try:
        conn.close()
    except OSError:
        pass


class _Worker:
    """Parent-side handle: process, pipe, last-acked fingerprint."""

    __slots__ = ("process", "conn", "fingerprint")

    def __init__(self, process, conn: Connection) -> None:
        self.process = process
        self.conn = conn
        self.fingerprint: Optional[str] = None


class InferenceWorkerPool:
    """A process pool sharding batched inference across cores."""

    def __init__(
        self,
        num_workers: int,
        start_method: Optional[str] = None,
        timeout_s: float = _DEFAULT_TIMEOUT_S,
    ) -> None:
        if num_workers < 1:
            raise ValueError(
                "num_workers must be >= 1; use configured_worker_count()"
                " == 0 (PERCIVAL_WORKERS=0) to disable sharding instead"
            )
        self.num_workers = int(num_workers)
        self.timeout_s = float(timeout_s)
        self._ctx = (
            mp.get_context(start_method)
            if start_method is not None
            else _preferred_context()
        )
        self._workers: List[_Worker] = []
        self._segment: Optional[shared_memory.SharedMemory] = None
        self._export: Optional[PlanExport] = None
        self._task_counter = 0
        self._closed = False
        self._dispatching = False
        atexit.register(self.close)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def alive_workers(self) -> int:
        return sum(1 for w in self._workers if w.process.is_alive())

    @property
    def published_fingerprint(self) -> Optional[str]:
        """Fingerprint of the weights workers currently hold."""
        return self._export.fingerprint if self._export else None

    @property
    def dispatching(self) -> bool:
        """True while a scatter/gather call is in flight."""
        return self._dispatching

    @property
    def available_capacity(self) -> int:
        """Workers a new batch would scatter across *right now* without
        queueing behind anything.

        ``0`` when the pool is closed, has no published weights, or is
        mid-``predict_proba`` (the parent gathers synchronously, so a
        concurrent caller would serialize behind the in-flight batch);
        otherwise the full worker count — dead workers are respawned at
        call entry, so they still count as capacity.  The serving layer
        polls this without blocking to size and pace its flushes.
        """
        if self._closed or self._export is None or self._dispatching:
            return 0
        return self.num_workers

    # ------------------------------------------------------------------
    # Weight publication
    # ------------------------------------------------------------------
    def publish(self, classifier: AdClassifier) -> str:
        """Ship ``classifier``'s weights to every worker.

        Fingerprint-keyed: publishing unchanged weights to a healthy
        pool is a no-op; publishing after the classifier's weights were
        replaced (``load()``/``train()``) creates a fresh shared
        segment and every worker recompiles its plan from it.  Returns
        the published fingerprint.
        """
        self._ensure_open()
        fingerprint = classifier.weights_fingerprint()
        if self._export is None or self._export.fingerprint != fingerprint:
            export = classifier.export_plan()
            try:
                segment = shared_memory.SharedMemory(
                    create=True, size=max(export.total_bytes, 1)
                )
            except OSError as exc:
                # e.g. /dev/shm full: a publication failure must surface
                # as WorkerPoolError so callers fall back in-process
                raise WorkerPoolError(
                    f"could not create shared segment: {exc}"
                ) from exc
            try:
                classifier.pack_weights_into(export, segment.buf)
            except Exception as exc:
                segment.close()
                segment.unlink()
                raise WorkerPoolError(f"could not pack weights: {exc}") from exc
            self._retire_segment()
            self._segment = segment
            self._export = export
        # same fingerprint: the live segment already holds these bytes;
        # only dead/stale workers need (re)syncing, which is a no-op for
        # a healthy pool.
        self._sync_workers()
        return fingerprint

    # ------------------------------------------------------------------
    # Sharded inference
    # ------------------------------------------------------------------
    def predict_proba(self, batch: np.ndarray) -> np.ndarray:
        """P(ad) for a preprocessed NCHW batch, sharded across workers.

        Sub-batches are contiguous ``array_split`` slices, gathered in
        scatter order, so the result aligns one-to-one with ``batch``.
        Raises :class:`WorkerPoolError` on worker death or timeout —
        never a silently wrong probability.  On any failure, workers
        still holding an in-flight reply are drained (or discarded when
        they cannot be), so one bad batch never poisons the pipes for
        the next call.
        """
        self._ensure_open()
        if self._export is None:
            raise WorkerPoolError("no weights published; call publish()")
        if batch.shape[0] == 0:
            return np.empty(0, dtype=np.float32)
        self._dispatching = True
        try:
            self._sync_workers()
            shards = [
                shard
                for shard in np.array_split(batch, self.num_workers)
                if shard.shape[0]
            ]
            in_flight: List[Tuple[_Worker, int]] = []
            for worker, shard in zip(self._workers, shards):
                self._task_counter += 1
                task_id = self._task_counter
                try:
                    worker.conn.send(("run", task_id, shard))
                except (BrokenPipeError, OSError) as exc:
                    self._recover_in_flight(in_flight)
                    self._discard_worker(worker)
                    raise WorkerPoolError(
                        f"worker died during scatter: {exc}"
                    ) from exc
                in_flight.append((worker, task_id))
            gathered: List[np.ndarray] = []
            for position, (worker, task_id) in enumerate(in_flight):
                pending = in_flight[position + 1:]
                try:
                    reply = self._recv(worker)
                except WorkerPoolError:
                    self._discard_worker(worker)
                    self._recover_in_flight(pending)
                    raise
                if reply[0] == "result" and reply[1] == task_id:
                    gathered.append(np.asarray(reply[2], dtype=np.float32))
                    continue
                if reply[0] == "error" and len(reply) == 3 and reply[1] == task_id:
                    # clean failure: the worker consumed the task and its
                    # pipe stays in sync — only later workers need draining
                    self._recover_in_flight(pending)
                    raise WorkerPoolError(f"worker failed mid-batch: {reply[2]}")
                # out-of-sync reply: this worker's pipe cannot be trusted
                self._discard_worker(worker)
                self._recover_in_flight(pending)
                raise WorkerPoolError(
                    f"out-of-sync {reply[0]!r} reply from worker; discarded it"
                )
            return np.concatenate(gathered)
        finally:
            self._dispatching = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def resize(self, num_workers: int) -> int:
        """Grow or shrink the worker set to ``num_workers``; returns the
        new count.

        The autoscaling hook: growth spawns workers lazily (they attach
        to the already-published shared segment on the next
        ``_sync_workers``, so no re-publication and no re-packing), and
        shrinkage stops the highest-indexed workers — the same
        deterministic tie-break the serve loop's lanes use.  Resizing a
        mid-dispatch pool raises: the scatter order of an in-flight
        batch is already fixed.
        """
        self._ensure_open()
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self._dispatching:
            raise WorkerPoolError("cannot resize while a batch is in flight")
        num_workers = int(num_workers)
        if num_workers < len(self._workers):
            for worker in self._workers[num_workers:]:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=2.0)
                try:
                    worker.conn.close()
                except OSError:
                    pass
            self._workers = self._workers[:num_workers]
        self.num_workers = num_workers
        if self._export is not None:
            # grow eagerly so available_capacity reflects the new size
            # immediately (shrink already took effect above)
            self._sync_workers()
        return self.num_workers

    def close(self) -> None:
        """Stop workers and release the shared segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []
        self._retire_segment()
        self._export = None
        try:
            atexit.unregister(self.close)
        except Exception:
            pass

    def __enter__(self) -> "InferenceWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise WorkerPoolError("worker pool is closed")

    def _retire_segment(self) -> None:
        if self._segment is None:
            return
        try:
            self._segment.close()
        finally:
            try:
                self._segment.unlink()
            except FileNotFoundError:
                pass
            self._segment = None

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            daemon=True,
            name="percival-inference-worker",
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _sync_workers(self) -> None:
        """Respawn dead workers; (re)send the plan to stale ones."""
        if self._export is None or self._segment is None:
            raise WorkerPoolError("no weights published; call publish()")
        alive: List[_Worker] = []
        for worker in self._workers:
            if worker.process.is_alive():
                alive.append(worker)
            else:
                try:
                    worker.conn.close()
                except OSError:
                    pass
        while len(alive) < self.num_workers:
            alive.append(self._spawn())
        self._workers = alive
        stale = [
            worker
            for worker in self._workers
            if worker.fingerprint != self._export.fingerprint
        ]
        for worker in stale:
            try:
                worker.conn.send(("plan", self._export, self._segment.name))
            except (BrokenPipeError, OSError) as exc:
                raise WorkerPoolError(
                    f"worker died during weight publication: {exc}"
                ) from exc
        for worker in stale:
            reply = self._recv(worker)
            if reply[0] != "ready" or reply[1] != self._export.fingerprint:
                raise WorkerPoolError(f"worker failed to build plan: {reply[-1]}")
            worker.fingerprint = reply[1]

    def _recover_in_flight(self, pending: List[Tuple[_Worker, int]]) -> None:
        """Leave no poisoned pipes behind after a failed batch.

        Each pending worker holds at most one outstanding reply; drain
        it so the next ``predict_proba`` starts from clean pipes, and
        discard any worker that cannot be drained within the timeout
        (``_sync_workers`` respawns a replacement on the next call).
        """
        for worker, _task_id in pending:
            try:
                if worker.conn.poll(self.timeout_s):
                    worker.conn.recv()
                else:
                    self._discard_worker(worker)
            except (EOFError, OSError):
                self._discard_worker(worker)

    def _discard_worker(self, worker: _Worker) -> None:
        """Kill a worker whose pipe state is unknown; it is filtered
        out (and replaced) by the next ``_sync_workers``."""
        try:
            worker.process.terminate()
            worker.process.join(timeout=2.0)
        except (OSError, ValueError):
            pass
        try:
            worker.conn.close()
        except OSError:
            pass

    def _recv(self, worker: _Worker) -> tuple:
        if not worker.conn.poll(self.timeout_s):
            raise WorkerPoolError(
                f"timed out after {self.timeout_s:.0f}s waiting on worker"
            )
        try:
            return worker.conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerPoolError(f"worker connection lost: {exc}") from exc
