"""Grad-CAM salience maps (Figure 4, §5.6).

Grad-CAM (Selvaraju et al.) weighs a convolutional layer's activation
channels by the spatially-pooled gradient of the class score and ReLUs
the weighted sum into a coarse salience map.  The paper uses it to show
the network attends to ad cues (AdChoices marker, text outlines,
product shapes).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.classifier import AdClassifier
from repro.core.preprocessing import preprocess_bitmap
from repro.models.percivalnet import LABEL_AD
from repro.synth.drawing import resize_bitmap


class GradCam:
    """Salience-map extractor over a trained classifier."""

    def __init__(self, classifier: AdClassifier) -> None:
        self.classifier = classifier
        self.network = classifier.network

    def available_layers(self) -> list:
        """Indices of feature-producing layers (stem conv + fires)."""
        return list(self.network.feature_indices)

    def salience(
        self,
        bitmap: np.ndarray,
        layer: Optional[int] = None,
        target_class: int = LABEL_AD,
    ) -> np.ndarray:
        """Salience map in [0, 1] at the bitmap's spatial size.

        ``layer`` is an index into the network's layer list; defaults to
        the last fire module (the paper inspects "Layer 5" and "Layer 9"
        of its stack).
        """
        if layer is None:
            layer = self.network.feature_indices[-1]
        if layer not in self.network.feature_indices:
            raise ValueError(
                f"layer {layer} is not a feature layer; "
                f"choose from {self.network.feature_indices}"
            )

        tensor = preprocess_bitmap(
            bitmap, self.classifier.config.input_size
        )[None, ...]

        self.network.eval()
        self.network.capture([layer])
        logits = self.network.forward(tensor)
        activations = self.network.captured(layer)
        if activations is None:  # pragma: no cover - defensive
            raise RuntimeError("activation capture failed")

        one_hot = np.zeros_like(logits)
        one_hot[0, target_class] = 1.0
        for param in self.network.parameters():
            param.zero_grad()
        grad_at_layer = self.network.backward_from(one_hot, layer)

        # channel weights: global-average-pooled gradients
        weights = grad_at_layer.mean(axis=(2, 3))[0]          # (C,)
        cam = np.maximum(
            (weights[:, None, None] * activations[0]).sum(axis=0), 0.0
        )
        peak = cam.max()
        if peak > 0:
            cam = cam / peak
        cam_rgba = np.repeat(
            cam[:, :, None].astype(np.float32), 4, axis=2
        )
        resized = resize_bitmap(
            cam_rgba, bitmap.shape[0], bitmap.shape[1]
        )
        self.network.capture([])
        return resized[..., 0]

    def cue_mass(
        self, bitmap: np.ndarray, region: tuple, layer: Optional[int] = None
    ) -> float:
        """Fraction of salience mass inside ``region`` (x, y, w, h).

        Used by the Figure 4 analysis to check quantitatively that
        salience concentrates on cue regions (e.g. the AdChoices corner).
        """
        cam = self.salience(bitmap, layer=layer)
        total = float(cam.sum())
        if total <= 0:
            return 0.0
        x, y, w, h = region
        return float(cam[y:y + h, x:x + w].sum()) / total
