"""The ad classifier: preprocessing + the compressed CNN."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import PercivalConfig
from repro.core.preprocessing import preprocess_batch, preprocess_bitmap
from repro.models.percivalnet import LABEL_AD, PercivalNet, build_percival_net
from repro.models.zoo import model_size_mb
from repro.nn import Trainer, TrainConfig, TrainReport, softmax
from repro.nn.inference import (
    InferencePlan,
    UnsupportedLayerError,
    compile_inference,
)
from repro.nn.serialization import load_weights, save_weights
from repro.utils.timing import measure_latency


class AdClassifier:
    """Classifies decoded bitmaps as ad / non-ad.

    Wraps a :class:`PercivalNet` with the preprocessing step and exposes
    the operations the rest of the system needs: probability scoring,
    thresholded verdicts, training, persistence, and measured inference
    latency (the number the render experiments calibrate against).

    Eval-mode scoring runs through a compiled inference plan (fused,
    cache-free kernels; see ``repro.nn.inference``), compiled lazily and
    invalidated whenever the weights may have been replaced
    (``train()``/``load()``).  Training and Grad-CAM keep using the
    layer-by-layer graph.
    """

    def __init__(
        self,
        config: Optional[PercivalConfig] = None,
        network: Optional[PercivalNet] = None,
    ) -> None:
        self.config = config or PercivalConfig()
        self.network = network or build_percival_net(
            input_size=self.config.input_size,
            in_channels=self.config.in_channels,
            seed=self.config.seed,
            width=self.config.width,
        )
        self.network.eval()
        self._plan: Optional[InferencePlan] = None
        self._plan_supported = True

    # ------------------------------------------------------------------
    # Compiled fast path
    # ------------------------------------------------------------------
    @property
    def inference_plan(self) -> Optional[InferencePlan]:
        """The compiled eval-mode plan (None if the network contains a
        layer the compiler cannot lower — scoring then falls back to the
        layer-by-layer path)."""
        if self._plan is None and self._plan_supported:
            try:
                self._plan = compile_inference(self.network)
            except UnsupportedLayerError:
                self._plan_supported = False
        return self._plan

    def invalidate_plan(self) -> None:
        """Discard the compiled plan (after weight replacement)."""
        self._plan = None
        self._plan_supported = True

    def _forward_eval(
        self, batch: np.ndarray, fast_path: bool = True
    ) -> np.ndarray:
        plan = self.inference_plan if fast_path else None
        if plan is not None:
            return plan.run(batch)
        return self.network.forward(batch)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def ad_probability(self, bitmap: np.ndarray) -> float:
        """P(ad) for a single decoded bitmap."""
        tensor = preprocess_bitmap(bitmap, self.config.input_size)
        logits = self._forward_eval(tensor[None, ...])
        return float(softmax(logits, axis=1)[0, LABEL_AD])

    def is_ad(self, bitmap: np.ndarray) -> bool:
        """Thresholded verdict for one bitmap."""
        return self.ad_probability(bitmap) >= self.config.ad_threshold

    def ad_probabilities(
        self, bitmaps: Sequence[np.ndarray], batch_size: int = 64
    ) -> np.ndarray:
        """P(ad) for a sequence of bitmaps (batched)."""
        batch = preprocess_batch(bitmaps, self.config.input_size)
        return self.predict_proba_tensor(batch, batch_size)

    def predict_proba_tensor(
        self,
        tensors: np.ndarray,
        batch_size: int = 64,
        fast_path: bool = True,
    ) -> np.ndarray:
        """P(ad) for an already-preprocessed NCHW batch.

        ``fast_path=False`` forces the reference layer-by-layer forward
        (used by the equivalence tests and benchmarks).
        """
        probs: List[np.ndarray] = []
        for start in range(0, tensors.shape[0], batch_size):
            logits = self._forward_eval(
                tensors[start:start + batch_size], fast_path=fast_path
            )
            probs.append(softmax(logits, axis=1)[:, LABEL_AD])
        if not probs:
            return np.empty(0, dtype=np.float32)
        return np.concatenate(probs)

    def predict_tensor(
        self, tensors: np.ndarray, batch_size: int = 64
    ) -> np.ndarray:
        """Thresholded 0/1 predictions for a preprocessed batch."""
        probabilities = self.predict_proba_tensor(tensors, batch_size)
        return (probabilities >= self.config.ad_threshold).astype(np.int64)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        val_images: Optional[np.ndarray] = None,
        val_labels: Optional[np.ndarray] = None,
        epochs: Optional[int] = None,
        lr: float = 0.01,
    ) -> TrainReport:
        """Train on a preprocessed NCHW corpus.

        The paper's recipe uses lr=0.001 at 224 px over 63k images; the
        reduced-scale default raises the rate accordingly.  All other
        recipe pieces (SGD momentum 0.9, batch 24, step decay) hold.
        """
        train_config = TrainConfig(
            lr=lr,
            epochs=epochs if epochs is not None else self.config.epochs,
            seed=self.config.seed,
        )
        self.invalidate_plan()
        trainer = Trainer(self.network, train_config)
        report = trainer.fit(images, labels, val_images, val_labels)
        self.network.eval()
        self.invalidate_plan()
        return report

    # ------------------------------------------------------------------
    # Persistence and accounting
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        save_weights(self.network, path)

    def load(self, path: str) -> None:
        load_weights(self.network, path)
        self.network.eval()
        self.invalidate_plan()

    @property
    def model_size_mb(self) -> float:
        return model_size_mb(self.network)

    def measured_latency_ms(self, repeats: int = 5) -> float:
        """Median wall-clock per-image inference latency (preprocessing
        included), measured on this machine — the §5.7 calibration input.
        """
        rng = np.random.default_rng(0)
        bitmap = rng.random((64, 64, 4)).astype(np.float32)
        return measure_latency(
            lambda: self.is_ad(bitmap), repeats=repeats, warmup=2
        )
