"""The ad classifier: preprocessing + the compressed CNN."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import PercivalConfig, configured_precision
from repro.core.preprocessing import preprocess_batch, preprocess_bitmap
from repro.models.percivalnet import LABEL_AD, PercivalNet, build_percival_net
from repro.models.zoo import model_size_mb
from repro.nn import Trainer, TrainConfig, TrainReport, softmax
from repro.nn.artifact import ManifestRow, WeightArtifact
from repro.nn.inference import (
    InferencePlan,
    UnsupportedLayerError,
    compile_inference,
)
from repro.nn.quantize import FP32
from repro.nn.serialization import load_weights, save_weights
from repro.utils.logging import get_logger
from repro.utils.rng import spawn_rng
from repro.utils.timing import measure_latency

_logger = get_logger("repro.core.classifier")

#: fast-path-vs-reference equivalence tolerance at fp32 — the
#: bit-for-bit pipeline, where only kernel reassociation differs.
#: Quantized precisions derive their tolerance from the calibration
#: gate bound (see :attr:`AdClassifier.fast_path_tolerance`), so a
#: gate-accepted artifact can never fail the equivalence suite.
_FP32_EQUIVALENCE_TOLERANCE = 1e-5
#: headroom multiplier over the gate bound for non-calibration inputs
_QUANTIZED_TOLERANCE_HEADROOM = 5.0

#: frames in the deterministic held-out calibration batch the
#: quantization gate scores (seeded per config, never training data)
_CALIBRATION_FRAMES = 16


class PrecisionRejectedError(RuntimeError):
    """A quantized artifact failed the calibration accuracy gate."""


@dataclass(frozen=True)
class PlanExport:
    """Everything a worker process needs to rebuild the compiled plan.

    The architecture travels as the :class:`PercivalConfig` (networks
    are deterministic per configuration); the weights travel separately
    as one flat byte buffer — typically a ``multiprocessing``
    shared-memory segment — described by ``manifest``: one
    ``(name, shape, storage dtype, offset, per-channel scales)`` row
    per parameter, in the network's own ``parameters()`` order (the
    :class:`~repro.nn.artifact.WeightArtifact` manifest).
    ``precision`` is the artifact's *effective* storage precision, so a
    worker materializes exactly the bytes the parent compiled with.
    ``fingerprint`` identifies the published weights-at-precision so
    pools can detect staleness after ``load()``/``train()`` — and never
    mix precisions — without reshipping anything.
    """

    config: PercivalConfig
    manifest: Tuple[ManifestRow, ...]
    total_bytes: int
    fingerprint: str
    precision: str = FP32


class AdClassifier:
    """Classifies decoded bitmaps as ad / non-ad.

    Wraps a :class:`PercivalNet` with the preprocessing step and exposes
    the operations the rest of the system needs: probability scoring,
    thresholded verdicts, training, persistence, and measured inference
    latency (the number the render experiments calibrate against).

    Eval-mode scoring runs through a compiled inference plan (fused,
    cache-free kernels; see ``repro.nn.inference``), compiled lazily and
    invalidated whenever the weights may have been replaced
    (``train()``/``load()``).  Training and Grad-CAM keep using the
    layer-by-layer graph.

    The plan's weights come from a precision-aware
    :class:`~repro.nn.artifact.WeightArtifact`: ``fp32`` (the default)
    compiles straight from the live parameter views — bit-for-bit the
    pre-precision pipeline — while ``fp16``/``int8`` (via
    ``PercivalConfig.precision`` or the ``PERCIVAL_PRECISION`` knob)
    quantize at compile time behind a calibration accuracy gate that
    falls back to fp32 whenever quantization would move verdicts.
    """

    def __init__(
        self,
        config: Optional[PercivalConfig] = None,
        network: Optional[PercivalNet] = None,
    ) -> None:
        self.config = config or PercivalConfig()
        self.network = network or build_percival_net(
            input_size=self.config.input_size,
            in_channels=self.config.in_channels,
            seed=self.config.seed,
            width=self.config.width,
        )
        self.network.eval()
        #: requested storage precision of the inference weight artifact
        self.precision = configured_precision(self.config.precision)
        self._plan: Optional[InferencePlan] = None
        self._plan_supported = True
        #: bumped on every invalidation; lets worker pools detect that
        #: published weights went stale without hashing on the hot path
        self.weights_version = 0
        self._fingerprint: Optional[str] = None
        self._fingerprint_version = -1
        self._artifact: Optional[WeightArtifact] = None
        self._artifact_version = -1

    # ------------------------------------------------------------------
    # Compiled fast path
    # ------------------------------------------------------------------
    @property
    def inference_plan(self) -> Optional[InferencePlan]:
        """The compiled eval-mode plan (None if the network contains a
        layer the compiler cannot lower — scoring then falls back to the
        layer-by-layer path).

        ``fp32`` compiles from the live parameter views (in-place SGD
        updates flow through); quantized precisions compile from the
        gated weight artifact — a snapshot, covered by the same
        ``invalidate_plan`` contract.
        """
        if self._plan is None and self._plan_supported:
            try:
                artifact = None
                if self.precision != FP32:
                    candidate = self.weight_artifact()
                    if candidate.precision != FP32:
                        artifact = candidate
                self._plan = compile_inference(
                    self.network, artifact=artifact
                )
            except UnsupportedLayerError:
                self._plan_supported = False
        return self._plan

    def invalidate_plan(self) -> None:
        """Discard the compiled plan and the cached weight artifact
        (after weight replacement)."""
        self._plan = None
        self._plan_supported = True
        self.weights_version += 1

    # ------------------------------------------------------------------
    # Precision artifacts
    # ------------------------------------------------------------------
    @property
    def effective_precision(self) -> str:
        """The storage precision actually in effect: the requested one,
        or ``fp32`` when the calibration gate rejected it."""
        if self.precision == FP32:
            return FP32
        return self.weight_artifact().precision

    @property
    def fast_path_tolerance(self) -> float:
        """Max fast-path-vs-reference probability delta to assert in
        equivalence tests, given the effective storage precision.

        Quantized precisions scale the calibration gate's drift bound
        by a headroom factor (the gate scores a held-out batch;
        arbitrary inputs can drift somewhat further), so the
        equivalence suite stays consistent with whatever the gate
        accepted — including user-tuned ``quantization_drift_tolerance``.
        """
        if self.effective_precision == FP32:
            return _FP32_EQUIVALENCE_TOLERANCE
        return (
            _QUANTIZED_TOLERANCE_HEADROOM
            * self.config.quantization_drift_tolerance
        )

    def weight_artifact(self) -> WeightArtifact:
        """The current weights packed at this classifier's precision.

        Cached per ``weights_version`` (same staleness contract as the
        compiled plan).  Non-fp32 artifacts pass the calibration gate
        before they are adopted; a rejected precision falls back to an
        fp32 artifact, and ``effective_precision`` reports the
        downgrade.
        """
        if (
            self._artifact is None
            or self._artifact_version != self.weights_version
        ):
            self._artifact = self._build_artifact()
            self._artifact_version = self.weights_version
        return self._artifact

    def _build_artifact(self) -> WeightArtifact:
        if self.precision == FP32:
            return WeightArtifact.from_network(self.network, FP32)
        candidate = WeightArtifact.from_network(
            self.network, self.precision
        )
        try:
            self._calibrate_artifact(candidate)
        except PrecisionRejectedError as exc:
            _logger.warning(
                "precision %s rejected by the calibration gate "
                "(%s); falling back to fp32 weights", self.precision, exc
            )
            return WeightArtifact.from_network(self.network, FP32)
        return candidate

    def calibration_batch(self) -> np.ndarray:
        """The deterministic held-out batch the quantization gate
        scores: freshly synthesized ad and content frames (seeded per
        configuration, disjoint from any training or evaluation
        corpus), preprocessed like every render-pipeline frame.

        Representative frames matter: quantization noise in the logits
        moves P(ad) most where predictions sit mid-range, so gating on
        the frame distribution the blocker actually scores is what
        makes the drift bound meaningful.
        """
        # synth generators are a leaf dependency of the data pipeline;
        # imported here so the core classifier stays importable without
        # dragging the generators in for fp32-only deployments
        from repro.synth.adgen import AdSpec, generate_ad
        from repro.synth.contentgen import generate_content

        rng = spawn_rng(self.config.seed, "precision-calibration")
        frames = []
        for _ in range(_CALIBRATION_FRAMES // 2):
            frames.append(generate_ad(rng, AdSpec()))
            frames.append(generate_content(rng))
        return preprocess_batch(frames, self.config.input_size)

    def _calibrate_artifact(self, candidate: WeightArtifact) -> None:
        """Accuracy gate: compare the candidate's plan against the fp32
        plan on the calibration batch.  Raises
        :class:`PrecisionRejectedError` when the max P(ad) drift
        exceeds ``config.quantization_drift_tolerance`` or any verdict
        flips at the blocking threshold.
        """
        try:
            reference_plan = compile_inference(self.network)
            candidate_plan = compile_inference(
                self.network, artifact=candidate
            )
        except UnsupportedLayerError as exc:
            raise PrecisionRejectedError(
                f"network has no compiled lowering to gate against: {exc}"
            ) from exc
        batch = self.calibration_batch()
        reference = softmax(reference_plan.run(batch), axis=1)[:, LABEL_AD]
        quantized = softmax(candidate_plan.run(batch), axis=1)[:, LABEL_AD]
        drift = float(np.abs(reference - quantized).max())
        tolerance = self.config.quantization_drift_tolerance
        if drift > tolerance:
            raise PrecisionRejectedError(
                f"max P(ad) drift {drift:.2e} exceeds the calibration "
                f"tolerance {tolerance:.2e}"
            )
        threshold = self.config.ad_threshold
        flips = int(
            ((reference >= threshold) != (quantized >= threshold)).sum()
        )
        if flips:
            raise PrecisionRejectedError(
                f"{flips} calibration verdict(s) flipped at "
                f"threshold {threshold}"
            )

    def _install_artifact(self, artifact: WeightArtifact) -> None:
        """Adopt an already-materialized artifact (worker import): the
        gate ran parent-side, so the bytes are taken as published."""
        self._artifact = artifact
        self._artifact_version = self.weights_version

    def _forward_eval(
        self, batch: np.ndarray, fast_path: bool = True
    ) -> np.ndarray:
        plan = self.inference_plan if fast_path else None
        if plan is not None:
            return plan.run(batch)
        return self.network.forward(batch)

    # ------------------------------------------------------------------
    # Plan export/import (multiprocess sharding)
    # ------------------------------------------------------------------
    def weights_fingerprint(self) -> str:
        """Stable digest of the current weights *at this precision*.

        Cached per ``weights_version``, so repeated calls on the hot
        path (the blocker checks it before every sharded batch) cost a
        dict lookup, not a re-hash.  The requested precision is folded
        into the digest, so pool publications and memo generations can
        never mix artifacts of different precisions under one key.  The
        same staleness contract as the compiled plan applies: direct
        in-place mutation of ``network.parameters()`` outside
        ``train()``/``load()`` must be followed by
        ``invalidate_plan()``.
        """
        if (
            self._fingerprint is None
            or self._fingerprint_version != self.weights_version
        ):
            hasher = hashlib.blake2b(digest_size=16)
            hasher.update(self.precision.encode())
            for param in self.network.parameters():
                hasher.update(param.name.encode())
                hasher.update(str(param.data.shape).encode())
                hasher.update(str(param.data.dtype).encode())
                hasher.update(np.ascontiguousarray(param.data).tobytes())
            self._fingerprint = hasher.hexdigest()
            self._fingerprint_version = self.weights_version
        return self._fingerprint

    def export_plan(self) -> PlanExport:
        """Manifest for shipping this classifier's plan to a worker.

        Built from the weight artifact, so the manifest rows carry the
        *storage* dtypes (and per-channel scales) and ``total_bytes``
        is the packed-quantized size — an int8 publication ships a
        roughly 4x smaller shared-memory segment than fp32.
        """
        artifact = self.weight_artifact()
        return PlanExport(
            config=self.config,
            manifest=artifact.manifest_rows(),
            total_bytes=artifact.nbytes,
            fingerprint=self.weights_fingerprint(),
            precision=artifact.precision,
        )

    def pack_weights_into(self, export: PlanExport, buffer) -> None:
        """Write the packed weight artifact into ``buffer`` per
        ``export``'s manifest.

        ``buffer`` is any writable buffer of at least
        ``export.total_bytes`` bytes — in the sharded deployment, a
        ``multiprocessing.shared_memory`` segment's ``buf``.
        """
        if export.fingerprint != self.weights_fingerprint():
            raise ValueError(
                "export fingerprint does not match the current weights "
                "— re-export after load()/train()"
            )
        artifact = self.weight_artifact()
        if len(export.manifest) != len(artifact.entries):
            raise ValueError(
                f"manifest rows ({len(export.manifest)}) do not match "
                f"artifact entries ({len(artifact.entries)})"
            )
        if export.total_bytes != artifact.nbytes:
            raise ValueError(
                f"export expects {export.total_bytes} bytes, current "
                f"artifact packs {artifact.nbytes} — stale export?"
            )
        target = np.frombuffer(
            buffer, dtype=np.uint8, count=artifact.nbytes
        )
        target[...] = artifact.buffer

    @classmethod
    def from_plan_export(cls, export: PlanExport, buffer) -> "AdClassifier":
        """Rebuild a classifier from a :class:`PlanExport` and its
        packed weight buffer (the worker-side import).

        The packed bytes are **copied** into private memory before any
        views are taken, so the caller may close/unlink the shared
        segment as soon as this returns — numpy views pinning a shared
        mmap would otherwise make ``SharedMemory.close()`` impossible.
        Non-fp32 manifests dequantize into the network's fp32
        parameters and install the artifact directly, so the worker's
        compiled plan computes over exactly the bytes the parent
        published — no re-quantization, no second calibration gate.
        """
        classifier = cls(export.config)
        artifact = WeightArtifact.from_manifest(
            export.manifest,
            buffer,
            precision=export.precision,
            total_bytes=export.total_bytes,
        )
        artifact.load_into(classifier.network)
        classifier.network.eval()
        classifier.invalidate_plan()
        classifier.precision = export.precision
        classifier._install_artifact(artifact)
        return classifier

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def ad_probability(self, bitmap: np.ndarray) -> float:
        """P(ad) for a single decoded bitmap."""
        tensor = preprocess_bitmap(bitmap, self.config.input_size)
        logits = self._forward_eval(tensor[None, ...])
        return float(softmax(logits, axis=1)[0, LABEL_AD])

    def is_ad(self, bitmap: np.ndarray) -> bool:
        """Thresholded verdict for one bitmap."""
        return self.ad_probability(bitmap) >= self.config.ad_threshold

    def ad_probabilities(
        self, bitmaps: Sequence[np.ndarray], batch_size: int = 64
    ) -> np.ndarray:
        """P(ad) for a sequence of bitmaps (batched)."""
        batch = preprocess_batch(bitmaps, self.config.input_size)
        return self.predict_proba_tensor(batch, batch_size)

    def predict_proba_tensor(
        self,
        tensors: np.ndarray,
        batch_size: int = 64,
        fast_path: bool = True,
    ) -> np.ndarray:
        """P(ad) for an already-preprocessed NCHW batch.

        ``fast_path=False`` forces the reference layer-by-layer forward
        (used by the equivalence tests and benchmarks).
        """
        probs: List[np.ndarray] = []
        for start in range(0, tensors.shape[0], batch_size):
            logits = self._forward_eval(
                tensors[start:start + batch_size], fast_path=fast_path
            )
            probs.append(softmax(logits, axis=1)[:, LABEL_AD])
        if not probs:
            return np.empty(0, dtype=np.float32)
        return np.concatenate(probs)

    def predict_tensor(
        self, tensors: np.ndarray, batch_size: int = 64
    ) -> np.ndarray:
        """Thresholded 0/1 predictions for a preprocessed batch."""
        probabilities = self.predict_proba_tensor(tensors, batch_size)
        return (probabilities >= self.config.ad_threshold).astype(np.int64)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        val_images: Optional[np.ndarray] = None,
        val_labels: Optional[np.ndarray] = None,
        epochs: Optional[int] = None,
        lr: float = 0.01,
    ) -> TrainReport:
        """Train on a preprocessed NCHW corpus.

        The paper's recipe uses lr=0.001 at 224 px over 63k images; the
        reduced-scale default raises the rate accordingly.  All other
        recipe pieces (SGD momentum 0.9, batch 24, step decay) hold.
        """
        train_config = TrainConfig(
            lr=lr,
            epochs=epochs if epochs is not None else self.config.epochs,
            seed=self.config.seed,
        )
        self.invalidate_plan()
        trainer = Trainer(self.network, train_config)
        report = trainer.fit(images, labels, val_images, val_labels)
        self.network.eval()
        self.invalidate_plan()
        return report

    # ------------------------------------------------------------------
    # Persistence and accounting
    # ------------------------------------------------------------------
    def save(self, path: str, precision: str = "fp32") -> None:
        """Persist the weights.  ``precision`` selects the storage form
        of the archive (default fp32 — full fidelity); quantized
        archives dequantize transparently on :meth:`load`."""
        save_weights(self.network, path, precision=precision)

    def load(self, path: str) -> None:
        load_weights(self.network, path)
        self.network.eval()
        self.invalidate_plan()

    @property
    def model_size_mb(self) -> float:
        return model_size_mb(self.network)

    def measured_latency_ms(self, repeats: int = 5) -> float:
        """Median wall-clock per-image inference latency (preprocessing
        included), measured on this machine — the §5.7 calibration input.
        """
        rng = np.random.default_rng(0)
        bitmap = rng.random((64, 64, 4)).astype(np.float32)
        return measure_latency(
            lambda: self.is_ad(bitmap), repeats=repeats, warmup=2
        )
