"""The ad classifier: preprocessing + the compressed CNN."""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import PercivalConfig
from repro.core.preprocessing import preprocess_batch, preprocess_bitmap
from repro.models.percivalnet import LABEL_AD, PercivalNet, build_percival_net
from repro.models.zoo import model_size_mb
from repro.nn import Trainer, TrainConfig, TrainReport, softmax
from repro.nn.inference import (
    InferencePlan,
    UnsupportedLayerError,
    compile_inference,
)
from repro.nn.serialization import load_weights, save_weights
from repro.utils.timing import measure_latency


@dataclass(frozen=True)
class PlanExport:
    """Everything a worker process needs to rebuild the compiled plan.

    The architecture travels as the :class:`PercivalConfig` (networks
    are deterministic per configuration); the weights travel separately
    as one flat byte buffer — typically a ``multiprocessing``
    shared-memory segment — described by ``manifest``: one
    ``(name, shape, dtype, offset)`` row per parameter, in the
    network's own ``parameters()`` order.  ``fingerprint`` identifies
    the published weights so pools can detect staleness after
    ``load()``/``train()`` without reshipping anything.
    """

    config: PercivalConfig
    manifest: Tuple[Tuple[str, Tuple[int, ...], str, int], ...]
    total_bytes: int
    fingerprint: str


class AdClassifier:
    """Classifies decoded bitmaps as ad / non-ad.

    Wraps a :class:`PercivalNet` with the preprocessing step and exposes
    the operations the rest of the system needs: probability scoring,
    thresholded verdicts, training, persistence, and measured inference
    latency (the number the render experiments calibrate against).

    Eval-mode scoring runs through a compiled inference plan (fused,
    cache-free kernels; see ``repro.nn.inference``), compiled lazily and
    invalidated whenever the weights may have been replaced
    (``train()``/``load()``).  Training and Grad-CAM keep using the
    layer-by-layer graph.
    """

    def __init__(
        self,
        config: Optional[PercivalConfig] = None,
        network: Optional[PercivalNet] = None,
    ) -> None:
        self.config = config or PercivalConfig()
        self.network = network or build_percival_net(
            input_size=self.config.input_size,
            in_channels=self.config.in_channels,
            seed=self.config.seed,
            width=self.config.width,
        )
        self.network.eval()
        self._plan: Optional[InferencePlan] = None
        self._plan_supported = True
        #: bumped on every invalidation; lets worker pools detect that
        #: published weights went stale without hashing on the hot path
        self.weights_version = 0
        self._fingerprint: Optional[str] = None
        self._fingerprint_version = -1

    # ------------------------------------------------------------------
    # Compiled fast path
    # ------------------------------------------------------------------
    @property
    def inference_plan(self) -> Optional[InferencePlan]:
        """The compiled eval-mode plan (None if the network contains a
        layer the compiler cannot lower — scoring then falls back to the
        layer-by-layer path)."""
        if self._plan is None and self._plan_supported:
            try:
                self._plan = compile_inference(self.network)
            except UnsupportedLayerError:
                self._plan_supported = False
        return self._plan

    def invalidate_plan(self) -> None:
        """Discard the compiled plan (after weight replacement)."""
        self._plan = None
        self._plan_supported = True
        self.weights_version += 1

    def _forward_eval(
        self, batch: np.ndarray, fast_path: bool = True
    ) -> np.ndarray:
        plan = self.inference_plan if fast_path else None
        if plan is not None:
            return plan.run(batch)
        return self.network.forward(batch)

    # ------------------------------------------------------------------
    # Plan export/import (multiprocess sharding)
    # ------------------------------------------------------------------
    def weights_fingerprint(self) -> str:
        """Stable digest of the current weights.

        Cached per ``weights_version``, so repeated calls on the hot
        path (the blocker checks it before every sharded batch) cost a
        dict lookup, not a re-hash.  The same staleness contract as the
        compiled plan applies: direct in-place mutation of
        ``network.parameters()`` outside ``train()``/``load()`` must be
        followed by ``invalidate_plan()``.
        """
        if (
            self._fingerprint is None
            or self._fingerprint_version != self.weights_version
        ):
            hasher = hashlib.blake2b(digest_size=16)
            for param in self.network.parameters():
                hasher.update(param.name.encode())
                hasher.update(str(param.data.shape).encode())
                hasher.update(str(param.data.dtype).encode())
                hasher.update(np.ascontiguousarray(param.data).tobytes())
            self._fingerprint = hasher.hexdigest()
            self._fingerprint_version = self.weights_version
        return self._fingerprint

    def export_plan(self) -> PlanExport:
        """Manifest for shipping this classifier's plan to a worker."""
        manifest = []
        offset = 0
        for param in self.network.parameters():
            data = param.data
            manifest.append(
                (param.name, tuple(data.shape), data.dtype.str, offset)
            )
            offset += int(data.nbytes)
        return PlanExport(
            config=self.config,
            manifest=tuple(manifest),
            total_bytes=offset,
            fingerprint=self.weights_fingerprint(),
        )

    def pack_weights_into(self, export: PlanExport, buffer) -> None:
        """Write the weights into ``buffer`` per ``export``'s manifest.

        ``buffer`` is any writable buffer of at least
        ``export.total_bytes`` bytes — in the sharded deployment, a
        ``multiprocessing.shared_memory`` segment's ``buf``.
        """
        params = self.network.parameters()
        if len(params) != len(export.manifest):
            raise ValueError(
                f"manifest rows ({len(export.manifest)}) do not match "
                f"network parameters ({len(params)})"
            )
        for param, (name, shape, dtype, offset) in zip(
            params, export.manifest
        ):
            if tuple(param.data.shape) != tuple(shape):
                raise ValueError(
                    f"shape mismatch packing {name}: "
                    f"{param.data.shape} vs {shape}"
                )
            count = math.prod(shape) if shape else 1
            target = np.frombuffer(
                buffer, dtype=np.dtype(dtype), count=count, offset=offset
            ).reshape(shape)
            target[...] = param.data

    @classmethod
    def from_plan_export(cls, export: PlanExport, buffer) -> "AdClassifier":
        """Rebuild a classifier from a :class:`PlanExport` and its
        packed weight buffer (the worker-side import).

        The packed bytes are **copied** into private memory before any
        views are taken, so the caller may close/unlink the shared
        segment as soon as this returns — numpy views pinning a shared
        mmap would otherwise make ``SharedMemory.close()`` impossible.
        """
        classifier = cls(export.config)
        params = classifier.network.parameters()
        if len(params) != len(export.manifest):
            raise ValueError(
                f"manifest rows ({len(export.manifest)}) do not match "
                f"network parameters ({len(params)})"
            )
        packed = np.frombuffer(
            buffer, dtype=np.uint8, count=export.total_bytes
        ).copy()
        for param, (name, shape, dtype, offset) in zip(
            params, export.manifest
        ):
            nbytes = math.prod(shape) * np.dtype(dtype).itemsize
            view = (
                packed[offset:offset + nbytes]
                .view(np.dtype(dtype))
                .reshape(shape)
            )
            if view.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch importing {name}: "
                    f"{param.data.shape} vs {view.shape}"
                )
            param.data = view
        classifier.network.eval()
        classifier.invalidate_plan()
        return classifier

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def ad_probability(self, bitmap: np.ndarray) -> float:
        """P(ad) for a single decoded bitmap."""
        tensor = preprocess_bitmap(bitmap, self.config.input_size)
        logits = self._forward_eval(tensor[None, ...])
        return float(softmax(logits, axis=1)[0, LABEL_AD])

    def is_ad(self, bitmap: np.ndarray) -> bool:
        """Thresholded verdict for one bitmap."""
        return self.ad_probability(bitmap) >= self.config.ad_threshold

    def ad_probabilities(
        self, bitmaps: Sequence[np.ndarray], batch_size: int = 64
    ) -> np.ndarray:
        """P(ad) for a sequence of bitmaps (batched)."""
        batch = preprocess_batch(bitmaps, self.config.input_size)
        return self.predict_proba_tensor(batch, batch_size)

    def predict_proba_tensor(
        self,
        tensors: np.ndarray,
        batch_size: int = 64,
        fast_path: bool = True,
    ) -> np.ndarray:
        """P(ad) for an already-preprocessed NCHW batch.

        ``fast_path=False`` forces the reference layer-by-layer forward
        (used by the equivalence tests and benchmarks).
        """
        probs: List[np.ndarray] = []
        for start in range(0, tensors.shape[0], batch_size):
            logits = self._forward_eval(
                tensors[start:start + batch_size], fast_path=fast_path
            )
            probs.append(softmax(logits, axis=1)[:, LABEL_AD])
        if not probs:
            return np.empty(0, dtype=np.float32)
        return np.concatenate(probs)

    def predict_tensor(
        self, tensors: np.ndarray, batch_size: int = 64
    ) -> np.ndarray:
        """Thresholded 0/1 predictions for a preprocessed batch."""
        probabilities = self.predict_proba_tensor(tensors, batch_size)
        return (probabilities >= self.config.ad_threshold).astype(np.int64)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        val_images: Optional[np.ndarray] = None,
        val_labels: Optional[np.ndarray] = None,
        epochs: Optional[int] = None,
        lr: float = 0.01,
    ) -> TrainReport:
        """Train on a preprocessed NCHW corpus.

        The paper's recipe uses lr=0.001 at 224 px over 63k images; the
        reduced-scale default raises the rate accordingly.  All other
        recipe pieces (SGD momentum 0.9, batch 24, step decay) hold.
        """
        train_config = TrainConfig(
            lr=lr,
            epochs=epochs if epochs is not None else self.config.epochs,
            seed=self.config.seed,
        )
        self.invalidate_plan()
        trainer = Trainer(self.network, train_config)
        report = trainer.fit(images, labels, val_images, val_labels)
        self.network.eval()
        self.invalidate_plan()
        return report

    # ------------------------------------------------------------------
    # Persistence and accounting
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        save_weights(self.network, path)

    def load(self, path: str) -> None:
        load_weights(self.network, path)
        self.network.eval()
        self.invalidate_plan()

    @property
    def model_size_mb(self) -> float:
        return model_size_mb(self.network)

    def measured_latency_ms(self, repeats: int = 5) -> float:
        """Median wall-clock per-image inference latency (preprocessing
        included), measured on this machine — the §5.7 calibration input.
        """
        rng = np.random.default_rng(0)
        bitmap = rng.random((64, 64, 4)).astype(np.float32)
        return measure_latency(
            lambda: self.is_ad(bitmap), repeats=repeats, warmup=2
        )
