"""Adversarial attacks and defenses (§6 "Limitations", §7).

The paper acknowledges — citing Tramèr et al.'s "Ad-Versarial" — that
computer-vision ad blockers are exposed to adversarial examples: an
advertiser can perturb a creative imperceptibly so the classifier stops
flagging it.  It floats client-side retraining as a partial mitigation.

Because this reproduction's framework has explicit backward passes, both
sides of that arms race are implementable exactly:

* :func:`fgsm_perturb` — the fast gradient-sign method: one gradient of
  the ad-class score w.r.t. the input pixels, stepped against the
  verdict (the attack an ad network could mount offline against a
  published model),
* :func:`evasion_rate` — how many ad creatives flip to "not ad" under a
  given perturbation budget,
* :func:`adversarial_finetune` — the defense: augment training with
  FGSM examples generated on-line from the current model (Goodfellow et
  al.'s adversarial training, the "retrain the model client side"
  direction the paper sketches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.classifier import AdClassifier
from repro.models.percivalnet import LABEL_AD
from repro.nn.loss import SoftmaxCrossEntropy
from repro.utils.rng import spawn_rng


def input_gradient(
    classifier: AdClassifier,
    tensors: np.ndarray,
    labels: np.ndarray,
    objective: str = "margin",
) -> np.ndarray:
    """Gradient of an attack objective w.r.t. the input tensor.

    ``objective="loss"`` differentiates the cross-entropy of the true
    label — the textbook FGSM objective, but it *saturates*: a fully
    confident model (P = 1.0 in float32) yields an exactly-zero
    gradient, masking the attack.  ``objective="margin"`` (default)
    differentiates the logit margin ``z_other - z_true``, which never
    saturates and is what practical attacks use (Carlini & Wagner).

    Parameter gradients accumulated during the pass are cleared so an
    attack never perturbs the model itself.
    """
    network = classifier.network
    network.eval()
    logits = network.forward(tensors)
    if objective == "loss":
        loss_fn = SoftmaxCrossEntropy()
        loss_fn.forward(logits, labels)
        grad_out = loss_fn.backward()
    elif objective == "margin":
        batch = tensors.shape[0]
        grad_out = np.ones_like(logits)
        grad_out[np.arange(batch), labels] = -1.0
    else:
        raise ValueError(f"unknown attack objective {objective!r}")
    grad = network.backward(grad_out)
    for param in network.parameters():
        param.zero_grad()
    return grad


def fgsm_perturb(
    classifier: AdClassifier,
    tensors: np.ndarray,
    labels: np.ndarray,
    epsilon: float,
    objective: str = "margin",
) -> np.ndarray:
    """FGSM: ``x' = clip(x + eps * sign(dJ/dx))``.

    Stepping along the attack objective's gradient pushes the example
    toward misclassification.  Inputs live in the normalized [-1, 1]
    domain, so clipping keeps the perturbed tensor feasible (i.e.
    decodable back to valid pixels).
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    grad = input_gradient(classifier, tensors, labels, objective)
    perturbed = tensors + epsilon * np.sign(grad)
    return np.clip(perturbed, -1.0, 1.0).astype(tensors.dtype)


def pgd_perturb(
    classifier: AdClassifier,
    tensors: np.ndarray,
    labels: np.ndarray,
    epsilon: float,
    steps: int = 10,
    step_size: float | None = None,
) -> np.ndarray:
    """Projected gradient descent: iterated FGSM inside the eps-ball.

    One signed step rarely crosses a confident model's boundary (most
    input-gradient entries are zero behind dead ReLUs); PGD recomputes
    the gradient after each small step and projects back onto the
    L-inf ball, which is the standard stronger attack (Madry et al.).
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if step_size is None:
        step_size = max(epsilon / 4.0, 1e-4)
    perturbed = tensors.copy()
    for _ in range(steps):
        grad = input_gradient(classifier, perturbed, labels, "margin")
        perturbed = perturbed + step_size * np.sign(grad)
        perturbed = np.clip(
            perturbed, tensors - epsilon, tensors + epsilon
        )
        perturbed = np.clip(perturbed, -1.0, 1.0)
    return perturbed.astype(tensors.dtype)


@dataclass
class EvasionReport:
    """Outcome of an evasion attack over a set of ad creatives."""

    epsilon: float
    total_ads: int
    detected_clean: int
    detected_perturbed: int

    @property
    def clean_recall(self) -> float:
        return self.detected_clean / max(self.total_ads, 1)

    @property
    def perturbed_recall(self) -> float:
        return self.detected_perturbed / max(self.total_ads, 1)

    @property
    def evasion_rate(self) -> float:
        """Fraction of initially-detected ads that escape detection."""
        if self.detected_clean == 0:
            return 0.0
        flipped = self.detected_clean - self.detected_perturbed
        return max(flipped, 0) / self.detected_clean


def evasion_rate(
    classifier: AdClassifier,
    ad_tensors: np.ndarray,
    epsilon: float,
    steps: int = 10,
) -> EvasionReport:
    """Attack every ad tensor with PGD; report recall before/after."""
    labels = np.full(ad_tensors.shape[0], LABEL_AD, dtype=np.int64)
    clean_preds = classifier.predict_tensor(ad_tensors)
    perturbed = pgd_perturb(
        classifier, ad_tensors, labels, epsilon, steps=steps
    )
    adv_preds = classifier.predict_tensor(perturbed)
    return EvasionReport(
        epsilon=epsilon,
        total_ads=int(ad_tensors.shape[0]),
        detected_clean=int(clean_preds.sum()),
        detected_perturbed=int(adv_preds.sum()),
    )


def clone_classifier(classifier: AdClassifier) -> AdClassifier:
    """Deep-copy a classifier (fresh network, identical weights).

    Adversarial fine-tuning mutates weights; experiments that share a
    cached reference model must defend a clone, never the original.
    """
    clone = AdClassifier(classifier.config)
    for src, dst in zip(
        classifier.network.parameters(), clone.network.parameters()
    ):
        dst.data[...] = src.data
    clone.network.eval()
    return clone


def adversarial_finetune(
    classifier: AdClassifier,
    images: np.ndarray,
    labels: np.ndarray,
    epsilon: float,
    epochs: int = 2,
    lr: float = 0.005,
    seed: int = 0,
) -> None:
    """Adversarial training: fine-tune on clean + FGSM examples.

    Each epoch regenerates adversarial examples from the *current*
    model (static adversarial sets go stale immediately) and trains on
    the concatenation.  This is the client-side-retraining defense the
    paper's §6 sketches.
    """
    rng = spawn_rng(seed, "advtrain")
    for _ in range(epochs):
        adversarial = pgd_perturb(
            classifier, images, labels, epsilon, steps=5
        )
        mixed_images = np.concatenate([images, adversarial], axis=0)
        mixed_labels = np.concatenate([labels, labels], axis=0)
        order = rng.permutation(mixed_images.shape[0])
        classifier.train(
            mixed_images[order], mixed_labels[order],
            epochs=1, lr=lr,
        )


@dataclass
class ArmsRaceResult:
    """Before/after-defense evasion at several budgets."""

    epsilons: List[float]
    undefended: List[EvasionReport]
    defended: List[EvasionReport]

    def to_table(self) -> str:
        from repro.eval.reporting import format_table
        rows = []
        for eps, before, after in zip(
            self.epsilons, self.undefended, self.defended
        ):
            rows.append((
                f"{eps:.3f}",
                f"{before.evasion_rate:.3f}",
                f"{after.evasion_rate:.3f}",
                f"{after.perturbed_recall:.3f}",
            ))
        return (
            "== §6 ablation: adversarial evasion and retraining ==\n"
            + format_table(
                ("epsilon", "evasion (undefended)",
                 "evasion (adv-trained)", "recall under attack"),
                rows,
            )
        )
