"""The render-pipeline blocker.

:class:`PercivalBlocker` is what the browser substrate talks to (it
satisfies ``repro.browser.renderer.BlockerProtocol``): a verdict per
decoded bitmap, a calibrated virtual cost per classification, and a
memoization cache keyed on the decoded pixels (the async deployment of
§1.1 — results are memoized, "thus speeding up the classification
process", and a previously-seen creative blocks instantly on the next
encounter).

Three hot-path refinements over the naive per-frame loop:

* every entry point accepts a precomputed fingerprint ``key`` so a frame
  is hashed exactly once per encounter (the renderer hashes once and
  threads the key through lookup and classification),
* :meth:`decide_many` batches a whole page's frames: fingerprint all,
  serve memo hits, classify the unique misses in **one** NCHW forward
  through the classifier's compiled fast path, then fill the memo, and
* a blocker holding an :class:`~repro.core.workerpool.InferenceWorkerPool`
  handle shards large memo-miss batches across worker processes
  (scatter/gather of sub-batches; weights shipped once via shared
  memory).  Batches under ``shard_min_batch``, pool failures, and
  pool-less blockers all run the single-process fast path — sharding
  can only change *where* a probability is computed, never its value.

Memoized verdicts are generation-keyed on the classifier's
``weights_version``: a ``load()``/``train()`` (which also covers a
precision change, since precision is fixed per classifier and folded
into its weights fingerprint) clears the memo before the next lookup,
so a cached verdict can never outlive the weights — or the storage
precision — that produced it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.browser.skia import SkImageInfo
from repro.core.classifier import AdClassifier
from repro.core.preprocessing import preprocess_batch
from repro.core.workerpool import InferenceWorkerPool, WorkerPoolError
from repro.utils.hashing import image_fingerprint


@dataclass
class BlockDecision:
    """A verdict with provenance (fresh classification vs memo hit)."""

    is_ad: bool
    probability: float
    from_cache: bool


class PercivalBlocker:
    """PERCIVAL as seen by the rendering engine."""

    def __init__(
        self,
        classifier: AdClassifier,
        calibrated_latency_ms: Optional[float] = None,
        memo_capacity: int = 4096,
        pool: Optional[InferenceWorkerPool] = None,
        shard_min_batch: Optional[int] = None,
    ) -> None:
        self.classifier = classifier
        #: worker pool for sharded batch inference (None = in-process).
        #: Duck-typed: anything with ``closed``/``published_fingerprint``
        #: /``publish``/``predict_proba`` works — tests inject stubs.
        self.pool = pool
        if shard_min_batch is None:
            shard_min_batch = classifier.config.shard_min_batch
        self.shard_min_batch = int(shard_min_batch)
        if calibrated_latency_ms is None:
            calibrated_latency_ms = (
                classifier.config.calibrated_latency_ms
                if classifier.config.calibrated_latency_ms is not None
                else classifier.measured_latency_ms()
            )
        #: virtual cost charged per classification in render simulations
        self.calibrated_latency_ms = float(calibrated_latency_ms)
        self._memo: "OrderedDict[str, BlockDecision]" = OrderedDict()
        self._memo_capacity = memo_capacity
        #: weights generation the memo contents belong to; a mismatch
        #: with the classifier's ``weights_version`` clears the memo
        self._memo_version = classifier.weights_version
        self.classifications = 0
        self.blocks = 0
        #: times a pool failure degraded a batch to in-process compute;
        #: the serving fault harness asserts this fires exactly once per
        #: injected failure
        self.pool_fallbacks = 0

    def _check_memo_generation(self) -> None:
        """Drop memoized verdicts computed by replaced weights.

        An integer compare per entry point — the cost of never serving
        a verdict from weights (or a precision) that no longer exist.
        """
        version = self.classifier.weights_version
        if version != self._memo_version:
            self._memo.clear()
            self._memo_version = version

    # ------------------------------------------------------------------
    # BlockerProtocol
    # ------------------------------------------------------------------
    def classify_bitmap(self, bitmap: np.ndarray, info: SkImageInfo) -> bool:
        """Classify a decoded frame; memoizes and returns the verdict."""
        decision = self.decide(bitmap)
        return decision.is_ad

    def classify_cost_ms(self, info: SkImageInfo) -> float:
        """Virtual cost of one classification.

        The model is fixed-input (frames are scaled to the network size
        before inference), so cost does not scale with the source image;
        the decode step already accounted for size-dependent work.
        """
        return self.calibrated_latency_ms

    def memoized_verdict(
        self, bitmap: np.ndarray, key: Optional[str] = None
    ) -> Optional[bool]:
        cached = self.memoized_decision(bitmap, key=key)
        return None if cached is None else cached.is_ad

    def memoized_decision(
        self, bitmap: Optional[np.ndarray] = None, key: Optional[str] = None
    ) -> Optional[BlockDecision]:
        """Full decision record from the memo, or ``None`` on a miss.

        The serving layer's batch-entry hook: a request whose
        fingerprint hits here resolves *without entering the batch
        queue* — and because every session of a serve loop shares one
        blocker, the memo is shared across sessions (a creative
        classified for one page session answers every other session
        instantly).  Accepts a precomputed ``key`` so the hot path
        hashes each frame exactly once.
        """
        self._check_memo_generation()
        if key is None:
            if bitmap is None:
                raise ValueError("need a bitmap or a precomputed key")
            key = self.fingerprint(bitmap)
        cached = self._memo.get(key)
        if cached is None:
            return None
        self._memo.move_to_end(key)
        return BlockDecision(
            is_ad=cached.is_ad,
            probability=cached.probability,
            from_cache=True,
        )

    # ------------------------------------------------------------------
    # Rich API
    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(bitmap: np.ndarray) -> str:
        """Memo key for a decoded frame.  Callers on the hot path hash
        once and pass the key to ``memoized_verdict``/``decide`` so the
        frame is never fingerprinted twice per encounter."""
        return image_fingerprint(bitmap)

    def decide(
        self, bitmap: np.ndarray, key: Optional[str] = None
    ) -> BlockDecision:
        """Full decision record for a bitmap, using the memo cache."""
        key = key if key is not None else self.fingerprint(bitmap)
        cached = self.memoized_decision(key=key)
        if cached is not None:
            return cached
        probability = self.classifier.ad_probability(bitmap)
        return self._record(key, probability)

    def decide_many(
        self,
        bitmaps: Sequence[np.ndarray],
        keys: Optional[Sequence[str]] = None,
    ) -> List[BlockDecision]:
        """Batched verdicts for a page's worth of decoded frames.

        Fingerprints every frame once, serves memo hits, deduplicates
        the misses by fingerprint, classifies the unique misses in one
        batched forward pass, and fills the memo.  Duplicate frames in
        the input share one classification (and one ``classifications``
        count); their decisions report ``from_cache=False`` because the
        verdict was computed during this call.
        """
        self._check_memo_generation()
        bitmaps = list(bitmaps)
        if keys is None:
            keys = [self.fingerprint(bitmap) for bitmap in bitmaps]
        elif len(keys) != len(bitmaps):
            raise ValueError("keys must align one-to-one with bitmaps")
        decisions: List[Optional[BlockDecision]] = [None] * len(bitmaps)
        misses: "OrderedDict[str, List[int]]" = OrderedDict()
        for index, key in enumerate(keys):
            cached = self._memo.get(key)
            if cached is not None:
                self._memo.move_to_end(key)
                decisions[index] = BlockDecision(
                    is_ad=cached.is_ad,
                    probability=cached.probability,
                    from_cache=True,
                )
            else:
                misses.setdefault(key, []).append(index)
        if misses:
            fresh = [bitmaps[indices[0]] for indices in misses.values()]
            batch = preprocess_batch(fresh, self.classifier.config.input_size)
            probabilities = self._miss_probabilities(batch)
            for key, probability in zip(misses, probabilities):
                decision = self._record(key, float(probability))
                for index in misses[key]:
                    decisions[index] = decision
        return decisions  # type: ignore[return-value]

    def _miss_probabilities(self, batch: np.ndarray) -> np.ndarray:
        """P(ad) for the memo-miss batch: sharded when it pays off.

        Routes through the worker pool when one is attached, open, and
        the batch is at least ``shard_min_batch`` frames.  Weight
        staleness is fingerprint-checked (both sides cache the digest,
        so the check is a string compare) and fixed by re-publishing.
        Any pool failure — worker death mid-batch, failed publication —
        degrades to the in-process fast path, so a dying pool can slow
        a page down but never change or drop a verdict.
        """
        pool = self.pool
        if (
            pool is not None
            and not pool.closed
            and batch.shape[0] >= self.shard_min_batch
        ):
            try:
                fingerprint = self.classifier.weights_fingerprint()
                if pool.published_fingerprint != fingerprint:
                    pool.publish(self.classifier)
                return pool.predict_proba(batch)
            except WorkerPoolError:
                self.pool_fallbacks += 1
        return self.classifier.predict_proba_tensor(batch)

    def _record(self, key: str, probability: float) -> BlockDecision:
        """Memoize a freshly computed probability and update counters."""
        is_ad = probability >= self.classifier.config.ad_threshold
        decision = BlockDecision(
            is_ad=is_ad, probability=probability, from_cache=False
        )
        self._memo[key] = decision
        if len(self._memo) > self._memo_capacity:
            self._memo.popitem(last=False)
        self.classifications += 1
        self.blocks += int(is_ad)
        return decision

    @property
    def memo_size(self) -> int:
        return len(self._memo)

    def clear_memo(self) -> None:
        self._memo.clear()
