"""The render-pipeline blocker.

:class:`PercivalBlocker` is what the browser substrate talks to (it
satisfies ``repro.browser.renderer.BlockerProtocol``): a verdict per
decoded bitmap, a calibrated virtual cost per classification, and a
memoization cache keyed on the decoded pixels (the async deployment of
§1.1 — results are memoized, "thus speeding up the classification
process", and a previously-seen creative blocks instantly on the next
encounter).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.browser.skia import SkImageInfo
from repro.core.classifier import AdClassifier
from repro.utils.hashing import image_fingerprint


@dataclass
class BlockDecision:
    """A verdict with provenance (fresh classification vs memo hit)."""

    is_ad: bool
    probability: float
    from_cache: bool


class PercivalBlocker:
    """PERCIVAL as seen by the rendering engine."""

    def __init__(
        self,
        classifier: AdClassifier,
        calibrated_latency_ms: Optional[float] = None,
        memo_capacity: int = 4096,
    ) -> None:
        self.classifier = classifier
        if calibrated_latency_ms is None:
            calibrated_latency_ms = (
                classifier.config.calibrated_latency_ms
                if classifier.config.calibrated_latency_ms is not None
                else classifier.measured_latency_ms()
            )
        #: virtual cost charged per classification in render simulations
        self.calibrated_latency_ms = float(calibrated_latency_ms)
        self._memo: "OrderedDict[str, BlockDecision]" = OrderedDict()
        self._memo_capacity = memo_capacity
        self.classifications = 0
        self.blocks = 0

    # ------------------------------------------------------------------
    # BlockerProtocol
    # ------------------------------------------------------------------
    def classify_bitmap(self, bitmap: np.ndarray, info: SkImageInfo) -> bool:
        """Classify a decoded frame; memoizes and returns the verdict."""
        decision = self.decide(bitmap)
        return decision.is_ad

    def classify_cost_ms(self, info: SkImageInfo) -> float:
        """Virtual cost of one classification.

        The model is fixed-input (frames are scaled to the network size
        before inference), so cost does not scale with the source image;
        the decode step already accounted for size-dependent work.
        """
        return self.calibrated_latency_ms

    def memoized_verdict(self, bitmap: np.ndarray) -> Optional[bool]:
        key = image_fingerprint(bitmap)
        cached = self._memo.get(key)
        if cached is None:
            return None
        self._memo.move_to_end(key)
        return cached.is_ad

    # ------------------------------------------------------------------
    # Rich API
    # ------------------------------------------------------------------
    def decide(self, bitmap: np.ndarray) -> BlockDecision:
        """Full decision record for a bitmap, using the memo cache."""
        key = image_fingerprint(bitmap)
        cached = self._memo.get(key)
        if cached is not None:
            self._memo.move_to_end(key)
            return BlockDecision(
                is_ad=cached.is_ad,
                probability=cached.probability,
                from_cache=True,
            )
        probability = self.classifier.ad_probability(bitmap)
        is_ad = probability >= self.classifier.config.ad_threshold
        decision = BlockDecision(
            is_ad=is_ad, probability=probability, from_cache=False
        )
        self._memo[key] = decision
        if len(self._memo) > self._memo_capacity:
            self._memo.popitem(last=False)
        self.classifications += 1
        self.blocks += int(is_ad)
        return decision

    @property
    def memo_size(self) -> int:
        return len(self._memo)

    def clear_memo(self) -> None:
        self._memo.clear()
