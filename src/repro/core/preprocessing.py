"""Bitmap preprocessing for the classifier.

The paper's pipeline: "PERCIVAL reads the image, scales it
to 224x224x4 ..., creates a tensor, and passes it through the CNN"
(§3.3).  Preprocessing accepts whatever the decode step hands over —
RGBA or RGB, any spatial size — and produces the fixed-size CHW tensor
the network expects, normalized to zero-centered range.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.synth.drawing import resize_bitmap

#: Normalization: decoded pixels are [0, 1]; center to [-1, 1].
_CENTER = 0.5
_SCALE = 2.0


def preprocess_bitmap(bitmap: np.ndarray, input_size: int) -> np.ndarray:
    """One decoded bitmap (H, W, C) -> network tensor (4, S, S)."""
    if bitmap.ndim != 3:
        raise ValueError("expected (H, W, C) bitmap")
    if bitmap.shape[2] == 3:
        alpha = np.ones(bitmap.shape[:2] + (1,), dtype=bitmap.dtype)
        bitmap = np.concatenate([bitmap, alpha], axis=2)
    elif bitmap.shape[2] != 4:
        raise ValueError(f"unsupported channel count {bitmap.shape[2]}")
    resized = resize_bitmap(bitmap, input_size, input_size)
    tensor = resized.transpose(2, 0, 1).astype(np.float32)
    return (tensor - _CENTER) * _SCALE


def preprocess_batch(
    bitmaps: Sequence[np.ndarray], input_size: int
) -> np.ndarray:
    """Stack preprocessed bitmaps into an NCHW batch."""
    if not bitmaps:
        return np.empty((0, 4, input_size, input_size), dtype=np.float32)
    return np.stack(
        [preprocess_bitmap(b, input_size) for b in bitmaps], axis=0
    )
