"""PERCIVAL's core: the in-browser perceptual ad blocker.

The paper's primary contribution, as a library:

* :class:`AdClassifier` — preprocessing + the compressed CNN; verdicts
  and probabilities per decoded bitmap,
* :class:`PercivalBlocker` — the render-pipeline face of the system:
  implements the hook the browser substrate calls after every image
  decode, with the synchronous (blocking) and asynchronous (memoizing)
  deployments of §1.1,
* :class:`GradCam` — salience maps for the Figure 4 interpretability
  analysis,
* :func:`get_reference_classifier` — the train-once-and-cache entry
  point experiments and examples share.
"""

from repro.core.config import PercivalConfig
from repro.core.preprocessing import preprocess_bitmap, preprocess_batch
from repro.core.classifier import AdClassifier
from repro.core.blocker import PercivalBlocker, BlockDecision
from repro.core.gradcam import GradCam
from repro.core.modelstore import get_reference_classifier, ModelStore
from repro.core.revisit import RevisitMemory

__all__ = [
    "PercivalConfig",
    "preprocess_bitmap",
    "preprocess_batch",
    "AdClassifier",
    "PercivalBlocker",
    "BlockDecision",
    "GradCam",
    "get_reference_classifier",
    "ModelStore",
    "RevisitMemory",
]
