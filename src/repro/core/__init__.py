"""PERCIVAL's core: the in-browser perceptual ad blocker.

The paper's primary contribution, as a library:

* :class:`AdClassifier` — preprocessing + the compressed CNN; verdicts
  and probabilities per decoded bitmap,
* :class:`PercivalBlocker` — the render-pipeline face of the system:
  implements the hook the browser substrate calls after every image
  decode, with the synchronous (blocking) and asynchronous (memoizing)
  deployments of §1.1,
* :class:`GradCam` — salience maps for the Figure 4 interpretability
  analysis,
* :class:`InferenceWorkerPool` — multiprocess inference sharding:
  batched verdicts scatter across worker processes, weights shipped
  once via shared memory (``PERCIVAL_WORKERS`` sizes it, 0 disables),
* :func:`get_reference_classifier` — the train-once-and-cache entry
  point experiments and examples share.
"""

from repro.core.config import (
    PercivalConfig,
    ServeSettings,
    configured_precision,
    configured_serve_lanes,
    configured_serve_settings,
    configured_worker_count,
)
from repro.core.preprocessing import preprocess_bitmap, preprocess_batch
from repro.core.classifier import (
    AdClassifier,
    PlanExport,
    PrecisionRejectedError,
)
from repro.core.workerpool import InferenceWorkerPool, WorkerPoolError
from repro.core.blocker import PercivalBlocker, BlockDecision
from repro.core.gradcam import GradCam
from repro.core.modelstore import (
    ModelStore,
    get_reference_classifier,
    get_worker_pool,
    shutdown_worker_pool,
)
from repro.core.revisit import RevisitMemory

__all__ = [
    "PercivalConfig",
    "ServeSettings",
    "configured_precision",
    "configured_serve_lanes",
    "configured_serve_settings",
    "configured_worker_count",
    "preprocess_bitmap",
    "preprocess_batch",
    "AdClassifier",
    "PlanExport",
    "PrecisionRejectedError",
    "InferenceWorkerPool",
    "WorkerPoolError",
    "PercivalBlocker",
    "BlockDecision",
    "GradCam",
    "get_reference_classifier",
    "get_worker_pool",
    "shutdown_worker_pool",
    "ModelStore",
    "RevisitMemory",
]
