"""Revisit memory: collapsing blocked elements on later visits (§6).

The paper's stated limitation: PERCIVAL classifies one image at a time
inside the raster path, so when it clears an ad frame the surrounding
DOM (caption text, the slot container) is left dangling, and
"the nature of the in-rendering blocking does not allow post-rendering
DOM tree manipulations".  Its proposed fix: "memorize the DOM element
that contains the blocked image and filter it out on consecutive page
visitations ... it is of the benefit of the user to eventually have a
good ad blocking experience, even if this is happening on a second page
visit."

This module implements that fix.  :class:`RevisitMemory` records the
resource URL of every frame the blocker cleared; on later renders the
renderer consults it *before layout* and hides the whole element — the
slot collapses, no dangling whitespace, and the decode/classify cost is
skipped entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class RevisitStats:
    """Bookkeeping for one memory instance."""

    recorded: int = 0
    collapsed: int = 0


class RevisitMemory:
    """URL-keyed record of frames PERCIVAL blocked on past visits.

    Keyed by resource URL (not pixels): the point is to act *before*
    fetch/decode on the next visit, when no pixels exist yet.  An LRU
    bound keeps the store browser-profile sized.
    """

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._blocked: "OrderedDict[str, bool]" = OrderedDict()
        self._capacity = capacity
        self.stats = RevisitStats()

    def record_blocked(self, url: str) -> None:
        """Remember that the frame at ``url`` was classified as an ad."""
        if not url:
            return
        self._blocked[url] = True
        self._blocked.move_to_end(url)
        if len(self._blocked) > self._capacity:
            self._blocked.popitem(last=False)
        self.stats.recorded += 1

    def contains(self, url: str) -> bool:
        """Read-only probe: was this resource blocked on a previous
        visit?  Never touches LRU order or stats — safe for speculative
        callers (the differ's semantic filter probes removed regions
        without committing anything)."""
        return url in self._blocked

    def commit_collapse(self, url: str) -> None:
        """Commit an actual collapse of ``url``: refresh its LRU slot
        (the entry proved useful, keep it resident) and count it."""
        if url not in self._blocked:
            return
        self._blocked.move_to_end(url)
        self.stats.collapsed += 1

    def should_collapse(self, url: str) -> bool:
        """Probe-and-commit: was this resource blocked on a previous
        visit?  A hit counts as a collapse and refreshes LRU order —
        the renderer's pre-layout hook, unchanged.  Callers that only
        want to *ask* should use :meth:`contains`."""
        hit = self.contains(url)
        if hit:
            self.commit_collapse(url)
        return hit

    def __len__(self) -> int:
        return len(self._blocked)

    def clear(self) -> None:
        self._blocked.clear()
