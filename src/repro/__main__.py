"""Command-line interface: ``python -m repro <command>``.

Commands:

``train``      train (or load) the reference model and print its stats
``classify``   classify sample creatives/content with the model
``render``     render synthetic pages with PERCIVAL in the loop
``serve-sim``  replay multi-session traffic through the serving layer
``crawl``      run the crawl/retrain flywheel
``experiments``  run every experiment driver and print its table
"""

from __future__ import annotations

import argparse
import sys


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core import get_reference_classifier

    classifier = get_reference_classifier(verbose=True)
    print(f"model size: {classifier.model_size_mb:.3f} MB")
    print(f"latency:    {classifier.measured_latency_ms():.2f} ms/image")
    return 0


def _resolved_config(args: argparse.Namespace):
    """Config for subcommands with a ``--precision`` flag: the flag
    wins, otherwise the ``PERCIVAL_PRECISION`` environment knob applies
    (``None`` defers to the library default)."""
    from repro.core import PercivalConfig

    if getattr(args, "precision", None) is None:
        return None
    return PercivalConfig(precision=args.precision)


def _resolved_cascade(args: argparse.Namespace, config):
    """``--cascade`` flag -> ServeLoop-style ``cascade=`` argument: a
    router when on, ``False`` when off, ``None`` (environment knob)
    when the flag was not given."""
    from repro.cascade import CascadeRouter
    from repro.core.config import configured_cascade_enabled

    flag = getattr(args, "cascade", None)
    if flag is None:
        enabled = configured_cascade_enabled(config.cascade_enabled)
    else:
        enabled = flag == "on"
    if not enabled:
        return False
    return CascadeRouter.with_default_filterlist(
        confidence=config.cascade_confidence
    )


def _resolved_differ(args: argparse.Namespace, config):
    """``--diff`` flag -> ServeLoop-style ``differ=`` argument: a
    differ when on, ``False`` when off, ``None`` (environment knob)
    when the flag was not given."""
    from repro.core.config import (
        configured_diff_capacity,
        configured_diff_enabled,
    )
    from repro.diff import FrameDiffer

    flag = getattr(args, "diff", None)
    if flag is None:
        enabled = configured_diff_enabled(config.diff_enabled)
    else:
        enabled = flag == "on"
    if not enabled:
        return False
    return FrameDiffer(capacity=configured_diff_capacity())


def _resolved_chaos(args: argparse.Namespace):
    """``--chaos`` flag -> ServeLoop-style ``chaos=`` argument: a
    seeded :class:`ChaosSchedule` when a seed was given, ``False`` when
    ``off``, ``None`` (``PERCIVAL_CHAOS`` environment knob) when the
    flag was not given."""
    from repro.resilience import ChaosSchedule

    flag = getattr(args, "chaos", None)
    if flag is None:
        return None
    if flag == "off":
        return False
    return ChaosSchedule.seeded(int(flag))


def _print_resilience(plane) -> None:
    """CLI summary of a run's resilience plane: breaker/ladder state
    plus every ladder transition with its reason."""
    if plane is None:
        return
    print(f"resilience: {plane.describe()}")
    controller = plane.controller
    for t in controller.transitions:
        print(f"  ladder {t.direction}: {t.from_level} -> {t.to_level}"
              f" at {t.at_ms:.1f}ms ({t.reason})")
    dwell = ", ".join(
        f"{name}={ms:.1f}ms"
        for name, ms in controller.dwell_ms.items()
        if ms > 0.0
    )
    if dwell:
        print(f"  brownout dwell: {dwell}")


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.cascade import CascadeHit, FrameProvenance
    from repro.core import PercivalBlocker, get_reference_classifier
    from repro.synth.adgen import AdSpec, generate_ad
    from repro.synth.contentgen import generate_content
    from repro.synth.webgen import AD_NETWORKS
    from repro.utils.rng import spawn_rng

    classifier = get_reference_classifier(_resolved_config(args))
    print(f"precision: {classifier.effective_precision}")
    blocker = PercivalBlocker(classifier)
    cascade = _resolved_cascade(args, classifier.config)
    router = cascade if cascade is not False else None
    rng = spawn_rng(args.seed, "cli-classify")
    for index in range(args.count):
        if index % 2 == 0:
            bitmap = generate_ad(rng, AdSpec())
            truth = "ad"
            network = AD_NETWORKS[index % len(AD_NETWORKS)]
            url = (f"https://{network.domain}{network.path_prefix}"
                   f"/c{index:05d}.png")
        else:
            bitmap = generate_content(rng)
            truth = "content"
            url = f"https://cdn.demo.example/img/{index:05d}.jpg"
        tier = "cnn"
        audit = None
        decision = None
        if router is not None:
            provenance = FrameProvenance(
                url=url,
                page_domain="demo.example",
                width=int(bitmap.shape[1]),
                height=int(bitmap.shape[0]),
            )
            routed = router.route(provenance)
            if isinstance(routed, CascadeHit):
                decision = routed.decision
                tier = f"rule:{routed.tier}"
            else:
                audit = routed
        if decision is None:
            decision = blocker.decide(bitmap)
            if router is not None:
                if audit is not None:
                    router.reconcile(audit, decision.is_ad)
                else:
                    router.absorb(provenance, decision)
        verdict = "BLOCK" if decision.is_ad else "render"
        print(f"[{truth:7s}] P(ad)={decision.probability:.3f} -> "
              f"{verdict} ({tier})")
    if router is not None:
        stats = router.stats
        print(
            f"cascade: {stats.rule_hits} rule hits "
            f"({stats.micro_hits} micro / {stats.list_hits} list), "
            f"{stats.audits} audits, {stats.compiled} compiled, "
            f"{stats.invalidations} invalidated, {stats.misses} misses"
        )
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro import BRAVE, CHROMIUM, PercivalBlocker, Renderer
    from repro import SyntheticWeb, WebConfig, get_reference_classifier
    from repro.browser.network import MockNetwork
    from repro.synth.webgen import url_registry

    web = SyntheticWeb(WebConfig(seed=args.seed, num_sites=args.pages))
    pages = [web.build_page(s) for s in web.top_sites(args.pages)]
    renderer = Renderer(
        BRAVE if args.brave else CHROMIUM,
        MockNetwork(url_registry(pages)),
    )
    blocker = PercivalBlocker(
        get_reference_classifier(_resolved_config(args)),
        calibrated_latency_ms=11.0,
    )
    for page in pages:
        metrics = renderer.render(page, percival=blocker, mode=args.mode)
        print(f"{page.url}: {metrics.render_time_ms:.0f} ms, "
              f"blocked {metrics.images_blocked_by_percival} by CNN, "
              f"{metrics.images_blocked_by_list} by lists")
    return 0


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    """Deterministic serving simulation: multi-session traffic through
    the micro-batching layer (or, with ``--fleet``, a full diurnal-day
    replay under the SLO autoscaler), with the latency report."""
    from repro.core import (
        PercivalBlocker,
        ServeSettings,
        get_reference_classifier,
        get_worker_pool,
        shutdown_worker_pool,
    )
    from repro.serve import (
        FleetSimulator,
        FleetSpec,
        ServeLoop,
        SLOPolicy,
        TrafficSpec,
        synthesize_traffic,
    )

    classifier = get_reference_classifier(_resolved_config(args))
    cascade = _resolved_cascade(args, classifier.config)
    differ = _resolved_differ(args, classifier.config)
    chaos = _resolved_chaos(args)
    pool = get_worker_pool(classifier, num_workers=args.workers)
    settings = ServeSettings(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_depth=args.max_depth,
        lanes=args.lanes,
        aging_ms=args.aging_ms,
    )
    blocker = PercivalBlocker(
        classifier,
        calibrated_latency_ms=11.0,
        pool=pool,
        # flushes are capped at max_batch, so the shard threshold must
        # fit under it or an attached pool would never see a batch
        shard_min_batch=min(
            classifier.config.shard_min_batch, settings.max_batch
        ),
    )
    try:
        if args.fleet:
            simulator = FleetSimulator(
                blocker,
                settings,
                policy=SLOPolicy(p99_target_ms=args.p99_target_ms),
                cascade=cascade,
                chaos=chaos,
            )
            if simulator.chaos is not None:
                print(simulator.chaos.describe())
            fleet_report = simulator.run(FleetSpec(
                epochs=args.epochs,
                base_sessions=max(args.sessions // 4, 1),
                peak_sessions=args.sessions,
                frames_per_session=args.frames,
                seed=args.seed,
            ))
            print(fleet_report.to_table())
            _print_resilience(simulator.resilience)
            if not fleet_report.conserved():
                print("CONSERVATION VIOLATED: requests lost or duplicated")
                return 1
            return 0
        events = synthesize_traffic(TrafficSpec(
            sessions=args.sessions,
            frames_per_session=args.frames,
            seed=args.seed,
            provenance=cascade is not False or differ is not False,
            revisits=args.revisits,
        ))
        loop = ServeLoop(
            blocker, settings, cascade=cascade, differ=differ, chaos=chaos
        )
        if loop.chaos is not None:
            print(loop.chaos.describe())
        report = loop.run(events)
    finally:
        shutdown_worker_pool()
    print(report.stats.to_table(
        f"serve-sim: {args.sessions} sessions x {args.frames} frames "
        f"(max_batch={settings.max_batch}, "
        f"max_wait={settings.max_wait_ms}ms, "
        f"max_depth={settings.max_depth}, "
        f"lanes={report.stats.lanes})"
    ))
    print(f"virtual makespan: {report.makespan_ms:.1f} ms")
    _print_resilience(report.stats.resilience)
    if not report.stats.conserved():
        print("CONSERVATION VIOLATED: requests lost or duplicated")
        return 1
    return 0


def _cmd_crawl(args: argparse.Namespace) -> int:
    from repro.core.config import PercivalConfig
    from repro.crawl.phases import run_crawl_phases

    result = run_crawl_phases(
        num_phases=args.phases,
        sites_per_phase=5,
        pages_per_site=2,
        epochs_per_phase=8,
        seed=args.seed,
        config=PercivalConfig(
            input_size=16, epochs=8,
            num_train_ads=100, num_train_nonads=100,
        ),
    )
    for phase in result.phases:
        print(f"phase {phase.phase}: corpus={phase.corpus_size} "
              f"holdout_acc={phase.holdout_accuracy:.3f}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.core import get_reference_classifier
    from repro.eval.experiments.easylist_replication import (
        run_easylist_replication_experiment,
    )
    from repro.eval.experiments.external_dataset import (
        run_external_dataset_experiment,
    )
    from repro.eval.experiments.facebook import run_facebook_experiment
    from repro.eval.experiments.image_search import (
        run_image_search_experiment,
    )
    from repro.eval.experiments.languages import run_languages_experiment
    from repro.eval.experiments.render_performance import (
        run_render_performance_experiment,
    )

    classifier = get_reference_classifier(verbose=True)
    drivers = [
        lambda: run_easylist_replication_experiment(
            classifier=classifier, num_sites=30),
        lambda: run_external_dataset_experiment(
            classifier=classifier, sample_size=600),
        lambda: run_facebook_experiment(classifier=classifier, days=10),
        lambda: run_image_search_experiment(
            classifier=classifier, per_query=50),
        lambda: run_languages_experiment(
            classifier=classifier, sites_per_language=6),
        lambda: run_render_performance_experiment(
            classifier=classifier, num_pages=40),
    ]
    for driver in drivers:
        print(driver().to_table())
        print()
    return 0


def main(argv: list | None = None) -> int:
    from repro.core.config import configured_serve_settings

    # flag defaults resolve through the environment, so an unset flag
    # honors PERCIVAL_SERVE_* exactly as the help text promises
    serve_defaults = configured_serve_settings()

    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("train", help="train/load the reference model")

    precision_kwargs = dict(
        choices=("fp32", "fp16", "int8"), default=None,
        help="weight storage precision (same knob as "
             "PERCIVAL_PRECISION; default fp32)",
    )

    cascade_kwargs = dict(
        choices=("on", "off"), default=None,
        help="confidence router in front of the CNN (same knob as "
             "PERCIVAL_CASCADE; default off)",
    )

    diff_kwargs = dict(
        choices=("on", "off"), default=None,
        help="incremental re-classification via session snapshots "
             "(same knob as PERCIVAL_DIFF; default off)",
    )

    classify = sub.add_parser("classify", help="classify sample images")
    classify.add_argument("--count", type=int, default=8)
    classify.add_argument("--seed", type=int, default=0)
    classify.add_argument("--precision", **precision_kwargs)
    classify.add_argument("--cascade", **cascade_kwargs)

    render = sub.add_parser("render", help="render pages with PERCIVAL")
    render.add_argument("--pages", type=int, default=5)
    render.add_argument("--seed", type=int, default=0)
    render.add_argument("--brave", action="store_true")
    render.add_argument("--mode", choices=("sync", "async"),
                        default="sync")
    render.add_argument("--precision", **precision_kwargs)

    serve_sim = sub.add_parser(
        "serve-sim",
        help="replay multi-session traffic through the serving layer",
    )
    serve_sim.add_argument("--sessions", type=int, default=8)
    serve_sim.add_argument("--frames", type=int, default=12,
                           help="frames per session")
    serve_sim.add_argument("--seed", type=int, default=0)
    serve_sim.add_argument(
        "--max-batch", type=int,
        default=serve_defaults.max_batch,
        help="flush threshold (PERCIVAL_SERVE_MAX_BATCH)",
    )
    serve_sim.add_argument(
        "--max-wait-ms", type=float,
        default=serve_defaults.max_wait_ms,
        help="oldest-request deadline (PERCIVAL_SERVE_MAX_WAIT_MS)",
    )
    serve_sim.add_argument(
        "--max-depth", type=int,
        default=serve_defaults.max_depth,
        help="admission bound (PERCIVAL_SERVE_MAX_DEPTH)",
    )
    serve_sim.add_argument(
        "--workers", type=int, default=None,
        help="worker pool size (same knob as PERCIVAL_WORKERS)",
    )
    serve_sim.add_argument(
        "--lanes", type=int, default=None,
        help="virtual compute lanes; default auto: PERCIVAL_SERVE_LANES,"
             " else the worker pool's capacity",
    )
    serve_sim.add_argument(
        "--aging-ms", type=float,
        default=serve_defaults.aging_ms,
        help="priority aging interval (PERCIVAL_SERVE_AGING_MS)",
    )
    serve_sim.add_argument(
        "--fleet", action="store_true",
        help="replay a diurnal traffic day under the SLO autoscaler "
             "instead of a single flat trace",
    )
    serve_sim.add_argument(
        "--epochs", type=int, default=8,
        help="fleet mode: autoscaler observe/act steps per replay",
    )
    serve_sim.add_argument(
        "--p99-target-ms", type=float, default=40.0,
        help="fleet mode: total-latency SLO the autoscaler defends",
    )
    serve_sim.add_argument(
        "--revisits", type=int, default=0,
        help="revisit epochs appended to the trace: each session "
             "re-emits its page with a small churned delta — the "
             "workload the --diff tier answers in O(delta)",
    )
    serve_sim.add_argument(
        "--chaos", metavar="SEED|off", default=None,
        help="replay a seeded fault-injection schedule through the "
             "serve stack (worker death, tier outages, latency spikes;"
             " implies circuit breakers + the degradation ladder); "
             "'off' pins chaos off regardless of PERCIVAL_CHAOS",
    )
    serve_sim.add_argument("--precision", **precision_kwargs)
    serve_sim.add_argument("--cascade", **cascade_kwargs)
    serve_sim.add_argument("--diff", **diff_kwargs)

    crawl = sub.add_parser("crawl", help="run the crawl/retrain loop")
    crawl.add_argument("--phases", type=int, default=3)
    crawl.add_argument("--seed", type=int, default=0)

    sub.add_parser("experiments", help="run the main experiment suite")

    args = parser.parse_args(argv)
    handlers = {
        "train": _cmd_train,
        "classify": _cmd_classify,
        "render": _cmd_render,
        "serve-sim": _cmd_serve_sim,
        "crawl": _cmd_crawl,
        "experiments": _cmd_experiments,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
