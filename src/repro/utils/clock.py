"""Virtual clock for the simulated browser pipeline.

The paper measures render time (``domComplete - domLoading``) on real
hardware.  Our Blink-shaped substrate instead accounts simulated time:
each pipeline stage charges a cost to the clock, and parallel raster
threads are modelled by per-thread lanes whose completion is the max over
lanes.  Classifier cost is *calibrated* from the measured numpy inference
latency, so the one genuinely real cost in the experiment stays real.

Using virtual time keeps the render benchmarks deterministic and fast
while preserving the structure of the overhead computation (per-image
classification serialized on each raster worker's critical path).
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically advancing simulated clock (milliseconds)."""

    def __init__(self, start_ms: float = 0.0) -> None:
        if start_ms < 0:
            raise ValueError("clock cannot start in negative time")
        self._now_ms = float(start_ms)

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_ms

    def advance(self, delta_ms: float) -> float:
        """Advance the clock by ``delta_ms`` and return the new time."""
        if delta_ms < 0:
            raise ValueError("cannot advance clock backwards")
        self._now_ms += delta_ms
        return self._now_ms

    def advance_to(self, timestamp_ms: float) -> float:
        """Move the clock forward to ``timestamp_ms`` if it is later."""
        if timestamp_ms > self._now_ms:
            self._now_ms = timestamp_ms
        return self._now_ms


class WorkerLanes:
    """Simulated pool of parallel workers (e.g. Blink raster threads).

    Tasks are assigned to the least-loaded lane, modelling a work-stealing
    pool at the level of aggregate completion times.  ``makespan`` is the
    simulated wall-clock the pool needs to finish everything assigned.
    """

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker lane")
        self._lanes = [0.0] * num_workers

    @property
    def num_workers(self) -> int:
        return len(self._lanes)

    def submit(self, cost_ms: float) -> int:
        """Assign a task to the least-loaded lane; returns the lane index."""
        if cost_ms < 0:
            raise ValueError("task cost must be non-negative")
        lane = min(range(len(self._lanes)), key=self._lanes.__getitem__)
        self._lanes[lane] += cost_ms
        return lane

    @property
    def makespan_ms(self) -> float:
        """Simulated time until the last lane drains."""
        return max(self._lanes)

    @property
    def total_work_ms(self) -> float:
        """Sum of work across lanes (CPU time, not wall time)."""
        return sum(self._lanes)
