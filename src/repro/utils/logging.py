"""Minimal logging setup shared by examples and experiment drivers."""

from __future__ import annotations

import logging


def get_logger(name: str, level: int = logging.INFO) -> logging.Logger:
    """Return a configured logger with a single stream handler.

    Repeated calls with the same name return the same logger without
    stacking handlers.
    """
    logger = logging.getLogger(name)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
        logger.setLevel(level)
        logger.propagate = False
    return logger
