"""Stable hashing helpers.

Used for memoization keys (the async deployment of PERCIVAL memoizes
classification verdicts per image) and for model-store cache keys.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

import numpy as np


def stable_hash(value: Any) -> str:
    """Hash an arbitrary JSON-serializable value to a stable hex digest.

    Dict keys are sorted so logically-equal configurations hash equally.
    """
    payload = json.dumps(value, sort_keys=True, default=_coerce)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _coerce(value: Any) -> Any:
    """JSON fallback for numpy scalars and arrays."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"cannot hash value of type {type(value)!r}")


def image_fingerprint(pixels: np.ndarray) -> str:
    """Fingerprint a decoded bitmap for memoization.

    The digest covers shape, dtype and raw bytes, so two images with the
    same pixels but different shapes do not collide.  This mirrors how an
    in-browser memo cache would key on the decoded buffer, not the URL —
    the same creative served from two URLs still hits the cache.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(str(pixels.shape).encode())
    hasher.update(str(pixels.dtype).encode())
    hasher.update(np.ascontiguousarray(pixels).tobytes())
    return hasher.hexdigest()
