"""Wall-clock measurement helpers.

Only the classifier's inference latency is measured on real hardware
(everything else in the render experiments runs on the virtual clock);
these helpers keep that measurement honest — warmup passes excluded,
median over repeats reported.
"""

from __future__ import annotations

import time
from typing import Callable, List


class Timer:
    """Context manager measuring elapsed wall time in milliseconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed_ms >= 0
    True
    """

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.elapsed_ms = 0.0
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_ms = (time.perf_counter() - self._start) * 1000.0


def measure_latency(
    fn: Callable[[], object],
    repeats: int = 5,
    warmup: int = 1,
) -> float:
    """Return the median wall-clock latency of ``fn`` in milliseconds.

    ``warmup`` calls run first and are discarded, absorbing one-time
    costs (allocation, caches) exactly as a steady-state in-browser model
    would have absorbed them.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        with Timer() as timer:
            fn()
        samples.append(timer.elapsed_ms)
    samples.sort()
    mid = len(samples) // 2
    if len(samples) % 2:
        return samples[mid]
    return 0.5 * (samples[mid - 1] + samples[mid])
