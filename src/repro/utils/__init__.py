"""Shared utilities: seeded RNG management, hashing, virtual clock, logging.

These helpers are deliberately tiny and dependency-free so every other
subpackage (``repro.nn``, ``repro.browser``, ``repro.synth``, ...) can rely
on them without import cycles.
"""

from repro.utils.rng import derive, spawn_rng
from repro.utils.hashing import stable_hash, image_fingerprint
from repro.utils.clock import VirtualClock
from repro.utils.timing import Timer, measure_latency

__all__ = [
    "derive",
    "spawn_rng",
    "stable_hash",
    "image_fingerprint",
    "VirtualClock",
    "Timer",
    "measure_latency",
]
