"""Deterministic random-number management.

Every stochastic component of the reproduction accepts an explicit seed.
To keep experiments reproducible while still giving each sub-component an
independent stream, seeds are *derived* from a parent seed plus a string
label, using a stable hash.  Deriving rather than sharing one generator
means adding a new consumer never perturbs the stream seen by existing
consumers — the property that keeps regenerated tables stable as the code
evolves.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK_32 = 0xFFFFFFFF


def derive(seed: int, label: str) -> int:
    """Derive a child seed from ``seed`` and a string ``label``.

    The derivation is a SHA-256 over the parent seed and label, truncated
    to 32 bits, so it is stable across Python processes and versions
    (unlike ``hash()``, which is salted).

    >>> derive(0, "crawler") == derive(0, "crawler")
    True
    >>> derive(0, "crawler") != derive(0, "trainer")
    True
    """
    payload = f"{seed}:{label}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:4], "big") & _MASK_32


def spawn_rng(seed: int, label: str = "") -> np.random.Generator:
    """Create an independent :class:`numpy.random.Generator`.

    ``label`` namespaces the stream; two different labels under the same
    seed produce statistically independent generators.
    """
    if label:
        seed = derive(seed, label)
    return np.random.default_rng(seed)
