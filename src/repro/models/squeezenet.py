"""Original SqueezeNet architecture (v1.0 / v1.1).

Serves two roles in the reproduction:

* the baseline the paper prunes (Figure 3, left column), for the model
  size / latency comparison, and
* the source of "ImageNet-pretrained" stem weights used to initialize
  the PERCIVAL fork (§4.3) — here pretrained on a synthetic proxy task,
  see :func:`repro.models.zoo.pretrain_stem`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn import (
    Conv2d,
    Dropout,
    FireModule,
    GlobalAvgPool2d,
    Layer,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.utils.rng import spawn_rng

#: (squeeze_channels, expand_channels) per fire module, SqueezeNet v1.1.
_V11_FIRES = [
    (16, 128), (16, 128),
    (32, 256), (32, 256),
    (48, 384), (48, 384), (64, 512), (64, 512),
]


class SqueezeNet(Sequential):
    """SqueezeNet v1.1 classifier head over ``num_classes`` outputs."""

    def __init__(
        self,
        num_classes: int = 1000,
        in_channels: int = 3,
        seed: int = 0,
        stem_stride: int = 2,
        dropout: float = 0.5,
    ) -> None:
        rng = spawn_rng(seed, "squeezenet")
        layers = _build_v11_layers(
            num_classes, in_channels, rng, stem_stride, dropout
        )
        super().__init__(layers, name="squeezenet_v1.1")
        self.num_classes = num_classes
        self.in_channels = in_channels


def _build_v11_layers(
    num_classes: int,
    in_channels: int,
    rng: np.random.Generator,
    stem_stride: int,
    dropout: float,
) -> List[Layer]:
    """v1.1 layer stack: 3x3 stem, pools after stem/fire2/fire4."""
    layers: List[Layer] = [
        Conv2d(in_channels, 64, kernel_size=3, stride=stem_stride,
               padding=1, rng=rng, name="conv1"),
        ReLU(),
        MaxPool2d(kernel_size=3, stride=2),
    ]
    channels = 64
    for index, (squeeze, expand) in enumerate(_V11_FIRES):
        layers.append(
            FireModule(channels, squeeze, expand, rng=rng,
                       name=f"fire{index + 2}")
        )
        channels = expand
        # v1.1 pools after fire3 (idx 1) and fire5 (idx 3).
        if index in (1, 3):
            layers.append(MaxPool2d(kernel_size=3, stride=2))
    layers.extend([
        Dropout(dropout, seed=int(rng.integers(2**31))),
        Conv2d(channels, num_classes, kernel_size=1, rng=rng,
               name="conv10"),
        ReLU(),
        GlobalAvgPool2d(),
    ])
    return layers


def build_squeezenet(
    num_classes: int = 1000,
    in_channels: int = 3,
    seed: int = 0,
    stem_stride: Optional[int] = None,
    input_size: int = 224,
) -> SqueezeNet:
    """Build SqueezeNet, choosing the stem stride from the input size.

    Full-resolution inputs (>= 96 px) use the paper-standard stride-2
    stem; small synthetic inputs keep stride 1 so enough spatial extent
    survives the pooling stack.
    """
    if stem_stride is None:
        stem_stride = 2 if input_size >= 96 else 1
    return SqueezeNet(
        num_classes=num_classes,
        in_channels=in_channels,
        seed=seed,
        stem_stride=stem_stride,
    )
