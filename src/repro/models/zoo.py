"""Model accounting and the synthetic-pretraining transfer path.

The paper reports model *size* (1.9 MB compressed fork vs ~4.8 MB stock
SqueezeNet vs >200 MB YOLO-class detectors — a 74x reduction relative to
Sentinel-class models) and initializes the fork's stem from an
ImageNet-pretrained SqueezeNet.  ImageNet is unavailable offline, so
:func:`pretrain_stem` trains the stem on a synthetic texture/shape proxy
task and :func:`transfer_stem_weights` copies the aligned prefix across,
preserving the transfer-learning code path and its effect (faster
convergence from reused early filters).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import Sequential, TrainConfig, Trainer
from repro.nn.layers import Conv2d
from repro.nn.fire import FireModule
from repro.utils.rng import spawn_rng

#: Reference size of Sentinel-class (YOLO-based) models, bytes (~140 MB);
#: the paper quotes ">200 MB" for YOLO and "smaller by factor of 74".
SENTINEL_MODEL_BYTES = 140 * 1024 * 1024


@dataclass
class ModelInfo:
    """Size/shape summary for the comparison tables."""

    name: str
    num_parameters: int
    size_bytes: int
    size_mb: float
    num_layers: int

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.num_parameters:,} params, "
            f"{self.size_mb:.2f} MB, {self.num_layers} layers"
        )


def model_size_bytes(network: Sequential) -> int:
    """Raw float payload of all parameters (what ships to the browser)."""
    return sum(p.nbytes for p in network.parameters())


def model_size_mb(network: Sequential) -> float:
    return model_size_bytes(network) / (1024.0 * 1024.0)


def describe_model(network: Sequential, name: str = "") -> ModelInfo:
    return ModelInfo(
        name=name or network.name,
        num_parameters=sum(p.size for p in network.parameters()),
        size_bytes=model_size_bytes(network),
        size_mb=model_size_mb(network),
        num_layers=len(network),
    )


def pretrain_stem(
    network: Sequential,
    seed: int = 0,
    samples: int = 96,
    image_size: int = 16,
    epochs: int = 4,
) -> float:
    """Pretrain a network on a synthetic texture-vs-shape proxy task.

    Stands in for ImageNet pretraining: the task (distinguish smooth
    gradients from high-frequency noise patches) forces the early
    convolutions to learn edge/texture filters, which is the portion of
    ImageNet features the paper's transfer reuses.  Returns the final
    training accuracy.
    """
    rng = spawn_rng(seed, "stem-pretrain")
    in_channels = _first_conv(network).in_channels
    images = np.empty(
        (samples, in_channels, image_size, image_size), dtype=np.float32
    )
    labels = np.empty(samples, dtype=np.int64)
    yy, xx = np.mgrid[:image_size, :image_size]
    for i in range(samples):
        brightness = rng.uniform(0.5, 1.0)
        if i % 2 == 0:
            # smooth ramp in a random direction: zero high-frequency mass
            ramp = (xx if rng.random() < 0.5 else yy) / (image_size - 1)
            images[i] = (ramp * brightness).astype(np.float32)
            labels[i] = 0
        else:
            # checkerboard: maximal edge content at a random phase
            phase = int(rng.integers(2))
            board = (((xx // 2) + (yy // 2) + phase) % 2).astype(
                np.float32
            )
            images[i] = board * brightness
            labels[i] = 1
    config = TrainConfig(epochs=epochs, batch_size=8, seed=seed, lr=0.02)
    trainer = Trainer(network, config)
    report = trainer.fit(images, labels)
    return report.final_train_accuracy


def transfer_stem_weights(
    source: Sequential,
    target: Sequential,
    num_blocks: int = 5,
) -> int:
    """Copy the first ``num_blocks`` parameterized blocks source→target.

    Mirrors §4.3: "initialized the blocks Convolution 1, Fire1..Fire4
    using the weights from a SqueezeNet model pre-trained [on] ImageNet".
    Blocks are the Conv2d / FireModule layers in order; a block transfers
    only if every constituent parameter shape matches.  Returns how many
    blocks were copied.
    """
    source_blocks = _parameter_blocks(source)
    target_blocks = _parameter_blocks(target)
    copied = 0
    for src, dst in zip(
        source_blocks[:num_blocks], target_blocks[:num_blocks]
    ):
        src_params = src.parameters()
        dst_params = dst.parameters()
        if len(src_params) != len(dst_params):
            continue
        if any(
            s.data.shape != d.data.shape
            for s, d in zip(src_params, dst_params)
        ):
            continue
        for s, d in zip(src_params, dst_params):
            d.data[...] = s.data
        copied += 1
    return copied


def _parameter_blocks(network: Sequential):
    return [
        layer for layer in network.layers
        if isinstance(layer, (Conv2d, FireModule))
    ]


def _first_conv(network: Sequential) -> Conv2d:
    for layer in network.layers:
        if isinstance(layer, Conv2d):
            return layer
        if isinstance(layer, FireModule):
            return layer.squeeze
    raise ValueError("network has no convolution layer")
