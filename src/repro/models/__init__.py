"""Model zoo: SqueezeNet and the PERCIVAL compressed fork.

The paper starts from SqueezeNet (Iandola et al. 2016) and prunes it to a
sub-2 MB ad/non-ad classifier: one stem convolution, six Fire modules, a
final 1x1 classifier convolution, global average pooling, and softmax —
with max-pooling after the stem and after every two Fire modules to
down-sample early and cut per-image classification time (Figure 3).
"""

from repro.models.squeezenet import SqueezeNet, build_squeezenet
from repro.models.percivalnet import PercivalNet, build_percival_net
from repro.models.zoo import (
    ModelInfo,
    describe_model,
    model_size_bytes,
    model_size_mb,
    pretrain_stem,
    transfer_stem_weights,
)

__all__ = [
    "SqueezeNet",
    "build_squeezenet",
    "PercivalNet",
    "build_percival_net",
    "ModelInfo",
    "describe_model",
    "model_size_bytes",
    "model_size_mb",
    "pretrain_stem",
    "transfer_stem_weights",
]
