"""PERCIVAL's compressed SqueezeNet fork (Figure 3, right column).

Differences from stock SqueezeNet, as described in the paper:

* only **six** Fire modules instead of eight (extraneous blocks removed),
* feature maps are **down-sampled at regular intervals**: max-pooling
  after the stem convolution and after *every two* Fire modules,
* the classifier head is a 1x1 convolution to 2 classes (ad / not-ad)
  followed by global average pooling and softmax,
* default input is 224x224x4 (the decoded bitmap is RGBA in Blink).

The resulting parameter count is ~337k (~1.3 MB in float32), matching
the paper's "< 2 MB" claim, versus ~1.2M+ for full SqueezeNet-1000.
Global average pooling makes the network input-size agnostic, which the
reduced-scale experiments rely on.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.nn import (
    Conv2d,
    FireModule,
    GlobalAvgPool2d,
    Layer,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.utils.rng import spawn_rng

#: (squeeze_channels, expand_channels) for the six retained fire modules.
PERCIVAL_FIRES: List[Tuple[int, int]] = [
    (16, 128), (16, 128),
    (32, 256), (32, 256),
    (48, 384), (48, 384),
]

#: Number of classes: ad vs non-ad.
NUM_CLASSES = 2

#: Label conventions used throughout the repo.
LABEL_NONAD = 0
LABEL_AD = 1


class PercivalNet(Sequential):
    """The paper's in-browser ad/non-ad classifier.

    Layer indices of the stem conv and each fire module are recorded in
    ``feature_indices`` so Grad-CAM can capture intermediate activations
    ("Layer 5" / "Layer 9" in Figure 4 refer to positions in this list).
    """

    def __init__(
        self,
        in_channels: int = 4,
        seed: int = 0,
        stem_stride: int = 2,
        width: float = 1.0,
    ) -> None:
        if width <= 0:
            raise ValueError("width multiplier must be positive")
        rng = spawn_rng(seed, "percivalnet")
        layers, feature_indices = _build_layers(
            in_channels, rng, stem_stride, width
        )
        super().__init__(layers, name="percival_net")
        self.in_channels = in_channels
        self.num_classes = NUM_CLASSES
        self.width = width
        #: indices (into ``self.layers``) of feature-producing blocks.
        self.feature_indices = feature_indices

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls, seed: int = 0) -> "PercivalNet":
        """Full-size network exactly as in Figure 3 (224x224x4 input)."""
        return cls(in_channels=4, seed=seed, stem_stride=2, width=1.0)

    @classmethod
    def small(cls, seed: int = 0, width: float = 0.25) -> "PercivalNet":
        """Reduced-width variant for the laptop-scale experiments.

        Same depth, same pooling schedule, same head; only the channel
        counts shrink.  Stride-1 stem keeps small inputs (32-64 px)
        spatially viable through the four pools.
        """
        return cls(in_channels=4, seed=seed, stem_stride=1, width=width)


def _scale(channels: int, width: float) -> int:
    """Scale a channel count, keeping it even (expand halves must split)."""
    scaled = max(int(round(channels * width)), 2)
    return scaled + (scaled % 2)


def _build_layers(
    in_channels: int,
    rng: np.random.Generator,
    stem_stride: int,
    width: float,
) -> Tuple[List[Layer], List[int]]:
    stem_channels = _scale(64, width)
    layers: List[Layer] = [
        Conv2d(in_channels, stem_channels, kernel_size=3,
               stride=stem_stride, padding=1, rng=rng, name="conv1"),
        ReLU(),
        MaxPool2d(kernel_size=2, stride=2),
    ]
    feature_indices = [0]
    channels = stem_channels
    for index, (squeeze, expand) in enumerate(PERCIVAL_FIRES):
        squeeze_c = max(int(round(squeeze * width)), 2)
        expand_c = _scale(expand, width)
        layers.append(
            FireModule(channels, squeeze_c, expand_c, rng=rng,
                       name=f"fire{index + 1}")
        )
        feature_indices.append(len(layers) - 1)
        channels = expand_c
        if index % 2 == 1:  # pool after every two fire modules
            layers.append(MaxPool2d(kernel_size=2, stride=2))
    layers.extend([
        Conv2d(channels, NUM_CLASSES, kernel_size=1, rng=rng,
               name="conv_final"),
        GlobalAvgPool2d(),
    ])
    return layers, feature_indices


def build_percival_net(
    input_size: int = 224,
    in_channels: int = 4,
    seed: int = 0,
    width: float = 1.0,
) -> PercivalNet:
    """Build a PercivalNet sized for ``input_size`` inputs.

    Inputs of 96 px and above use the paper's stride-2 stem; smaller
    synthetic inputs use stride 1 (see :meth:`PercivalNet.small`).
    """
    stem_stride = 2 if input_size >= 96 else 1
    return PercivalNet(
        in_channels=in_channels,
        seed=seed,
        stem_stride=stem_stride,
        width=width,
    )
