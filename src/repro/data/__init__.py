"""Dataset containers and corpus builders."""

from repro.data.dataset import LabeledImageDataset
from repro.data.corpus import build_training_corpus, CorpusConfig

__all__ = [
    "LabeledImageDataset",
    "build_training_corpus",
    "CorpusConfig",
]
