"""Labeled image dataset container.

Holds preprocessed NCHW tensors plus integer labels (0 = non-ad,
1 = ad, see :mod:`repro.models.percivalnet`) and supports the dataset
operations the paper's methodology uses: class balancing (§4.4.1 caps
both classes at the minority count), deterministic shuffling, splits,
and concatenation (the 8-phase crawl accumulates data across phases).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.rng import spawn_rng


@dataclass
class LabeledImageDataset:
    """Images (N, C, H, W) with labels (N,) and optional metadata."""

    images: np.ndarray
    labels: np.ndarray
    metadata: List[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.images.ndim != 4:
            raise ValueError("images must be NCHW")
        if self.labels.ndim != 1 or self.labels.shape[0] != self.images.shape[0]:
            raise ValueError("labels must align with images")
        if self.metadata and len(self.metadata) != len(self):
            raise ValueError("metadata must align with images")

    def __len__(self) -> int:
        return int(self.images.shape[0])

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    @classmethod
    def concatenate(
        cls, parts: Sequence["LabeledImageDataset"]
    ) -> "LabeledImageDataset":
        if not parts:
            raise ValueError("nothing to concatenate")
        images = np.concatenate([p.images for p in parts], axis=0)
        labels = np.concatenate([p.labels for p in parts], axis=0)
        metadata: List[dict] = []
        for part in parts:
            metadata.extend(
                part.metadata if part.metadata else [{}] * len(part)
            )
        return cls(images=images, labels=labels, metadata=metadata)

    def subset(self, indices: np.ndarray) -> "LabeledImageDataset":
        meta = (
            [self.metadata[i] for i in indices] if self.metadata else []
        )
        return LabeledImageDataset(
            images=self.images[indices],
            labels=self.labels[indices],
            metadata=meta,
        )

    # ------------------------------------------------------------------
    # Methodology operations
    # ------------------------------------------------------------------
    def balanced(self, seed: int = 0) -> "LabeledImageDataset":
        """Cap both classes at the minority count (paper §4.4.1)."""
        rng = spawn_rng(seed, "balance")
        positives = np.flatnonzero(self.labels == 1)
        negatives = np.flatnonzero(self.labels == 0)
        cap = min(len(positives), len(negatives))
        if cap == 0:
            raise ValueError("cannot balance a single-class dataset")
        keep = np.concatenate([
            rng.permutation(positives)[:cap],
            rng.permutation(negatives)[:cap],
        ])
        rng.shuffle(keep)
        return self.subset(keep)

    def shuffled(self, seed: int = 0) -> "LabeledImageDataset":
        rng = spawn_rng(seed, "shuffle")
        order = rng.permutation(len(self))
        return self.subset(order)

    def split(
        self, fraction: float, seed: int = 0
    ) -> Tuple["LabeledImageDataset", "LabeledImageDataset"]:
        """Random split into (first, second) with ``fraction`` in first."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        rng = spawn_rng(seed, "split")
        order = rng.permutation(len(self))
        cut = int(len(self) * fraction)
        return self.subset(order[:cut]), self.subset(order[cut:])

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    @property
    def num_ads(self) -> int:
        return int((self.labels == 1).sum())

    @property
    def num_nonads(self) -> int:
        return int((self.labels == 0).sum())
