"""Training-corpus construction.

Builds the balanced ad / non-ad corpus the reference model trains on,
drawing creatives and content from the same distributions the synthetic
web serves (the paper's corpus comes from crawling Alexa top-500 with
the pipeline crawler; the corpus here is the distribution that crawl
would collect, sampled directly for speed — the crawler modules
reproduce the collection *process* separately).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.preprocessing import preprocess_bitmap
from repro.data.dataset import LabeledImageDataset
from repro.synth.adgen import generate_ad, random_ad_spec
from repro.synth.contentgen import generate_content
from repro.synth.languages import Language, LANGUAGE_SHIFT
from repro.utils.rng import spawn_rng


@dataclass
class CorpusConfig:
    """Size and distribution knobs for a generated corpus."""

    seed: int = 0
    num_ads: int = 1500
    num_nonads: int = 1500
    input_size: int = 32
    language: Language = Language.ENGLISH
    #: ad-like-ness of organic content (brand imagery etc.)
    nonad_ad_intent_beta: float = 12.0
    cue_strength: Optional[float] = None


def build_training_corpus(config: CorpusConfig) -> LabeledImageDataset:
    """Generate a balanced labelled corpus at the classifier input size."""
    rng = spawn_rng(config.seed, f"corpus-{config.language.value}")
    shift = LANGUAGE_SHIFT.get(config.language, 0.0)
    total = config.num_ads + config.num_nonads
    images = np.empty(
        (total, 4, config.input_size, config.input_size), dtype=np.float32
    )
    labels = np.empty(total, dtype=np.int64)
    metadata: List[dict] = []

    for i in range(config.num_ads):
        spec = random_ad_spec(
            rng, language=config.language, language_shift=shift,
            cue_strength=config.cue_strength,
        )
        bitmap = generate_ad(rng, spec)
        images[i] = preprocess_bitmap(bitmap, config.input_size)
        labels[i] = 1
        metadata.append({"kind": "ad", "slot": spec.slot_format})

    for j in range(config.num_nonads):
        index = config.num_ads + j
        intent = float(rng.beta(1.0, config.nonad_ad_intent_beta))
        bitmap = generate_content(
            rng, language=config.language, ad_intent=intent
        )
        images[index] = preprocess_bitmap(bitmap, config.input_size)
        labels[index] = 0
        metadata.append({"kind": "content", "ad_intent": intent})

    dataset = LabeledImageDataset(images, labels, metadata)
    return dataset.shuffled(seed=config.seed)
