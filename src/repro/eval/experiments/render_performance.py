"""Figures 14 & 15: render-time overhead (§5.7).

Renders a corpus of synthetic pages through the Blink-shaped substrate
in four configurations — Chromium, Chromium+PERCIVAL, Brave (shields),
Brave+PERCIVAL — and reports the render-time distribution
(``domComplete - domLoading``) and median overheads.

Paper: +178.23 ms (4.55%) median in Chromium, +281.85 ms (19.07%) in
Brave.  The mechanism the simulation preserves: classification is a
fixed per-image cost serialized on the raster workers' critical path,
and Brave's much faster baseline (list-blocking removes ad resources
*and* ad/tracker script work) makes the same absolute cost a larger
relative penalty.

The per-image classification cost on the virtual clock is the paper's
measured 11 ms by default — our numpy substrate's own latency is an
artifact of the interpreter, not of the deployed C++/optimized model —
but callers can pass the locally measured value instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.browser.network import MockNetwork, NetworkConfig
from repro.browser.renderer import BRAVE, CHROMIUM, Renderer
from repro.core.blocker import PercivalBlocker
from repro.core.classifier import AdClassifier
from repro.core.modelstore import get_reference_classifier
from repro.eval.reporting import paper_vs_measured
from repro.synth.webgen import SyntheticWeb, WebConfig, url_registry

PAPER = {
    "chromium_overhead_pct": 4.55,
    "chromium_overhead_ms": 178.23,
    "brave_overhead_pct": 19.07,
    "brave_overhead_ms": 281.85,
}

#: Paper-measured per-image classification latency (ms) used as the
#: virtual-clock calibration constant by default.
PAPER_LATENCY_MS = 11.0


@dataclass
class RenderSeries:
    """Render times for one browser configuration."""

    name: str
    render_times_ms: List[float] = field(default_factory=list)

    @property
    def median_ms(self) -> float:
        return float(np.median(self.render_times_ms))

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.render_times_ms, q))

    def cdf(self, points: int = 50) -> List[tuple]:
        """(time_ms, fraction_of_pages) pairs — the Figure 14 series."""
        values = np.sort(np.asarray(self.render_times_ms))
        fractions = np.arange(1, len(values) + 1) / len(values)
        idx = np.linspace(0, len(values) - 1, min(points, len(values)))
        return [
            (float(values[int(i)]), float(fractions[int(i)])) for i in idx
        ]


@dataclass
class RenderPerformanceResult:
    series: Dict[str, RenderSeries]
    pages: int
    calibrated_latency_ms: float

    def overhead(self, base: str, treatment: str) -> tuple:
        """(delta_ms, delta_pct) of medians between two series."""
        base_median = self.series[base].median_ms
        treat_median = self.series[treatment].median_ms
        delta = treat_median - base_median
        return delta, 100.0 * delta / base_median

    def to_table(self) -> str:
        chromium_ms, chromium_pct = self.overhead(
            "chromium", "chromium+percival"
        )
        brave_ms, brave_pct = self.overhead("brave", "brave+percival")
        rows = [
            ("Chromium overhead (ms)", PAPER["chromium_overhead_ms"],
             chromium_ms),
            ("Chromium overhead (%)", PAPER["chromium_overhead_pct"],
             chromium_pct),
            ("Brave overhead (ms)", PAPER["brave_overhead_ms"], brave_ms),
            ("Brave overhead (%)", PAPER["brave_overhead_pct"], brave_pct),
            ("Chromium median (ms)", "-", self.series["chromium"].median_ms),
            ("Brave median (ms)", "-", self.series["brave"].median_ms),
        ]
        return paper_vs_measured(
            "Figure 15: render overhead (medians over "
            f"{self.pages} pages)", rows,
        )


def build_render_corpus(
    num_pages: int = 120, seed: int = 900
) -> List:
    """Heavy page corpus for the §5.7 runs (real pages carry dozens of
    images; the EasyList-experiment corpus is lighter)."""
    sites = max(num_pages // 2, 1)
    web = SyntheticWeb(WebConfig(
        seed=seed,
        num_sites=sites,
        images_per_page=(30, 110),
        containers_per_page=(8, 24),
    ))
    pages = list(web.iter_pages(web.top_sites(sites), pages_per_site=2))
    return pages[:num_pages]


def run_render_performance_experiment(
    classifier: Optional[AdClassifier] = None,
    num_pages: int = 120,
    calibrated_latency_ms: float = PAPER_LATENCY_MS,
    seed: int = 900,
) -> RenderPerformanceResult:
    """Render the corpus under all four configurations."""
    classifier = classifier or get_reference_classifier()
    pages = build_render_corpus(num_pages, seed)
    network = MockNetwork(
        url_registry(pages), NetworkConfig(seed=seed)
    )

    result = RenderPerformanceResult(
        series={}, pages=len(pages),
        calibrated_latency_ms=calibrated_latency_ms,
    )
    configurations = (
        ("chromium", CHROMIUM, False),
        ("chromium+percival", CHROMIUM, True),
        ("brave", BRAVE, False),
        ("brave+percival", BRAVE, True),
    )
    for name, profile, with_percival in configurations:
        renderer = Renderer(profile, network)
        blocker = None
        if with_percival:
            blocker = PercivalBlocker(
                classifier, calibrated_latency_ms=calibrated_latency_ms
            )
        series = RenderSeries(name=name)
        for page in pages:
            metrics = renderer.render(page, percival=blocker, mode="sync")
            series.render_times_ms.append(metrics.render_time_ms)
        result.series[name] = series
    return result


@dataclass
class AsyncAblationResult:
    """Sync vs async+memoization deployment comparison (§1.1)."""

    sync_median_ms: float
    async_median_ms: float
    baseline_median_ms: float
    flashed_ads: int
    memo_hits: int
    pages: int

    def to_table(self) -> str:
        rows = [
            ("sync overhead (ms)", "178.23 (Chromium)",
             self.sync_median_ms - self.baseline_median_ms),
            ("async overhead (ms)", "≈0 (off critical path)",
             self.async_median_ms - self.baseline_median_ms),
            ("ads flashed before verdict", "-", self.flashed_ads),
            ("memo hits", "-", self.memo_hits),
        ]
        return paper_vs_measured(
            "§1.1 ablation: sync vs async+memoization", rows
        )


def run_async_ablation(
    classifier: Optional[AdClassifier] = None,
    num_pages: int = 60,
    calibrated_latency_ms: float = PAPER_LATENCY_MS,
    seed: int = 901,
) -> AsyncAblationResult:
    """Compare the two deployments over the same corpus (two passes in
    async mode so memoized verdicts from pass one block pass two)."""
    classifier = classifier or get_reference_classifier()
    pages = build_render_corpus(num_pages, seed)
    network = MockNetwork(url_registry(pages), NetworkConfig(seed=seed))
    renderer = Renderer(CHROMIUM, network)

    baseline = [
        renderer.render(page).render_time_ms for page in pages
    ]

    sync_blocker = PercivalBlocker(
        classifier, calibrated_latency_ms=calibrated_latency_ms
    )
    sync_times = [
        renderer.render(page, percival=sync_blocker, mode="sync")
        .render_time_ms
        for page in pages
    ]

    async_blocker = PercivalBlocker(
        classifier, calibrated_latency_ms=calibrated_latency_ms
    )
    flashed = memo_hits = 0
    async_times: List[float] = []
    for _ in range(2):
        for page in pages:
            metrics = renderer.render(
                page, percival=async_blocker, mode="async"
            )
            async_times.append(metrics.render_time_ms)
            flashed += metrics.flashed_ads
            memo_hits += metrics.memo_hits

    return AsyncAblationResult(
        sync_median_ms=float(np.median(sync_times)),
        async_median_ms=float(np.median(async_times)),
        baseline_median_ms=float(np.median(baseline)),
        flashed_ads=flashed,
        memo_hits=memo_hits,
        pages=len(pages),
    )
