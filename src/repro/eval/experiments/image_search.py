"""Figure 13: blocking Google Image Search results (§5.4).

Per query, PERCIVAL classifies the top results; the paper reports
blocked/rendered counts for the first 100 images and FP/FN for the
queries whose ground truth it adjudicated:

| query         | blocked | rendered | FP | FN |
|---------------|--------:|---------:|---:|---:|
| Obama         |      12 |       88 | 12 |  0 |
| Advertisement |      96 |        4 |  0 |  4 |
| Shoes         |      56 |       44 |  - |  - |
| Pastry        |      14 |       86 |  - |  - |
| Coffee        |      23 |       77 |  - |  - |
| Detergent     |      85 |       15 | 10 |  6 |
| iPhone        |      76 |       24 | 23 |  1 |
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.classifier import AdClassifier
from repro.core.modelstore import get_reference_classifier
from repro.eval.reporting import format_table
from repro.synth.search import (
    ADJUDICATED_QUERIES,
    ImageSearch,
    QUERY_AD_INTENT,
)

PAPER: Dict[str, Dict[str, object]] = {
    "Obama": {"blocked": 12, "fp": 12, "fn": 0},
    "Advertisement": {"blocked": 96, "fp": 0, "fn": 4},
    "Shoes": {"blocked": 56, "fp": None, "fn": None},
    "Pastry": {"blocked": 14, "fp": None, "fn": None},
    "Coffee": {"blocked": 23, "fp": None, "fn": None},
    "Detergent": {"blocked": 85, "fp": 10, "fn": 6},
    "iPhone": {"blocked": 76, "fp": 23, "fn": 1},
}


@dataclass
class QueryResult:
    query: str
    blocked: int
    rendered: int
    fp: Optional[int]
    fn: Optional[int]


@dataclass
class ImageSearchResult:
    results: List[QueryResult]

    def to_table(self) -> str:
        rows = []
        for result in self.results:
            paper = PAPER.get(result.query, {})
            rows.append((
                result.query,
                paper.get("blocked", "-"),
                result.blocked,
                result.rendered,
                "-" if result.fp is None else result.fp,
                "-" if result.fn is None else result.fn,
            ))
        return "== Figure 13: image search blocking ==\n" + format_table(
            ("query", "blocked(paper)", "blocked", "rendered", "FP", "FN"),
            rows,
        )

    def blocked_by_query(self) -> Dict[str, int]:
        return {r.query: r.blocked for r in self.results}


def run_image_search_experiment(
    classifier: Optional[AdClassifier] = None,
    queries: Sequence[str] = tuple(QUERY_AD_INTENT),
    per_query: int = 100,
    seed: int = 17,
) -> ImageSearchResult:
    """Classify the top ``per_query`` results for each query."""
    classifier = classifier or get_reference_classifier()
    search = ImageSearch(seed=seed)
    out: List[QueryResult] = []

    for query in queries:
        results = search.results(query, per_query)
        bitmaps = [r.render() for r in results]
        probabilities = classifier.ad_probabilities(bitmaps)
        predictions = probabilities >= classifier.config.ad_threshold
        truths = np.array([r.is_ad for r in results])
        blocked = int(predictions.sum())
        if query in ADJUDICATED_QUERIES:
            fp = int((predictions & ~truths).sum())
            fn = int((~predictions & truths).sum())
        else:
            fp = fn = None
        out.append(QueryResult(
            query=query,
            blocked=blocked,
            rendered=per_query - blocked,
            fp=fp,
            fn=fn,
        ))
    return ImageSearchResult(out)
