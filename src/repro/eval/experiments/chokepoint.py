"""§2.2 ablation: choke-point placement vs DOM-extension blocking.

The paper argues for intercepting at the decode/raster boundary instead
of a JavaScript extension that walks the DOM: an extension misses
images the DOM doesn't faithfully expose (CSS-transformed resources,
late-injected frames racing the scan) and is exposed to DOM
obfuscation.  This driver quantifies the coverage gap on the synthetic
web:

* **pipeline interception** sees every decoded frame — coverage is 100%
  of rendered images by construction,
* **DOM-extension scanning** misses late-loading elements with some
  probability (scan races injection) and CSS-composited resources.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.reporting import paper_vs_measured
from repro.synth.webgen import SyntheticWeb, WebConfig
from repro.utils.rng import spawn_rng


@dataclass
class ChokepointResult:
    total_ad_frames: int
    pipeline_seen: int
    extension_seen: int

    @property
    def pipeline_coverage(self) -> float:
        return self.pipeline_seen / max(self.total_ad_frames, 1)

    @property
    def extension_coverage(self) -> float:
        return self.extension_seen / max(self.total_ad_frames, 1)

    def to_table(self) -> str:
        rows = [
            ("pipeline coverage of ad frames", "all rendered images",
             self.pipeline_coverage),
            ("DOM-extension coverage", "lossy (races, obfuscation)",
             self.extension_coverage),
            ("ad frames observed", "-", self.total_ad_frames),
        ]
        return paper_vs_measured(
            "§2.2 ablation: choke-point placement", rows
        )


def run_chokepoint_ablation(
    num_sites: int = 20,
    pages_per_site: int = 2,
    scan_race_probability: float = 0.5,
    css_composited_fraction: float = 0.12,
    seed: int = 404,
) -> ChokepointResult:
    """Count ad frames visible to each interception strategy.

    ``scan_race_probability`` is the chance a late-injected element is
    absent when the extension scans; ``css_composited_fraction`` models
    resources rendered via CSS transforms that never appear as scannable
    ``img`` elements.
    """
    web = SyntheticWeb(WebConfig(seed=seed, num_sites=num_sites))
    rng = spawn_rng(seed, "chokepoint")
    total = pipeline = extension = 0

    for page in web.iter_pages(web.top_sites(num_sites), pages_per_site):
        for element in page.ad_elements():
            if not element.url:
                continue
            total += 1
            pipeline += 1  # decode-path interception sees every frame
            if rng.random() < css_composited_fraction:
                continue  # not exposed to DOM scanning at all
            if element.loads_late and rng.random() < scan_race_probability:
                continue  # injected after the extension's scan
            extension += 1

    return ChokepointResult(
        total_ad_frames=total,
        pipeline_seen=pipeline,
        extension_seen=extension,
    )
