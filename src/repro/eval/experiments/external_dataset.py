"""Figure 8: accuracy against an external dataset (§5.1).

Train on our own crawl distribution, test on a sample from the
independent Turk-annotated corpus (Hussain et al. stand-in).  The paper
reports: 5,024 images, accuracy 0.877, model 1.9 MB, 11 ms/image,
precision 0.815, recall 0.976, F1 0.888 — i.e. high recall with
noticeably lower precision than the in-distribution result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.classifier import AdClassifier
from repro.core.modelstore import get_reference_classifier
from repro.eval.metrics import BinaryMetrics, confusion_metrics
from repro.eval.reporting import paper_vs_measured
from repro.synth.external import ExternalConfig, ExternalDataset

PAPER = {
    "accuracy": 0.877,
    "precision": 0.815,
    "recall": 0.976,
    "f1": 0.888,
    "size_mb": 1.9,
    "latency_ms": 11.0,
}


@dataclass
class ExternalDatasetResult:
    metrics: BinaryMetrics
    sample_size: int
    model_size_mb: float
    latency_ms: float

    def to_table(self) -> str:
        rows = [
            ("images", 5024, self.sample_size),
            ("accuracy", PAPER["accuracy"], self.metrics.accuracy),
            ("precision", PAPER["precision"], self.metrics.precision),
            ("recall", PAPER["recall"], self.metrics.recall),
            ("f1", PAPER["f1"], self.metrics.f1),
            ("model size (MB)", PAPER["size_mb"], self.model_size_mb),
            ("avg time (ms)", PAPER["latency_ms"], self.latency_ms),
        ]
        return paper_vs_measured(
            "Figure 8: external dataset validation", rows
        )


def run_external_dataset_experiment(
    classifier: Optional[AdClassifier] = None,
    sample_size: int = 1000,
    seed: int = 7,
) -> ExternalDatasetResult:
    """Run the §5.1 validation at the configured sample size."""
    classifier = classifier or get_reference_classifier()
    dataset = ExternalDataset(ExternalConfig(seed=seed))
    samples = dataset.sample(sample_size)
    bitmaps = [s.render() for s in samples]
    probabilities = classifier.ad_probabilities(bitmaps)
    predictions = probabilities >= classifier.config.ad_threshold
    annotations = np.array([s.annotated_ad for s in samples])
    return ExternalDatasetResult(
        metrics=confusion_metrics(predictions, annotations),
        sample_size=sample_size,
        model_size_mb=classifier.model_size_mb,
        latency_ms=classifier.measured_latency_ms(),
    )
