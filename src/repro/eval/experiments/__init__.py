"""Experiment drivers, one per paper table/figure.

| Driver module            | Paper artifact                     |
|--------------------------|------------------------------------|
| ``model_profile``        | Figure 3 / §2.3 model size+latency |
| ``salience``             | Figure 4 (Grad-CAM)                |
| ``crawler_comparison``   | Figure 5 / §4.4 methodology        |
| ``easylist_replication`` | Figures 6 and 7                    |
| ``external_dataset``     | Figure 8                           |
| ``languages``            | Figure 9                           |
| ``facebook``             | Figures 10-12                      |
| ``image_search``         | Figure 13                          |
| ``render_performance``   | Figures 14 and 15                  |
"""
