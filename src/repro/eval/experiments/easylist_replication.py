"""Figures 6 & 7: accuracy against EasyList (§5.2).

Two datasets built from Alexa-style news sites, per the paper:

* **screenshots** — DOM elements selected by EasyList CSS rules,
  screenshotted and manually labelled (ground truth here),
* **images** — every page image labelled by EasyList network rules.

Figure 6 reports dataset sizes and EasyList match rates (CSS 20.2%,
network 31.1%); Figure 7 reports PERCIVAL replicating the labels with
accuracy 96.76%, precision 97.76%, recall 95.72% over 6,930 images of
which 3,466 are ads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.classifier import AdClassifier
from repro.core.modelstore import get_reference_classifier
from repro.eval.metrics import BinaryMetrics, confusion_metrics
from repro.eval.reporting import paper_vs_measured
from repro.filterlist.easylist import default_easylist
from repro.filterlist.engine import FilterEngine
from repro.synth.webgen import SyntheticWeb, WebConfig

PAPER_FIG6 = {"css_matched": 0.202, "network_matched": 0.311}
PAPER_FIG7 = {
    "images": 6930, "ads": 3466,
    "accuracy": 0.9676, "precision": 0.9776, "recall": 0.9572,
}


@dataclass
class EasyListDatasetStats:
    """Figure 6 row: how much of the surface EasyList matches."""

    css_checked: int
    css_matched: int
    network_checked: int
    network_matched: int

    @property
    def css_rate(self) -> float:
        return self.css_matched / max(self.css_checked, 1)

    @property
    def network_rate(self) -> float:
        return self.network_matched / max(self.network_checked, 1)


@dataclass
class EasyListReplicationResult:
    dataset_stats: EasyListDatasetStats
    metrics: BinaryMetrics
    images_evaluated: int
    ads_in_dataset: int

    def to_table(self) -> str:
        fig6 = paper_vs_measured(
            "Figure 6: EasyList match rates",
            [
                ("CSS rules matched", PAPER_FIG6["css_matched"],
                 self.dataset_stats.css_rate),
                ("network rules matched", PAPER_FIG6["network_matched"],
                 self.dataset_stats.network_rate),
            ],
        )
        fig7 = paper_vs_measured(
            "Figure 7: PERCIVAL vs EasyList-derived labels",
            [
                ("images", PAPER_FIG7["images"], self.images_evaluated),
                ("ads identified", PAPER_FIG7["ads"], self.ads_in_dataset),
                ("accuracy", PAPER_FIG7["accuracy"], self.metrics.accuracy),
                ("precision", PAPER_FIG7["precision"],
                 self.metrics.precision),
                ("recall", PAPER_FIG7["recall"], self.metrics.recall),
            ],
        )
        return fig6 + "\n\n" + fig7


def run_easylist_replication_experiment(
    classifier: Optional[AdClassifier] = None,
    engine: Optional[FilterEngine] = None,
    num_sites: int = 40,
    pages_per_site: int = 2,
    seed: int = 1234,
) -> EasyListReplicationResult:
    """Build the two §5.2 datasets and evaluate the classifier."""
    classifier = classifier or get_reference_classifier()
    engine = engine or default_easylist()
    # evaluation web uses a different seed from any training corpus
    web = SyntheticWeb(WebConfig(seed=seed, num_sites=num_sites))

    css_checked = css_matched = 0
    network_checked = network_matched = 0
    bitmaps: List[np.ndarray] = []
    truths: List[int] = []

    for page in web.iter_pages(web.top_sites(num_sites), pages_per_site):
        domain = page.site_domain
        for element in page.elements:
            hidden = engine.should_hide_element(
                element.tag, element.css_classes, element.element_id,
                domain,
            )
            css_checked += 1
            if hidden is not None:
                css_matched += 1
            if element.tag in ("img", "iframe") and element.url:
                network_checked += 1
                decision = engine.check_request(element.url, domain, "image")
                if decision.blocked:
                    network_matched += 1
                # dataset for Figure 7: elements selected by either rule
                # family, with manual (ground-truth) labels.
                if decision.blocked or hidden is not None:
                    bitmaps.append(element.render())
                    truths.append(int(element.is_ad))
            elif hidden is not None and element.tag == "div":
                # screenshot of a matched container without a resource
                # (an ad-slot div that stayed empty): manual label non-ad.
                bitmaps.append(element.render())
                truths.append(int(element.is_ad))

    probabilities = classifier.ad_probabilities(bitmaps)
    predictions = probabilities >= classifier.config.ad_threshold
    truth_arr = np.array(truths, dtype=bool)
    return EasyListReplicationResult(
        dataset_stats=EasyListDatasetStats(
            css_checked=css_checked,
            css_matched=css_matched,
            network_checked=network_checked,
            network_matched=network_matched,
        ),
        metrics=confusion_metrics(predictions, truth_arr),
        images_evaluated=len(bitmaps),
        ads_in_dataset=int(truth_arr.sum()),
    )
