"""§4.4 / Figure 5: crawler methodology comparison.

The paper motivates the pipeline crawler with two defects of the
screenshot approach: blank captures from load races and EasyList label
noise.  This driver runs both crawlers over the same synthetic web and
reports the defect rates plus the effect on a model trained from each
dataset — the ablation behind the paper's "much cleaner dataset" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.classifier import AdClassifier
from repro.core.config import PercivalConfig
from repro.crawl.pipeline import PipelineCrawler, PipelineCrawlStats
from repro.crawl.traditional import TraditionalCrawler, TraditionalCrawlStats
from repro.eval.reporting import paper_vs_measured
from repro.filterlist.easylist import default_easylist
from repro.synth.webgen import SyntheticWeb, WebConfig
from repro.utils.rng import derive


@dataclass
class CrawlerComparisonResult:
    traditional_stats: TraditionalCrawlStats
    pipeline_stats: PipelineCrawlStats
    traditional_model_accuracy: float
    pipeline_model_accuracy: float

    def to_table(self) -> str:
        trad, pipe = self.traditional_stats, self.pipeline_stats
        white_rate = trad.white_screenshots / max(
            trad.elements_screenshotted, 1
        )
        noise_rate = trad.mislabelled / max(trad.elements_screenshotted, 1)
        rows = [
            ("white-screenshot rate (traditional)", "common", white_rate),
            ("white-screenshot rate (pipeline)", "0", 0.0),
            ("label-noise rate (traditional)", "EasyList-bound",
             noise_rate),
            ("useful after dedup (pipeline)", "15-20%",
             pipe.useful_fraction),
            ("model accuracy (trained on traditional crawl)", "lower",
             self.traditional_model_accuracy),
            ("model accuracy (trained on pipeline crawl)", "higher",
             self.pipeline_model_accuracy),
        ]
        return paper_vs_measured(
            "Figure 5 / §4.4: crawler comparison", rows
        )


def run_crawler_comparison_experiment(
    num_sites: int = 10,
    pages_per_site: int = 2,
    train_epochs: int = 6,
    seed: int = 77,
    config: Optional[PercivalConfig] = None,
) -> CrawlerComparisonResult:
    """Crawl both ways, train a model from each, compare on holdout.

    The crawl web uses a small campaign pool so creative duplication
    dominates the raw capture, as it does on the real web (the paper
    keeps only 15-20% of each phase after dedup).
    """
    config = config or PercivalConfig()
    web = SyntheticWeb(WebConfig(seed=derive(seed, "web"),
                                 num_sites=num_sites,
                                 campaign_pool_size=10,
                                 content_pool_size=8))
    engine = default_easylist()

    traditional = TraditionalCrawler(
        web, engine, input_size=config.input_size,
        seed=derive(seed, "traditional"),
    )
    trad_data, trad_stats = traditional.crawl(num_sites, pages_per_site)

    pipeline = PipelineCrawler(
        web, classifier=None, input_size=config.input_size,
        seed=derive(seed, "pipeline"),
    )
    pipe_data, pipe_stats = pipeline.crawl(num_sites, pages_per_site)

    holdout_web = SyntheticWeb(WebConfig(
        seed=derive(seed, "holdout"), num_sites=6,
    ))
    holdout_crawler = PipelineCrawler(
        holdout_web, classifier=None, input_size=config.input_size,
        seed=derive(seed, "holdout-crawl"),
    )
    holdout, _ = holdout_crawler.crawl(6, pages_per_site=2)
    holdout_truth = np.array(
        [m["truth"] for m in holdout.metadata], dtype=np.int64
    )

    accuracies = []
    for data in (trad_data, pipe_data):
        model = AdClassifier(config)
        model.train(data.images, data.labels, epochs=train_epochs)
        predictions = model.predict_tensor(holdout.images)
        accuracies.append(float((predictions == holdout_truth).mean()))

    return CrawlerComparisonResult(
        traditional_stats=trad_stats,
        pipeline_stats=pipe_stats,
        traditional_model_accuracy=accuracies[0],
        pipeline_model_accuracy=accuracies[1],
    )
