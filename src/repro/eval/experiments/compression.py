"""§4.2 ablation: model compression trade-off.

The paper tried Inception-V4 / ResNet-class models (97-99% accurate but
prohibitively big/slow), settled on a pruned SqueezeNet, and removed
layers + added down-sampling to cut classification time.  This ablation
compares, at reproduction scale:

* the PERCIVAL fork (6 fire modules, extra pooling),
* a deeper/wider variant standing in for the "bigger is slower" end,
* a tiny linear baseline standing in for the "too small to be accurate"
  end,
* **real quantized variants** of the trained fork: the same weights
  repacked as fp16 and int8 weight artifacts (``repro.nn.artifact``)
  and run through artifact-compiled inference plans — storage shrinks,
  compute stays fp32, accuracy is measured, not simulated,

on size, latency and held-out accuracy — the three axes the paper's
design navigates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.data.corpus import CorpusConfig, build_training_corpus
from repro.eval.reporting import format_table
from repro.models.percivalnet import PercivalNet
from repro.models.zoo import (
    model_size_mb,
    pretrain_stem,
    transfer_stem_weights,
)
from repro.nn import (
    Flatten,
    Linear,
    Sequential,
    Trainer,
    TrainConfig,
    WeightArtifact,
    compile_inference,
)
from repro.utils.rng import spawn_rng
from repro.utils.timing import measure_latency


@dataclass
class VariantResult:
    name: str
    size_mb: float
    latency_ms: float
    accuracy: float
    ood_accuracy: float  # on a language-shifted corpus (generalization)


@dataclass
class CompressionResult:
    variants: List[VariantResult]

    def to_table(self) -> str:
        rows = [
            (v.name, f"{v.size_mb:.3f}", f"{v.latency_ms:.2f}",
             f"{v.accuracy:.3f}", f"{v.ood_accuracy:.3f}")
            for v in self.variants
        ]
        return (
            "== §4.2 ablation: model compression ==\n"
            + format_table(("variant", "size (MB)", "latency (ms)",
                            "holdout acc", "shifted acc"), rows)
        )


def run_compression_ablation(
    train_size: int = 800,
    test_size: int = 400,
    epochs: int = 12,
    input_size: int = 32,
    seed: int = 55,
) -> CompressionResult:
    """Train each variant on the same corpus; compare the three axes.

    CNN variants follow the paper's recipe: stem features transferred
    from a pretrained donor (§4.3), then fine-tuned end to end.
    """
    train = build_training_corpus(CorpusConfig(
        seed=seed, num_ads=train_size // 2, num_nonads=train_size // 2,
        input_size=input_size,
    ))
    test = build_training_corpus(CorpusConfig(
        seed=seed + 1, num_ads=test_size // 2, num_nonads=test_size // 2,
        input_size=input_size,
    ))
    # out-of-distribution probe: a non-English corpus (the paper's §5.5
    # generalization axis) — convolutional features transfer, a linear
    # model's global-statistics shortcut does not.
    from repro.synth.languages import Language
    shifted = build_training_corpus(CorpusConfig(
        seed=seed + 2, num_ads=test_size // 2,
        num_nonads=test_size // 2, input_size=input_size,
        language=Language.ARABIC,
    ))

    variants: List[VariantResult] = []
    rng = spawn_rng(seed, "ablate")
    probe = train.images[:1]

    candidates = [
        ("percival (paper fork)",
         PercivalNet.small(seed=seed, width=0.25)),
        ("wider fork (0.5x width)",
         PercivalNet.small(seed=seed, width=0.5)),
        ("linear baseline",
         Sequential([
             Flatten(),
             Linear(4 * input_size * input_size, 2, rng=rng),
         ], name="linear")),
    ]
    for name, network in candidates:
        if isinstance(network, PercivalNet):
            donor = PercivalNet.small(
                seed=seed + 1, width=network.width
            )
            pretrain_stem(donor, seed=seed)
            transfer_stem_weights(donor, network, num_blocks=5)
        trainer = Trainer(network, TrainConfig(
            epochs=epochs, lr=0.01, seed=seed,
        ))
        trainer.fit(train.images, train.labels)
        accuracy = trainer.evaluate(test.images, test.labels)
        ood_accuracy = trainer.evaluate(shifted.images, shifted.labels)
        network.eval()
        latency = _deploy_latency(network, probe)
        variants.append(VariantResult(
            name=name,
            size_mb=model_size_mb(network),
            latency_ms=latency,
            accuracy=accuracy,
            ood_accuracy=ood_accuracy,
        ))
        if name == "percival (paper fork)":
            # real quantized variants of the trained fork: same
            # weights, fp16/int8 storage artifacts, artifact-compiled
            # plans — the ROADMAP's "quantized weights for the
            # inference plan" measured on the ablation's own axes.
            variants.extend(
                _quantized_variants(network, test, shifted, probe)
            )
    return CompressionResult(variants)


def _deploy_latency(network, probe: np.ndarray) -> float:
    """Single-image latency through the deployed execution engine.

    Every variant row — baseline and quantized alike — is timed through
    the compiled inference plan (what the blocker actually runs), so
    the table's latency column compares like with like; layer-by-layer
    forward is the fallback only for networks the compiler cannot
    lower.
    """
    from repro.nn import UnsupportedLayerError

    try:
        plan = compile_inference(network)
    except UnsupportedLayerError:
        return measure_latency(
            lambda: network.forward(probe), repeats=3, warmup=1
        )
    return measure_latency(lambda: plan.run(probe), repeats=3, warmup=1)


def _plan_accuracy(plan, images: np.ndarray, labels: np.ndarray,
                   batch_size: int = 64) -> float:
    """Accuracy of an artifact-compiled plan on a labelled set
    (mirrors ``Trainer.evaluate``: argmax over logits)."""
    correct = 0
    for start in range(0, images.shape[0], batch_size):
        logits = plan.run(images[start:start + batch_size])
        predictions = logits.argmax(axis=1)
        correct += int((predictions == labels[start:start + batch_size]).sum())
    return correct / max(len(labels), 1)


def _quantized_variants(network, test, shifted, probe) -> List[VariantResult]:
    results: List[VariantResult] = []
    for precision in ("fp16", "int8"):
        artifact = WeightArtifact.from_network(network, precision)
        plan = compile_inference(network, artifact=artifact)
        latency = measure_latency(
            lambda p=plan: p.run(probe), repeats=3, warmup=1
        )
        results.append(VariantResult(
            name=f"percival fork @ {precision}",
            size_mb=artifact.nbytes / 2**20,
            latency_ms=latency,
            accuracy=_plan_accuracy(plan, test.images, test.labels),
            ood_accuracy=_plan_accuracy(
                plan, shifted.images, shifted.labels
            ),
        ))
    return results
