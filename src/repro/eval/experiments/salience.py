"""Figure 4: salience maps of the CNN (§5.6).

The paper's Grad-CAM analysis shows the network attending to ad visual
cues — the AdChoices marker when present, text outlines, and product
shapes — and staying diffuse on non-ad photos.  The quantitative
reproduction checks:

* on ad images carrying an AdChoices-style marker, salience mass in the
  marker's corner region exceeds the area-proportional baseline,
* ad images' salience maps are more concentrated (lower normalized
  entropy) than non-ad images'.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.classifier import AdClassifier
from repro.core.gradcam import GradCam
from repro.core.modelstore import get_reference_classifier
from repro.eval.reporting import paper_vs_measured
from repro.synth.adgen import AdSpec, generate_ad
from repro.synth.contentgen import ContentKind, generate_content
from repro.utils.rng import spawn_rng


@dataclass
class SalienceResult:
    marker_mass_ratio: float     # corner mass / area-proportional mass
    ad_entropy: float            # mean normalized salience entropy (ads)
    nonad_entropy: float         # same for non-ads
    samples: int

    def to_table(self) -> str:
        rows = [
            ("marker-corner mass ratio (>1 = attends to cue)",
             "qualitative", self.marker_mass_ratio),
            ("salience entropy (ads)", "more focused", self.ad_entropy),
            ("salience entropy (non-ads)", "more diffuse",
             self.nonad_entropy),
        ]
        return paper_vs_measured("Figure 4: Grad-CAM salience", rows)


def _normalized_entropy(cam: np.ndarray) -> float:
    flat = cam.reshape(-1).astype(np.float64)
    total = flat.sum()
    if total <= 0:
        return 1.0
    p = flat / total
    entropy = -(p[p > 0] * np.log(p[p > 0])).sum()
    return float(entropy / np.log(flat.size))


def run_salience_experiment(
    classifier: Optional[AdClassifier] = None,
    samples: int = 24,
    seed: int = 5,
) -> SalienceResult:
    """Measure salience concentration on cue regions."""
    classifier = classifier or get_reference_classifier()
    gradcam = GradCam(classifier)
    rng = spawn_rng(seed, "salience")

    # The marker cue is spatially localized, so it is visible at the
    # mid-network feature maps (the paper inspects "Layer 5"); by the
    # last fire module the pooling stack has averaged the corner away.
    layers = gradcam.available_layers()
    mid_layer = layers[len(layers) // 2]

    marker_ratios: List[float] = []
    ad_entropies: List[float] = []
    nonad_entropies: List[float] = []

    for _ in range(samples):
        # ad carrying the marker cue (top-right corner by construction)
        spec = AdSpec(slot_format="medium_rectangle", cue_strength=1.0)
        ad = generate_ad(spawn_rng(int(rng.integers(2**31)), "ad"), spec)
        height, width = ad.shape[:2]
        corner = (int(width * 0.7), 0, width - int(width * 0.7),
                  int(height * 0.35))
        corner_area = (corner[2] * corner[3]) / (height * width)
        mass = gradcam.cue_mass(ad, corner, layer=mid_layer)
        if corner_area > 0:
            marker_ratios.append(mass / corner_area)
        ad_entropies.append(_normalized_entropy(gradcam.salience(ad)))

        photo = generate_content(
            spawn_rng(int(rng.integers(2**31)), "photo"),
            kind=ContentKind.PHOTO,
        )
        nonad_entropies.append(
            _normalized_entropy(gradcam.salience(photo))
        )

    return SalienceResult(
        marker_mass_ratio=float(np.mean(marker_ratios)),
        ad_entropy=float(np.mean(ad_entropies)),
        nonad_entropy=float(np.mean(nonad_entropies)),
        samples=samples,
    )
