"""Figure 9: language-agnostic detection (§5.5).

The English-trained model is evaluated on per-language crawls labelled
by a native-speaker oracle.  Paper values:

| language | accuracy | precision | recall |
|----------|---------:|----------:|-------:|
| Arabic   |    81.3% |     0.833 |  0.825 |
| Spanish  |    95.1% |     0.768 |  0.889 |
| French   |    93.9% |     0.776 |  0.904 |
| Korean   |    76.9% |     0.540 |  0.920 |
| Chinese  |    80.4% |     0.742 |  0.715 |

The headline shape: Latin-script languages stay near the training
distribution; Arabic degrades moderately; Korean/Chinese degrade most.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.classifier import AdClassifier
from repro.core.modelstore import get_reference_classifier
from repro.eval.metrics import BinaryMetrics, confusion_metrics
from repro.eval.reporting import format_table
from repro.synth.languages import Language, LANGUAGE_SHIFT
from repro.synth.webgen import SyntheticWeb, WebConfig
from repro.utils.rng import derive

PAPER: Dict[Language, Dict[str, float]] = {
    Language.ARABIC: {"accuracy": 0.813, "precision": 0.833, "recall": 0.825},
    Language.SPANISH: {"accuracy": 0.951, "precision": 0.768, "recall": 0.889},
    Language.FRENCH: {"accuracy": 0.939, "precision": 0.776, "recall": 0.904},
    Language.KOREAN: {"accuracy": 0.769, "precision": 0.540, "recall": 0.920},
    Language.CHINESE: {"accuracy": 0.804, "precision": 0.742, "recall": 0.715},
}

DEFAULT_LANGUAGES = (
    Language.ARABIC, Language.SPANISH, Language.FRENCH,
    Language.KOREAN, Language.CHINESE,
)


@dataclass
class LanguageResult:
    language: Language
    metrics: BinaryMetrics
    images_crawled: int
    ads_identified: int


@dataclass
class LanguagesResult:
    results: List[LanguageResult]

    def to_table(self) -> str:
        rows = []
        for result in self.results:
            paper = PAPER.get(result.language, {})
            rows.append((
                result.language.value,
                result.images_crawled,
                result.ads_identified,
                paper.get("accuracy", float("nan")),
                result.metrics.accuracy,
                paper.get("precision", float("nan")),
                result.metrics.precision,
                paper.get("recall", float("nan")),
                result.metrics.recall,
            ))
        return "== Figure 9: non-English languages ==\n" + format_table(
            ("language", "crawled", "ads", "acc(paper)", "acc",
             "P(paper)", "P", "R(paper)", "R"),
            rows,
        )

    def accuracy_by_language(self) -> Dict[Language, float]:
        return {r.language: r.metrics.accuracy for r in self.results}


def run_languages_experiment(
    classifier: Optional[AdClassifier] = None,
    languages: Sequence[Language] = DEFAULT_LANGUAGES,
    sites_per_language: int = 12,
    pages_per_site: int = 2,
    seed: int = 31,
) -> LanguagesResult:
    """Crawl each regional web and score the English-trained model."""
    classifier = classifier or get_reference_classifier()
    results: List[LanguageResult] = []

    for language in languages:
        web = SyntheticWeb(WebConfig(
            seed=derive(seed, f"web-{language.value}"),
            num_sites=sites_per_language,
            language=language,
            language_shift=LANGUAGE_SHIFT.get(language, 0.0),
        ))
        bitmaps: List[np.ndarray] = []
        truths: List[bool] = []
        for page in web.iter_pages(
            web.top_sites(sites_per_language), pages_per_site
        ):
            for element in page.image_elements():
                bitmaps.append(element.render())
                truths.append(element.is_ad)  # native-speaker oracle

        probabilities = classifier.ad_probabilities(bitmaps)
        predictions = probabilities >= classifier.config.ad_threshold
        truth_arr = np.array(truths)
        results.append(LanguageResult(
            language=language,
            metrics=confusion_metrics(predictions, truth_arr),
            images_crawled=len(bitmaps),
            ads_identified=int(truth_arr.sum()),
        ))
    return LanguagesResult(results)
