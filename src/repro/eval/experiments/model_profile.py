"""Figure 3 / §2.3: model size and inference-latency profile.

The paper's model engineering claims:

* the fork is < 2 MB — a 74x reduction versus Sentinel-class (YOLO)
  models and ~2.5x versus stock SqueezeNet,
* classification takes ~11 ms/image on their hardware,
* removing layers + extra down-sampling cuts time without a
  significant accuracy loss (vs the 97-99% of the big nets).

Measured here: parameter counts and serialized sizes of the PERCIVAL
fork vs full SqueezeNet, plus wall-clock latency of the full-size
(224x224x4) forward pass on this machine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.reporting import paper_vs_measured
from repro.models.percivalnet import PercivalNet
from repro.models.squeezenet import build_squeezenet
from repro.models.zoo import (
    SENTINEL_MODEL_BYTES,
    describe_model,
    model_size_bytes,
)
from repro.utils.timing import measure_latency

PAPER = {
    "percival_mb": 1.9,
    "squeezenet_mb": 4.8,
    "latency_ms": 11.0,
    "sentinel_reduction": 74.0,
}


@dataclass
class ModelProfileResult:
    percival_params: int
    percival_mb: float
    squeezenet_params: int
    squeezenet_mb: float
    sentinel_reduction: float
    full_size_latency_ms: float

    def to_table(self) -> str:
        rows = [
            ("PERCIVAL model (MB)", PAPER["percival_mb"], self.percival_mb),
            ("SqueezeNet-1000 (MB)", PAPER["squeezenet_mb"],
             self.squeezenet_mb),
            ("reduction vs Sentinel-class", PAPER["sentinel_reduction"],
             self.sentinel_reduction),
            ("latency @224x224x4 (ms)", PAPER["latency_ms"],
             self.full_size_latency_ms),
            ("PERCIVAL parameters", "-", self.percival_params),
        ]
        return paper_vs_measured(
            "Figure 3 / §2.3: model size and latency", rows
        )


def run_model_profile_experiment(
    latency_repeats: int = 3,
) -> ModelProfileResult:
    """Profile the paper-size architectures (no training needed)."""
    percival = PercivalNet.paper()
    squeezenet = build_squeezenet(num_classes=1000, in_channels=3)

    percival_info = describe_model(percival, "percival")
    squeezenet_info = describe_model(squeezenet, "squeezenet_v1.1")

    percival.eval()
    batch = np.random.default_rng(0).random(
        (1, 4, 224, 224)
    ).astype(np.float32)
    latency = measure_latency(
        lambda: percival.forward(batch), repeats=latency_repeats, warmup=1
    )

    return ModelProfileResult(
        percival_params=percival_info.num_parameters,
        percival_mb=percival_info.size_mb,
        squeezenet_params=squeezenet_info.num_parameters,
        squeezenet_mb=squeezenet_info.size_mb,
        sentinel_reduction=(
            SENTINEL_MODEL_BYTES / model_size_bytes(percival)
        ),
        full_size_latency_ms=latency,
    )
