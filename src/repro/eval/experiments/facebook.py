"""Figure 10: blocking Facebook ads and sponsored content (§5.3).

Methodology: browse the (synthetic) feed for 35 days; every item served
in a right-column slot or marked sponsored counts as ad content, all
other feed content as non-ad.  The paper reports 354 ads / 1,830
non-ads with accuracy 92.0%, FP 68, FN 106, precision 0.784, recall
0.7, noting that right-column ads are always caught, in-feed sponsored
posts drive the false negatives, and brand-page content drives the
false positives (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.classifier import AdClassifier
from repro.core.modelstore import get_reference_classifier
from repro.eval.metrics import BinaryMetrics, confusion_metrics
from repro.eval.reporting import paper_vs_measured
from repro.synth.facebook import FacebookFeed, FeedConfig

PAPER = {
    "ads": 354, "nonads": 1830, "accuracy": 0.92,
    "fp": 68, "fn": 106, "precision": 0.784, "recall": 0.7,
}


@dataclass
class FacebookResult:
    metrics: BinaryMetrics
    days: int
    per_kind_recall: Dict[str, float] = field(default_factory=dict)
    per_kind_fp_rate: Dict[str, float] = field(default_factory=dict)

    def to_table(self) -> str:
        m = self.metrics
        rows = [
            ("ads", PAPER["ads"], m.tp + m.fn),
            ("non-ads", PAPER["nonads"], m.tn + m.fp),
            ("accuracy", PAPER["accuracy"], m.accuracy),
            ("FP", PAPER["fp"], m.fp),
            ("FN", PAPER["fn"], m.fn),
            ("precision", PAPER["precision"], m.precision),
            ("recall", PAPER["recall"], m.recall),
        ]
        table = paper_vs_measured(
            "Figure 10: Facebook ads and sponsored content", rows
        )
        detail = "\n".join(
            f"  recall[{kind}]={value:.3f}"
            for kind, value in sorted(self.per_kind_recall.items())
        ) + "\n" + "\n".join(
            f"  fp_rate[{kind}]={value:.3f}"
            for kind, value in sorted(self.per_kind_fp_rate.items())
        )
        return table + "\n" + detail


def run_facebook_experiment(
    classifier: Optional[AdClassifier] = None,
    days: int = 35,
    feed_config: Optional[FeedConfig] = None,
    seed: int = 0,
) -> FacebookResult:
    """Replay the 35-day browsing methodology over the synthetic feed."""
    classifier = classifier or get_reference_classifier()
    feed = FacebookFeed(feed_config or FeedConfig(seed=seed))

    bitmaps: List[np.ndarray] = []
    truths: List[bool] = []
    kinds: List[str] = []
    for session in feed.browse(days):
        for item in session:
            bitmaps.append(item.render())
            truths.append(item.is_ad)
            kinds.append(item.kind)

    probabilities = classifier.ad_probabilities(bitmaps)
    predictions = probabilities >= classifier.config.ad_threshold
    truth_arr = np.array(truths)
    kind_arr = np.array(kinds)

    per_kind_recall: Dict[str, float] = {}
    per_kind_fp: Dict[str, float] = {}
    for kind in np.unique(kind_arr):
        mask = kind_arr == kind
        if truth_arr[mask].any():
            per_kind_recall[str(kind)] = float(
                predictions[mask & truth_arr].mean()
            )
        else:
            per_kind_fp[str(kind)] = float(
                predictions[mask & ~truth_arr].mean()
            )

    return FacebookResult(
        metrics=confusion_metrics(predictions, truth_arr),
        days=days,
        per_kind_recall=per_kind_recall,
        per_kind_fp_rate=per_kind_fp,
    )
