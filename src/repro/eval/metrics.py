"""Binary classification metrics.

Definitions follow the paper's §5.3: TP = ads correctly blocked, TN =
non-ads correctly rendered, FP = non-ads incorrectly blocked, FN = ads
missed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BinaryMetrics:
    """Confusion counts and the derived rates."""

    tp: int
    tn: int
    fp: int
    fn: int

    @property
    def total(self) -> int:
        return self.tp + self.tn + self.fp + self.fn

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return float("nan")
        return (self.tp + self.tn) / self.total

    @property
    def precision(self) -> float:
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else float("nan")

    @property
    def recall(self) -> float:
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else float("nan")

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if np.isnan(p) or np.isnan(r) or (p + r) == 0:
            return float("nan")
        return 2 * p * r / (p + r)

    def __str__(self) -> str:
        return (
            f"acc={self.accuracy:.4f} precision={self.precision:.4f} "
            f"recall={self.recall:.4f} f1={self.f1:.4f} "
            f"(tp={self.tp} tn={self.tn} fp={self.fp} fn={self.fn})"
        )


def confusion_metrics(
    predictions: np.ndarray, truths: np.ndarray
) -> BinaryMetrics:
    """Compute metrics from 0/1 prediction and truth arrays."""
    predictions = np.asarray(predictions).astype(bool)
    truths = np.asarray(truths).astype(bool)
    if predictions.shape != truths.shape:
        raise ValueError("predictions and truths must align")
    return BinaryMetrics(
        tp=int((predictions & truths).sum()),
        tn=int((~predictions & ~truths).sum()),
        fp=int((predictions & ~truths).sum()),
        fn=int((~predictions & truths).sum()),
    )
