"""Text-table formatting for experiment outputs.

Every benchmark prints a "paper vs measured" table through these
helpers so EXPERIMENTS.md and the bench logs stay consistent.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned monospace table."""
    columns = [list(map(_cell, col)) for col in zip(headers, *rows)]
    widths = [max(len(value) for value in col) for col in columns]
    lines: List[str] = []
    header_line = "  ".join(
        h.ljust(w) for h, w in zip(map(_cell, headers), widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(_cell(v).ljust(w) for v, w in zip(row, widths))
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def paper_vs_measured(
    title: str,
    rows: Sequence[Sequence[object]],
    headers: Sequence[str] = ("metric", "paper", "measured"),
) -> str:
    """Standard experiment output block."""
    return f"== {title} ==\n{format_table(headers, rows)}"
