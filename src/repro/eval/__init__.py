"""Evaluation harness: metrics + one driver per paper table/figure.

Each experiment driver is a pure function returning a result dataclass
with a ``to_table()`` method that prints the measured values next to
the paper's reported values.  The benchmarks in ``benchmarks/`` are
thin wrappers that call these drivers.
"""

from repro.eval.metrics import BinaryMetrics, confusion_metrics

__all__ = [
    "BinaryMetrics",
    "confusion_metrics",
]
