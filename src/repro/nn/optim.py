"""Optimizers and learning-rate schedules.

The paper's training recipe (§4.3): stochastic gradient descent with
momentum beta = 0.9, learning rate 0.001, batch size 24, and step decay
multiplying the rate by 0.1 every 30 epochs.  Both pieces are implemented
here exactly as described.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.tensor import Parameter


class SGD:
    """Stochastic gradient descent with classical momentum.

    velocity = beta * velocity - lr * grad;  param += velocity
    """

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 0.001,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            velocity *= self.momentum
            velocity -= self.lr * grad
            param.data += velocity


class StepLR:
    """Step learning-rate decay: lr *= gamma every ``step_epochs`` epochs."""

    def __init__(
        self,
        optimizer: SGD,
        step_epochs: int = 30,
        gamma: float = 0.1,
    ) -> None:
        if step_epochs < 1:
            raise ValueError("step_epochs must be >= 1")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step_epochs = step_epochs
        self.gamma = gamma
        self._epoch = 0
        self.base_lr = optimizer.lr

    def epoch_end(self) -> float:
        """Advance one epoch; returns the (possibly decayed) current lr."""
        self._epoch += 1
        decays = self._epoch // self.step_epochs
        self.optimizer.lr = self.base_lr * (self.gamma ** decays)
        return self.optimizer.lr

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr
