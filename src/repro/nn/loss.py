"""Softmax and cross-entropy loss.

The softmax and the cross-entropy are fused in the loss object: the
combined backward pass is the numerically stable ``prob - onehot`` form,
avoiding the unstable softmax Jacobian.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class SoftmaxCrossEntropy:
    """Mean cross-entropy over a batch of integer class labels."""

    def __init__(self, eps: float = 1e-12) -> None:
        self.eps = eps
        self._probs: Optional[np.ndarray] = None
        self._labels: Optional[np.ndarray] = None

    def forward(
        self, logits: np.ndarray, labels: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Returns ``(loss, probabilities)``.

        ``logits`` is (N, num_classes); ``labels`` is (N,) of ints.
        """
        if logits.ndim != 2:
            raise ValueError("logits must be (N, num_classes)")
        if labels.shape[0] != logits.shape[0]:
            raise ValueError("labels and logits batch sizes differ")
        probs = softmax(logits, axis=1)
        batch = logits.shape[0]
        picked = probs[np.arange(batch), labels]
        loss = float(-np.log(picked + self.eps).mean())
        self._probs = probs
        self._labels = labels
        return loss, probs

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits."""
        if self._probs is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        batch = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(batch), self._labels] -= 1.0
        return grad / batch
