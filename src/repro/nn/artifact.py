"""Precision-aware weight artifacts.

A :class:`WeightArtifact` is the single representation of "a network's
weights at a storage precision" shared by every byte-moving layer of
the system:

* the plan compiler (``compile_inference(network, artifact=...)``)
  dequantizes each parameter into its GEMM layout once at compile time,
* the shared-memory worker handoff ships ``artifact.buffer`` through
  one segment and rebuilds with :meth:`WeightArtifact.from_manifest` +
  :meth:`load_into` on the worker side,
* ``repro.nn.serialization`` persists the same storage arrays + scales
  to ``.npz``.

The artifact holds **one packed byte buffer** plus a per-parameter
manifest: ``(name, shape, storage dtype, offset, per-channel scales)``
rows in the network's own ``parameters()`` order.  Quantization policy
(which dtypes, which tensors keep fp32, scale math) lives in
``repro.nn.quantize``; this module only packages and moves bytes.

Compute precision never changes: dequantization back to fp32 happens
exactly once per consumer (plan compile, network rebuild), so the hot
loop runs the same fp32 GEMMs over smaller *resident/shipped* weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.network import Sequential
from repro.nn.quantize import (
    dequantize_array,
    quantize_array,
    validate_precision,
)
from repro.nn.tensor import Parameter

#: one manifest row as it travels inside a ``PlanExport``:
#: (name, shape, storage dtype str, byte offset, per-channel scales)
ManifestRow = Tuple[
    str, Tuple[int, ...], str, int, Optional[Tuple[float, ...]]
]


@dataclass(frozen=True)
class ArtifactEntry:
    """Manifest row for one parameter inside the packed buffer."""

    name: str
    shape: Tuple[int, ...]
    dtype: str  # numpy dtype.str of the *storage* form
    offset: int
    scales: Optional[Tuple[float, ...]]  # int8 per-channel, else None

    @property
    def count(self) -> int:
        return math.prod(self.shape) if self.shape else 1

    @property
    def nbytes(self) -> int:
        return self.count * np.dtype(self.dtype).itemsize

    def row(self) -> ManifestRow:
        return (self.name, self.shape, self.dtype, self.offset, self.scales)


class WeightArtifact:
    """One packed weight buffer plus its per-parameter manifest."""

    def __init__(
        self,
        precision: str,
        entries: Sequence[ArtifactEntry],
        buffer: np.ndarray,
    ) -> None:
        self.precision = validate_precision(precision)
        self.entries: Tuple[ArtifactEntry, ...] = tuple(entries)
        self.buffer = np.ascontiguousarray(buffer, dtype=np.uint8).reshape(-1)
        for entry in self.entries:
            if entry.offset + entry.nbytes > self.buffer.size:
                raise ValueError(
                    f"manifest row {entry.name} overruns the packed "
                    f"buffer ({entry.offset + entry.nbytes} > "
                    f"{self.buffer.size} bytes)"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_network(
        cls, network: Sequential, precision: str
    ) -> "WeightArtifact":
        """Lower every parameter of ``network`` to ``precision`` and
        pack the storage forms into one contiguous buffer."""
        precision = validate_precision(precision)
        stored_arrays: List[np.ndarray] = []
        entries: List[ArtifactEntry] = []
        offset = 0
        for param in network.parameters():
            stored, scales = quantize_array(param.data, precision)
            entries.append(ArtifactEntry(
                name=param.name,
                shape=tuple(param.data.shape),
                dtype=stored.dtype.str,
                offset=offset,
                scales=(
                    None if scales is None
                    else tuple(float(s) for s in scales)
                ),
            ))
            stored_arrays.append(stored)
            offset += int(stored.nbytes)
        buffer = np.empty(offset, dtype=np.uint8)
        for entry, stored in zip(entries, stored_arrays):
            buffer[entry.offset:entry.offset + entry.nbytes] = np.frombuffer(
                stored.tobytes(), dtype=np.uint8
            )
        return cls(precision, entries, buffer)

    @classmethod
    def from_manifest(
        cls,
        rows: Sequence[ManifestRow],
        buffer,
        precision: str,
        total_bytes: Optional[int] = None,
    ) -> "WeightArtifact":
        """Rebuild an artifact from manifest rows and a packed buffer
        (the worker-side import).

        The bytes are **copied** out of ``buffer`` before any views are
        taken, so the caller may close/unlink a shared-memory segment
        as soon as this returns.
        """
        entries = [
            ArtifactEntry(
                name=name,
                shape=tuple(shape),
                dtype=dtype,
                offset=int(offset),
                scales=None if scales is None else tuple(scales),
            )
            for name, shape, dtype, offset, scales in rows
        ]
        size = (
            int(total_bytes)
            if total_bytes is not None
            else max(
                (e.offset + e.nbytes for e in entries), default=0
            )
        )
        packed = np.frombuffer(buffer, dtype=np.uint8, count=size).copy()
        return cls(precision, entries, packed)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Size of the packed storage buffer (what ships/persists)."""
        return int(self.buffer.size)

    def manifest_rows(self) -> Tuple[ManifestRow, ...]:
        return tuple(entry.row() for entry in self.entries)

    def stored(self, index: int) -> np.ndarray:
        """Storage-dtype view of one parameter inside the buffer."""
        entry = self.entries[index]
        return (
            self.buffer[entry.offset:entry.offset + entry.nbytes]
            .view(np.dtype(entry.dtype))
            .reshape(entry.shape)
        )

    def dequantized(self, index: int) -> np.ndarray:
        """fp32 reconstruction of one parameter (a fresh array for
        non-fp32 storage; a view of the buffer for fp32 passthrough)."""
        entry = self.entries[index]
        scales = (
            None if entry.scales is None
            else np.asarray(entry.scales, dtype=np.float32)
        )
        return dequantize_array(self.stored(index), scales)

    # ------------------------------------------------------------------
    # Consumers
    # ------------------------------------------------------------------
    def load_into(self, network: Sequential) -> None:
        """Write dequantized fp32 values into ``network``'s parameters.

        Positional, like every other weight mover in this repo —
        ``parameters()`` order is deterministic per architecture.
        Raises :class:`ValueError` on any count or shape mismatch.
        """
        params = network.parameters()
        if len(params) != len(self.entries):
            raise ValueError(
                f"manifest rows ({len(self.entries)}) do not match "
                f"network parameters ({len(params)})"
            )
        for index, (param, entry) in enumerate(zip(params, self.entries)):
            if tuple(param.data.shape) != entry.shape:
                raise ValueError(
                    f"shape mismatch loading {entry.name}: "
                    f"{param.data.shape} vs {entry.shape}"
                )
            param.data[...] = self.dequantized(index)

    def bind(
        self, network: Sequential
    ) -> Callable[[Parameter], np.ndarray]:
        """Resolver mapping ``network``'s parameters to their fp32
        reconstructions, for the plan compiler.

        Binding is positional against ``parameters()`` order with a
        per-parameter shape check, so the artifact can come from a
        different process (worker import) as long as the architecture
        matches.  The returned callable is what ``compile_inference``
        uses in place of live ``Parameter.data`` views.
        """
        params = network.parameters()
        if len(params) != len(self.entries):
            raise ValueError(
                f"cannot bind artifact with {len(self.entries)} rows to "
                f"a network with {len(params)} parameters"
            )
        table: Dict[int, np.ndarray] = {}
        for index, (param, entry) in enumerate(zip(params, self.entries)):
            if tuple(param.data.shape) != entry.shape:
                raise ValueError(
                    f"shape mismatch binding {entry.name}: "
                    f"{param.data.shape} vs {entry.shape}"
                )
            table[id(param)] = np.ascontiguousarray(
                self.dequantized(index), dtype=np.float32
            )

        def resolve(param: Parameter) -> np.ndarray:
            try:
                return table[id(param)]
            except KeyError:
                raise ValueError(
                    f"parameter {param.name!r} is not part of the bound "
                    "network"
                ) from None

        return resolve
