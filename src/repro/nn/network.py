"""Sequential network container."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.layers import Layer
from repro.nn.tensor import Parameter


class Sequential(Layer):
    """An ordered stack of layers executed front to back.

    Besides forward/backward, the container supports:

    * train/eval mode switching (propagated to all layers),
    * parameter collection for optimizers and serialization,
    * activation capture by layer index (used by Grad-CAM).
    """

    def __init__(self, layers: Iterable[Layer], name: str = "net") -> None:
        self.layers: List[Layer] = list(layers)
        if not self.layers:
            raise ValueError("Sequential needs at least one layer")
        self.name = name
        self._capture_indices: set = set()
        self._captured: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._captured.clear()
        out = x
        for index, layer in enumerate(self.layers):
            out = layer.forward(out)
            if index in self._capture_indices:
                self._captured[index] = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def backward_from(self, grad_out: np.ndarray, index: int) -> np.ndarray:
        """Backpropagate from the output down to layer ``index`` (inclusive
        of layers after it), returning the gradient w.r.t. that layer's
        output.  Grad-CAM uses this to get class-score gradients at an
        intermediate feature map without touching earlier layers.
        """
        if not 0 <= index < len(self.layers):
            raise IndexError(f"layer index {index} out of range")
        grad = grad_out
        for layer in reversed(self.layers[index + 1:]):
            grad = layer.backward(grad)
        return grad

    # ------------------------------------------------------------------
    # Mode and parameters
    # ------------------------------------------------------------------
    def train(self) -> "Sequential":
        for layer in self._all_layers():
            layer.training = True
        return self

    def eval(self) -> "Sequential":
        for layer in self._all_layers():
            layer.training = False
        return self

    def _all_layers(self) -> Iterable[Layer]:
        # Depth-first over composites via Layer.sub_layers() so the
        # training flag reaches flag-sensitive layers (dropout, ReLU
        # mask retention) nested inside Fire modules or sub-stacks.
        stack: List[Layer] = list(self.layers)
        while stack:
            layer = stack.pop()
            yield layer
            stack.extend(layer.sub_layers())

    def sub_layers(self) -> tuple:
        return tuple(self.layers)

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    # ------------------------------------------------------------------
    # Activation capture (Grad-CAM support)
    # ------------------------------------------------------------------
    def capture(self, indices: Iterable[int]) -> None:
        """Record the outputs of the given layer indices on next forward."""
        self._capture_indices = set(indices)

    def captured(self, index: int) -> Optional[np.ndarray]:
        return self._captured.get(index)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]

    def summary(self) -> str:
        """Human-readable architecture summary with parameter counts."""
        lines = [f"Sequential({self.name})"]
        total = 0
        for index, layer in enumerate(self.layers):
            count = layer.num_parameters()
            total += count
            lines.append(
                f"  [{index:2d}] {type(layer).__name__:16s} params={count}"
            )
        lines.append(f"  total params={total}")
        return "\n".join(lines)
