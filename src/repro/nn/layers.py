"""Neural network layers with explicit forward/backward passes.

Every layer caches what its backward pass needs during forward, so the
call protocol is strictly ``forward`` then ``backward`` (the trainer and
gradient checker both follow it).  Layers expose their trainable state
through ``parameters()``; stateless layers return an empty list.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.init import kaiming_normal
from repro.nn.tensor import Parameter


class Layer:
    """Base class: a differentiable transform with optional parameters."""

    #: toggled by ``Sequential.train()`` / ``.eval()``; dropout keys on it.
    training: bool = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        return []

    def sub_layers(self) -> Tuple["Layer", ...]:
        """Internal layers of a composite (Fire modules, nested stacks).

        ``Sequential.train()``/``.eval()`` recurse through this so the
        ``training`` flag reaches every flag-sensitive layer (dropout,
        ReLU's mask retention), however deeply nested.
        """
        return ()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # ------------------------------------------------------------------
    # Introspection used by the model-size accounting (Figure 8 reports
    # model size; the zoo sums parameter bytes through this hook).
    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def parameter_bytes(self) -> int:
        return sum(p.nbytes for p in self.parameters())


class Conv2d(Layer):
    """2-D convolution (NCHW), im2col + GEMM implementation."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: Optional[np.random.Generator] = None,
        name: str = "conv",
        dtype: np.dtype = np.float32,
    ) -> None:
        if in_channels < 1 or out_channels < 1:
            raise ValueError("channel counts must be positive")
        if kernel_size < 1 or stride < 1 or padding < 0:
            raise ValueError("invalid convolution geometry")
        rng = rng if rng is not None else np.random.default_rng(0)
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(
            kaiming_normal(shape, rng, dtype), name=f"{name}.weight"
        )
        self.bias = Parameter(
            np.zeros(out_channels, dtype=dtype), name=f"{name}.bias"
        )
        self.stride = stride
        self.padding = padding
        self.kernel_size = kernel_size
        self.in_channels = in_channels
        self.out_channels = out_channels
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int]]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"Conv2d expects NCHW input, got shape {x.shape}")
        if x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {x.shape[1]}"
            )
        out, cols = F.conv2d_forward(
            x, self.weight.data, self.bias.data, self.stride, self.padding
        )
        self._cache = (cols, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, input_shape = self._cache
        grad_in, grad_w, grad_b = F.conv2d_backward(
            grad_out, cols, self.weight.data, input_shape,
            self.stride, self.padding,
        )
        self.weight.grad += grad_w
        self.bias.grad += grad_b
        return grad_in

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]


class MaxPool2d(Layer):
    """Windowed max pooling, supporting overlapping windows."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        if kernel_size < 1:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...]]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, argmax = F.maxpool2d_forward(x, self.kernel_size, self.stride)
        self._cache = (argmax, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        argmax, input_shape = self._cache
        return F.maxpool2d_backward(
            grad_out, argmax, input_shape, self.kernel_size, self.stride
        )


class AvgPool2d(Layer):
    """Windowed average pooling."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        if kernel_size < 1:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return F.avgpool2d_forward(x, self.kernel_size, self.stride)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return F.avgpool2d_backward(
            grad_out, self._input_shape, self.kernel_size, self.stride
        )


class GlobalAvgPool2d(Layer):
    """Global average pooling: (N, C, H, W) -> (N, C).

    This is what makes the PERCIVAL architecture input-size agnostic: the
    final 1x1 classifier conv produces a class map of any spatial extent
    and GAP reduces it to per-class scores.
    """

    def __init__(self) -> None:
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        _, _, height, width = self._input_shape
        scale = 1.0 / (height * width)
        return (
            grad_out[:, :, None, None]
            * np.ones(self._input_shape, dtype=grad_out.dtype)
            * scale
        )


class ReLU(Layer):
    """Rectified linear unit.

    Forward is a single ``np.maximum`` (the old ``np.where(...).astype``
    allocated twice per call).  The boolean mask is materialized only in
    training mode; in eval mode only a reference to the output is kept,
    from which backward derives the identical mask on demand
    (``out > 0`` iff ``x > 0``) — Grad-CAM backpropagates in eval mode
    and still needs it.
    """

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.maximum(x, 0.0)
        if self.training:
            self._mask = x > 0
            self._out = None
        else:
            self._mask = None
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is not None:
            return grad_out * self._mask
        if self._out is not None:
            return grad_out * (self._out > 0)
        raise RuntimeError("backward called before forward")


class Dropout(Layer):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float = 0.5, seed: int = 0) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (
            self._rng.random(x.shape) < keep
        ).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Flatten(Layer):
    """(N, C, H, W) -> (N, C*H*W)."""

    def __init__(self) -> None:
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._input_shape)


class Linear(Layer):
    """Fully-connected layer (used by small baseline models)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        name: str = "linear",
        dtype: np.dtype = np.float32,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        self.weight = Parameter(
            kaiming_normal((out_features, in_features), rng, dtype),
            name=f"{name}.weight",
        )
        self.bias = Parameter(
            np.zeros(out_features, dtype=dtype), name=f"{name}.bias"
        )
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError("Linear expects (N, features) input")
        self._input = x
        return x @ self.weight.data.T + self.bias.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += grad_out.T @ self._input
        self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.data

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]


class Identity(Layer):
    """No-op layer, handy as a placeholder in ablations."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out
