"""Numerical gradient checking.

The framework has hand-written backward passes; these helpers verify them
against central finite differences.  Tests run the checks in float64
where the method is accurate to ~1e-7.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.nn.layers import Layer


def numerical_gradient(
    fn: Callable[[np.ndarray], float],
    x: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of a scalar function at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat_x = x.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        original = flat_x[i]
        flat_x[i] = original + eps
        plus = fn(x)
        flat_x[i] = original - eps
        minus = fn(x)
        flat_x[i] = original
        flat_g[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_layer_gradients(
    layer: Layer,
    input_shape: Tuple[int, ...],
    rng: np.random.Generator,
    eps: float = 1e-5,
) -> Tuple[float, float]:
    """Verify a layer's input and parameter gradients numerically.

    Uses the scalar objective ``sum(forward(x) * r)`` for a fixed random
    ``r``, whose analytic input gradient is ``backward(r)``.  Returns the
    max relative errors ``(input_err, param_err)``; param_err is 0.0 for
    stateless layers.
    """
    x = rng.standard_normal(input_shape).astype(np.float64)
    for param in layer.parameters():
        # Move parameters off exact ReLU kinks: zero-initialized biases
        # put fully-masked activations exactly at 0, where the central
        # difference straddles the nondifferentiable point and disagrees
        # with the (one-sided) analytic gradient by construction.
        jitter = rng.normal(0.0, 0.05, size=param.data.shape)
        param.data = param.data.astype(np.float64) + jitter
        param.grad = np.zeros_like(param.data)

    out = layer.forward(x)
    weights = rng.standard_normal(out.shape)

    def objective(arr: np.ndarray) -> float:
        return float((layer.forward(arr) * weights).sum())

    numeric_in = numerical_gradient(objective, x.copy(), eps)
    # Re-run forward on the unperturbed input so cached state matches.
    layer.forward(x)
    for param in layer.parameters():
        param.zero_grad()
    analytic_in = layer.backward(weights)
    input_err = _relative_error(analytic_in, numeric_in)

    param_err = 0.0
    for param in layer.parameters():
        analytic = param.grad.copy()

        def param_objective(arr: np.ndarray) -> float:
            return float((layer.forward(x) * weights).sum())

        numeric = numerical_gradient(param_objective, param.data, eps)
        param_err = max(param_err, _relative_error(analytic, numeric))
    return input_err, param_err


def _relative_error(a: np.ndarray, b: np.ndarray) -> float:
    denominator = max(float(np.abs(a).max(initial=0.0)),
                      float(np.abs(b).max(initial=0.0)), 1e-8)
    return float(np.abs(a - b).max(initial=0.0)) / denominator
