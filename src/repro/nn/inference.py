"""Compiled inference fast path.

:func:`compile_inference` walks a :class:`~repro.nn.network.Sequential`
once and emits an :class:`InferencePlan` — a flat list of fused,
cache-free kernel calls.  Compared with running the training graph in
eval mode, a plan:

* never retains backward state (no im2col cols, no pool argmax, no
  ReLU masks),
* fuses each ``Conv2d`` with a directly-following ``ReLU`` (the ReLU
  runs in-place on the GEMM output),
* routes 1x1 convolutions through the reshape+GEMM shortcut and general
  convolutions through the zero-copy strided im2col,
* elides ``Dropout`` and ``Identity`` entirely (both are no-ops in eval
  mode),
* reuses scratch buffers across calls, keyed on shape, so steady-state
  inference stops allocating.

Scratch safety relies on one invariant: every op writes only into its
*own* buffers and reads its input from a *different* op's output, so no
kernel ever writes a buffer it is reading.  The plan's return value is
copied out of scratch when necessary — callers always own the result.

Plans hold *views* of each layer's ``Parameter.data``, captured at
compile time.  In-place optimizer updates stay visible through the
views, but anything that can reassign the underlying arrays (training,
weight loading) must discard the plan and recompile — ``AdClassifier``
invalidates on ``train()``/``load()``.  Grad-CAM and training keep
using the layer-by-layer graph, which is unchanged.

Passing a :class:`~repro.nn.artifact.WeightArtifact` to
:func:`compile_inference` compiles the plan from the artifact's weights
instead of the live parameters: each op dequantizes-or-casts its
parameter into its GEMM layout **once at compile time**, so the hot
loop runs the identical fp32 kernels while the artifact's packed
(possibly fp16/int8) buffer is what ships and persists.  Artifact-built
plans are snapshots — in-place parameter updates do *not* flow through
them; the invalidation contract above covers this case too.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.fire import FireModule
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.network import Sequential


class UnsupportedLayerError(TypeError):
    """Raised when the plan compiler meets a layer it cannot lower."""


class ScratchCache:
    """Per-op scratch buffers keyed on input shape *and* dtype.

    Each op owns its cache exclusively, so a buffer handed out here can
    never alias the op's input (which is always some *other* op's
    output).  LRU-bounded so varying batch sizes cannot grow memory
    without bound.  ``shape_fn`` computes the buffer shape only on a
    cache miss — steady-state inference skips the geometry arithmetic.
    The dtype is part of the cache key: a plan recompiled at a
    different precision must never be handed a stale-dtype buffer for
    the same shape.
    """

    def __init__(self, capacity: int = 4) -> None:
        self._buffers: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
        self._capacity = capacity

    def take(self, key: Tuple[int, ...], shape_fn, dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        cache_key = (key, dtype.str)
        buffer = self._buffers.get(cache_key)
        if buffer is None:
            buffer = np.empty(shape_fn(key), dtype=dtype)
            self._buffers[cache_key] = buffer
            if len(self._buffers) > self._capacity:
                self._buffers.popitem(last=False)
        else:
            self._buffers.move_to_end(cache_key)
        return buffer


class InferenceOp:
    """One step of a compiled plan.

    ``run`` receives the activation plus ``mutable`` — whether the
    activation's storage belongs to the plan (safe to overwrite) or to
    the caller (the plan's original input; must be preserved).  The two
    class flags drive the plan's storage tracking:

    * ``mutable_out`` — True if the op's output storage is plan-owned,
      None if the op passes its input storage through unchanged.
    * ``scratch_out`` — True if the output aliases a reusable scratch
      buffer (the next ``run`` would overwrite it), None to inherit.
    """

    mutable_out: Optional[bool] = True
    scratch_out: Optional[bool] = False

    def run(self, x: np.ndarray, mutable: bool) -> np.ndarray:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class ConvOp(InferenceOp):
    """Convolution with optional fused ReLU, writing into scratch."""

    scratch_out = True

    def __init__(self, conv: Conv2d, relu: bool, resolve=None) -> None:
        # ``resolve`` maps a Parameter to the array the plan should
        # compute with: live ``Parameter.data`` by default (in-place
        # updates flow through; reassignment requires recompile —
        # AdClassifier invalidates plans on train()/load()), or a
        # dequantized fp32 snapshot when compiling from a
        # WeightArtifact.
        self.weight = conv.weight.data if resolve is None else resolve(
            conv.weight
        )
        self.bias = conv.bias.data if resolve is None else resolve(
            conv.bias
        )
        self.stride = conv.stride
        self.padding = conv.padding
        self.relu = relu
        self.pointwise = conv.kernel_size == 1
        self._scratch = ScratchCache()
        # view of the GEMM-shaped weights, captured at compile time
        self._flat_weight = self.weight.reshape(conv.out_channels, -1)

    def _scratch_shape(self, input_shape: Tuple[int, ...]):
        return F.conv2d_scratch_shape(
            input_shape, self.weight.shape, self.stride, self.padding
        )

    def run(self, x: np.ndarray, mutable: bool) -> np.ndarray:
        weight = self.weight
        scratch = self._scratch.take(
            x.shape, self._scratch_shape, weight.dtype
        )
        return F.conv2d_infer(
            x, weight, self.bias, self.stride, self.padding,
            relu=self.relu, out=scratch, flat_weight=self._flat_weight,
        )

    def describe(self) -> str:
        kind = "conv1x1[gemm]" if self.pointwise else "conv[im2col]"
        return f"{kind}+relu" if self.relu else kind


class FireOp(InferenceOp):
    """Fire module: squeeze -> [expand1x1 || expand3x3] -> concat.

    All three ReLUs are fused into their convolutions — the module's
    post-concat ReLU distributes over concatenation, so it runs on each
    expand half in place before the copy into the concat output.
    """

    def __init__(self, fire: FireModule, resolve=None) -> None:
        self.squeeze = ConvOp(fire.squeeze, relu=True, resolve=resolve)
        self.expand1x1 = ConvOp(fire.expand1x1, relu=True, resolve=resolve)
        self.expand3x3 = ConvOp(fire.expand3x3, relu=True, resolve=resolve)

    def run(self, x: np.ndarray, mutable: bool) -> np.ndarray:
        squeezed = self.squeeze.run(x, mutable)
        left = self.expand1x1.run(squeezed, True)
        right = self.expand3x3.run(squeezed, True)
        return np.concatenate([left, right], axis=1)

    def describe(self) -> str:
        return (
            f"fire({self.squeeze.describe()} -> "
            f"{self.expand1x1.describe()} || {self.expand3x3.describe()})"
        )


class ReluOp(InferenceOp):
    """Standalone ReLU: in-place when the activation is plan-owned."""

    mutable_out = True
    scratch_out = None  # in-place: inherits the input's storage class

    def run(self, x: np.ndarray, mutable: bool) -> np.ndarray:
        if mutable:
            return F.relu_inplace(x)
        return np.maximum(x, 0.0)

    def describe(self) -> str:
        return "relu"


class MaxPoolOp(InferenceOp):
    def __init__(self, kernel: int, stride: int) -> None:
        self.kernel = kernel
        self.stride = stride

    def run(self, x: np.ndarray, mutable: bool) -> np.ndarray:
        return F.maxpool2d_infer(x, self.kernel, self.stride)

    def describe(self) -> str:
        return f"maxpool{self.kernel}/{self.stride}"


class AvgPoolOp(InferenceOp):
    def __init__(self, kernel: int, stride: int) -> None:
        self.kernel = kernel
        self.stride = stride

    def run(self, x: np.ndarray, mutable: bool) -> np.ndarray:
        return F.avgpool2d_infer(x, self.kernel, self.stride)

    def describe(self) -> str:
        return f"avgpool{self.kernel}/{self.stride}"


class GlobalAvgPoolOp(InferenceOp):
    def run(self, x: np.ndarray, mutable: bool) -> np.ndarray:
        return x.mean(axis=(2, 3), dtype=x.dtype)

    def describe(self) -> str:
        return "gap"


class FlattenOp(InferenceOp):
    mutable_out = None  # reshape view: inherits the input's storage
    scratch_out = None

    def run(self, x: np.ndarray, mutable: bool) -> np.ndarray:
        return x.reshape(x.shape[0], -1)

    def describe(self) -> str:
        return "flatten"


class LinearOp(InferenceOp):
    def __init__(self, linear: Linear, relu: bool, resolve=None) -> None:
        self.weight = linear.weight.data if resolve is None else resolve(
            linear.weight
        )
        self.bias = linear.bias.data if resolve is None else resolve(
            linear.bias
        )
        self.relu = relu

    def run(self, x: np.ndarray, mutable: bool) -> np.ndarray:
        out = x @ self.weight.T
        out += self.bias
        if self.relu:
            F.relu_inplace(out)
        return out

    def describe(self) -> str:
        return "linear+relu" if self.relu else "linear"


class InferencePlan:
    """A compiled, cache-free execution schedule for one network.

    ``run`` never touches the layers' backward caches, activation
    capture, or training flags — it is safe to interleave with training
    and Grad-CAM use of the same network (but see the staleness contract
    in the module docstring: recompile after ``train()``/``load()``).
    """

    def __init__(self, ops: List[InferenceOp], name: str = "net") -> None:
        self.ops = ops
        self.name = name

    def run(self, x: np.ndarray) -> np.ndarray:
        out = x
        mutable = False   # the caller's input: never overwrite
        scratch = False   # aliases a reusable buffer: never return as-is
        for op in self.ops:
            out = op.run(out, mutable)
            if op.mutable_out is not None:
                mutable = op.mutable_out
            if op.scratch_out is not None:
                scratch = op.scratch_out
        if scratch:
            # never hand a scratch view to the caller: the next run
            # would silently overwrite it.
            out = out.copy()
        return out

    __call__ = run

    def __len__(self) -> int:
        return len(self.ops)

    def describe(self) -> str:
        lines = [f"InferencePlan({self.name})"]
        lines.extend(
            f"  [{index:2d}] {op.describe()}"
            for index, op in enumerate(self.ops)
        )
        return "\n".join(lines)


def _flatten_layers(network: Sequential) -> Iterable[Layer]:
    for layer in network.layers:
        if isinstance(layer, Sequential):
            yield from _flatten_layers(layer)
        else:
            yield layer


def compile_inference(
    network: Sequential, artifact=None
) -> InferencePlan:
    """Lower a Sequential into a flat list of fused inference kernels.

    With ``artifact`` (a :class:`~repro.nn.artifact.WeightArtifact`),
    each parameterized op computes over the artifact's dequantized fp32
    reconstruction instead of the live parameter views — the
    dequantize-or-cast happens here, once, never in the hot loop.

    Raises :class:`UnsupportedLayerError` for layer types without an
    inference lowering; callers fall back to the layer-by-layer path.
    """
    resolve = None if artifact is None else artifact.bind(network)
    layers = list(_flatten_layers(network))
    ops: List[InferenceOp] = []
    index = 0
    while index < len(layers):
        layer = layers[index]
        nxt = layers[index + 1] if index + 1 < len(layers) else None
        if isinstance(layer, (Dropout, Identity)):
            index += 1  # no-ops in eval mode: elided
        elif isinstance(layer, Conv2d):
            fused = isinstance(nxt, ReLU)
            ops.append(ConvOp(layer, relu=fused, resolve=resolve))
            index += 2 if fused else 1
        elif isinstance(layer, Linear):
            fused = isinstance(nxt, ReLU)
            ops.append(LinearOp(layer, relu=fused, resolve=resolve))
            index += 2 if fused else 1
        elif isinstance(layer, FireModule):
            ops.append(FireOp(layer, resolve=resolve))
            index += 1
        elif isinstance(layer, ReLU):
            ops.append(ReluOp())
            index += 1
        elif isinstance(layer, MaxPool2d):
            ops.append(MaxPoolOp(layer.kernel_size, layer.stride))
            index += 1
        elif isinstance(layer, AvgPool2d):
            ops.append(AvgPoolOp(layer.kernel_size, layer.stride))
            index += 1
        elif isinstance(layer, GlobalAvgPool2d):
            ops.append(GlobalAvgPoolOp())
            index += 1
        elif isinstance(layer, Flatten):
            ops.append(FlattenOp())
            index += 1
        else:
            raise UnsupportedLayerError(
                f"no inference lowering for {type(layer).__name__}"
            )
    if not ops:
        raise UnsupportedLayerError("network lowered to an empty plan")
    return InferencePlan(ops, name=network.name)
