"""Training loop.

Implements the paper's §4.3 recipe by default: SGD with momentum 0.9,
learning rate 0.001, batch size 24, step LR decay (x0.1 / 30 epochs).
The loop is deliberately plain — shuffle, batch, forward, loss, backward,
step — with per-epoch metrics recorded for the crawl-phase experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.network import Sequential
from repro.nn.optim import SGD, StepLR
from repro.utils.rng import spawn_rng


@dataclass
class TrainConfig:
    """Hyper-parameters; defaults follow the paper (§4.3)."""

    lr: float = 0.001
    momentum: float = 0.9
    batch_size: int = 24
    epochs: int = 10
    lr_step_epochs: int = 30
    lr_gamma: float = 0.1
    weight_decay: float = 0.0
    seed: int = 0
    shuffle: bool = True
    verbose: bool = False


@dataclass
class EpochStats:
    epoch: int
    loss: float
    train_accuracy: float
    val_accuracy: Optional[float]
    lr: float


@dataclass
class TrainReport:
    """Outcome of a training run."""

    epochs: List[EpochStats] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epochs[-1].loss if self.epochs else float("nan")

    @property
    def final_train_accuracy(self) -> float:
        return self.epochs[-1].train_accuracy if self.epochs else float("nan")

    @property
    def final_val_accuracy(self) -> Optional[float]:
        return self.epochs[-1].val_accuracy if self.epochs else None


class Trainer:
    """Mini-batch trainer for a :class:`Sequential` classifier."""

    def __init__(self, network: Sequential, config: TrainConfig) -> None:
        self.network = network
        self.config = config
        self.loss_fn = SoftmaxCrossEntropy()
        self.optimizer = SGD(
            network.parameters(),
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        self.scheduler = StepLR(
            self.optimizer,
            step_epochs=config.lr_step_epochs,
            gamma=config.lr_gamma,
        )

    def fit(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        val_images: Optional[np.ndarray] = None,
        val_labels: Optional[np.ndarray] = None,
    ) -> TrainReport:
        """Train on ``images``/``labels`` (NCHW / int class ids)."""
        if images.shape[0] != labels.shape[0]:
            raise ValueError("images and labels disagree on batch size")
        if images.ndim != 4:
            raise ValueError("expected NCHW images")

        rng = spawn_rng(self.config.seed, "trainer")
        report = TrainReport()
        count = images.shape[0]

        for epoch in range(self.config.epochs):
            self.network.train()
            order = np.arange(count)
            if self.config.shuffle:
                rng.shuffle(order)

            epoch_loss = 0.0
            correct = 0
            batches = 0
            for start in range(0, count, self.config.batch_size):
                idx = order[start:start + self.config.batch_size]
                batch_x = images[idx]
                batch_y = labels[idx]

                logits = self.network.forward(batch_x)
                loss, probs = self.loss_fn.forward(logits, batch_y)
                self.optimizer.zero_grad()
                self.network.backward(self.loss_fn.backward())
                self.optimizer.step()

                epoch_loss += loss
                correct += int((probs.argmax(axis=1) == batch_y).sum())
                batches += 1

            val_acc = None
            if val_images is not None and val_labels is not None:
                val_acc = self.evaluate(val_images, val_labels)

            stats = EpochStats(
                epoch=epoch,
                loss=epoch_loss / max(batches, 1),
                train_accuracy=correct / max(count, 1),
                val_accuracy=val_acc,
                lr=self.scheduler.current_lr,
            )
            report.epochs.append(stats)
            self.scheduler.epoch_end()
            if self.config.verbose:
                print(
                    f"epoch {epoch}: loss={stats.loss:.4f} "
                    f"train_acc={stats.train_accuracy:.3f} "
                    f"val_acc={val_acc}"
                )
        self.network.eval()
        return report

    def evaluate(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 64,
    ) -> float:
        """Accuracy of the network on a labelled set (eval mode)."""
        predictions = self.predict(images, batch_size)
        return float((predictions == labels).mean())

    def predict(
        self, images: np.ndarray, batch_size: int = 64
    ) -> np.ndarray:
        """Class predictions, batched to bound memory."""
        self.network.eval()
        outputs = []
        for start in range(0, images.shape[0], batch_size):
            logits = self.network.forward(images[start:start + batch_size])
            outputs.append(logits.argmax(axis=1))
        return np.concatenate(outputs) if outputs else np.empty(0, dtype=int)
