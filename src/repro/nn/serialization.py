"""Weight serialization.

Models are saved as compressed ``.npz`` archives keyed by parameter name
order.  The on-disk size of the uncompressed float32 payload is what the
paper reports as "model size" (1.9 MB for the PERCIVAL fork), so the zoo
also exposes raw-byte accounting; this module just moves weights.
"""

from __future__ import annotations

import os
from typing import List

import numpy as np

from repro.nn.network import Sequential


def save_weights(network: Sequential, path: str) -> int:
    """Serialize all parameters of ``network`` to ``path`` (npz).

    Returns the number of parameters written.  Parameter order is the
    network's own ``parameters()`` order, which is deterministic for a
    given architecture, so ``load_weights`` can restore positionally.
    """
    params = network.parameters()
    arrays = {f"p{i:04d}": p.data for i, p in enumerate(params)}
    names = np.array([p.name for p in params])
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, __names__=names, **arrays)
    return len(params)


def load_weights(network: Sequential, path: str, strict: bool = True) -> int:
    """Load weights saved by :func:`save_weights` into ``network``.

    With ``strict=True`` (default) every parameter must match in count and
    shape.  With ``strict=False``, shape-compatible prefix parameters are
    loaded and the rest left untouched — this is the transfer-learning
    path the paper uses (§4.3: initialize conv1 + the first fire blocks
    from an ImageNet-pretrained SqueezeNet, train the rest fresh).
    """
    with np.load(path, allow_pickle=False) as archive:
        keys = sorted(k for k in archive.files if k.startswith("p"))
        stored: List[np.ndarray] = [archive[k] for k in keys]

    params = network.parameters()
    if strict and len(stored) != len(params):
        raise ValueError(
            f"parameter count mismatch: file has {len(stored)}, "
            f"network has {len(params)}"
        )

    loaded = 0
    for param, array in zip(params, stored):
        if param.data.shape != array.shape:
            if strict:
                raise ValueError(
                    f"shape mismatch for {param.name}: "
                    f"{param.data.shape} vs {array.shape}"
                )
            continue
        param.data[...] = array
        loaded += 1
    return loaded
