"""Weight serialization.

Models are saved as compressed ``.npz`` archives keyed by parameter name
order.  The on-disk size of the uncompressed float32 payload is what the
paper reports as "model size" (1.9 MB for the PERCIVAL fork), so the zoo
also exposes raw-byte accounting; this module just moves weights.

Persistence goes through the same precision pipeline as the
shared-memory worker handoff (``repro.nn.artifact``): ``save_weights``
can lower the payload to ``fp16`` or ``int8`` storage (per-channel
scales saved alongside as ``s####`` arrays), and ``load_weights``
dequantizes transparently — an archive is self-describing through its
storage dtypes and scale arrays, so fp32 archives from before the
precision pipeline load unchanged.
"""

from __future__ import annotations

import os
from typing import List, Optional

import numpy as np

from repro.nn.artifact import WeightArtifact
from repro.nn.network import Sequential
from repro.nn.quantize import FP32, dequantize_array, validate_precision


def save_weights(
    network: Sequential, path: str, precision: str = FP32
) -> int:
    """Serialize all parameters of ``network`` to ``path`` (npz).

    Returns the number of parameters written.  Parameter order is the
    network's own ``parameters()`` order, which is deterministic for a
    given architecture, so ``load_weights`` can restore positionally.
    ``precision`` selects the storage form: ``"fp32"`` (default,
    byte-identical to the pre-precision archive format), ``"fp16"``,
    or ``"int8"`` (per-channel scales stored as ``s####`` siblings).
    """
    precision = validate_precision(precision)
    artifact = WeightArtifact.from_network(network, precision)
    arrays = {}
    for index, entry in enumerate(artifact.entries):
        arrays[f"p{index:04d}"] = artifact.stored(index)
        if entry.scales is not None:
            arrays[f"s{index:04d}"] = np.asarray(
                entry.scales, dtype=np.float32
            )
    names = np.array([entry.name for entry in artifact.entries])
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, __names__=names, **arrays)
    return len(artifact.entries)


def load_weights(network: Sequential, path: str, strict: bool = True) -> int:
    """Load weights saved by :func:`save_weights` into ``network``.

    Storage dtypes are dequantized back to fp32 on the way in (fp16 by
    cast, int8 through the stored per-channel scales); the network's
    parameters always end up fp32 regardless of how the archive was
    written.

    With ``strict=True`` (default) every parameter must match in count and
    shape.  With ``strict=False``, shape-compatible prefix parameters are
    loaded and the rest left untouched — this is the transfer-learning
    path the paper uses (§4.3: initialize conv1 + the first fire blocks
    from an ImageNet-pretrained SqueezeNet, train the rest fresh).
    """
    with np.load(path, allow_pickle=False) as archive:
        keys = sorted(k for k in archive.files if k.startswith("p"))
        stored: List[np.ndarray] = [archive[k] for k in keys]
        scales: List[Optional[np.ndarray]] = [
            archive[f"s{k[1:]}"] if f"s{k[1:]}" in archive.files else None
            for k in keys
        ]

    params = network.parameters()
    if strict and len(stored) != len(params):
        raise ValueError(
            f"parameter count mismatch: file has {len(stored)}, "
            f"network has {len(params)}"
        )

    loaded = 0
    for param, array, scale in zip(params, stored, scales):
        if param.data.shape != array.shape:
            if strict:
                raise ValueError(
                    f"shape mismatch for {param.name}: "
                    f"{param.data.shape} vs {array.shape}"
                )
            continue
        param.data[...] = dequantize_array(array, scale)
        loaded += 1
    return loaded
