"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np


def kaiming_normal(
    shape: tuple,
    rng: np.random.Generator,
    dtype: np.dtype = np.float32,
) -> np.ndarray:
    """He/Kaiming-normal initialization for ReLU networks.

    Fan-in is computed from the trailing axes (in_channels * kh * kw for
    conv weights, in_features for linear weights).
    """
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else int(shape[0])
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(dtype)


def xavier_uniform(
    shape: tuple,
    rng: np.random.Generator,
    dtype: np.dtype = np.float32,
) -> np.ndarray:
    """Glorot/Xavier-uniform initialization (used for the final classifier
    conv, where the output feeds a softmax rather than a ReLU)."""
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else int(shape[0])
    fan_out = int(shape[0])
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape).astype(dtype)
