"""Low-level numeric kernels: im2col convolution and windowed pooling.

Convolution is implemented as im2col + GEMM, the standard CPU strategy.
``im2col`` unrolls every receptive field into a row, turning convolution
into one large matrix multiply that BLAS executes efficiently; ``col2im``
scatters gradients back, summing where receptive fields overlap.

Two families of kernels live here:

* **Training kernels** (``conv2d_forward`` / ``conv2d_backward``,
  ``maxpool2d_forward`` / ``maxpool2d_backward``, ...) retain whatever
  the backward pass needs (the im2col matrix, argmax indices).
* **Inference kernels** (``conv2d_infer``, ``maxpool2d_infer``, ...)
  retain nothing.  They additionally take shortcuts the training path
  cannot: a 1x1 convolution skips im2col entirely (reshape + batched
  GEMM — most of PercivalNet's FLOPs are 1x1 squeeze/expand convs), the
  general case unrolls receptive fields through a zero-copy
  ``as_strided`` view, ReLU can be fused in-place into the GEMM output,
  and callers may pass a reusable scratch buffer for the GEMM result.

All kernels take and return NCHW arrays.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output extent of a convolution/pooling along one axis."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size: input={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


def im2col(
    images: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Unroll receptive fields of an NCHW batch into a 2-D matrix.

    Returns an array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``
    where each row is one flattened receptive field.
    """
    batch, channels, height, width = images.shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)

    if pad > 0:
        images = np.pad(
            images,
            ((0, 0), (0, 0), (pad, pad), (pad, pad)),
            mode="constant",
        )

    cols = np.empty(
        (batch, channels, kernel_h, kernel_w, out_h, out_w),
        dtype=images.dtype,
    )
    for ky in range(kernel_h):
        y_end = ky + stride * out_h
        for kx in range(kernel_w):
            x_end = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = images[
                :, :, ky:y_end:stride, kx:x_end:stride
            ]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, -1
    )


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Inverse of :func:`im2col` for gradient scattering.

    Overlapping receptive fields accumulate (sum) into the same input
    location, which is exactly the convolution input-gradient semantics.
    """
    batch, channels, height, width = input_shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)

    cols = cols.reshape(
        batch, out_h, out_w, channels, kernel_h, kernel_w
    ).transpose(0, 3, 4, 5, 1, 2)

    padded = np.zeros(
        (batch, channels, height + 2 * pad, width + 2 * pad),
        dtype=cols.dtype,
    )
    for ky in range(kernel_h):
        y_end = ky + stride * out_h
        for kx in range(kernel_w):
            x_end = kx + stride * out_w
            padded[:, :, ky:y_end:stride, kx:x_end:stride] += cols[
                :, :, ky, kx, :, :
            ]
    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


def conv2d_forward(
    images: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    stride: int,
    pad: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Convolution forward pass.

    ``weight`` has shape ``(out_channels, in_channels, kh, kw)``.  Returns
    the output and the im2col matrix (cached for the backward pass).
    """
    batch = images.shape[0]
    out_channels, _, kernel_h, kernel_w = weight.shape
    out_h = conv_output_size(images.shape[2], kernel_h, stride, pad)
    out_w = conv_output_size(images.shape[3], kernel_w, stride, pad)

    cols = im2col(images, kernel_h, kernel_w, stride, pad)
    flat_weight = weight.reshape(out_channels, -1)
    out = cols @ flat_weight.T + bias
    out = out.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)
    return out, cols


def conv2d_backward(
    grad_out: np.ndarray,
    cols: np.ndarray,
    weight: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    stride: int,
    pad: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convolution backward pass.

    Returns ``(grad_input, grad_weight, grad_bias)`` given the upstream
    gradient in NCHW layout and the cached im2col matrix.
    """
    out_channels, _, kernel_h, kernel_w = weight.shape
    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, out_channels)

    grad_weight = (grad_flat.T @ cols).reshape(weight.shape)
    grad_bias = grad_flat.sum(axis=0)

    grad_cols = grad_flat @ weight.reshape(out_channels, -1)
    grad_input = col2im(
        grad_cols, input_shape, kernel_h, kernel_w, stride, pad
    )
    return grad_input, grad_weight, grad_bias


def maxpool2d_forward(
    images: np.ndarray, kernel: int, stride: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Max pooling forward; returns output and argmax indices for backward.

    Implemented via im2col over each channel independently (channels are
    folded into the batch axis), which handles overlapping windows such as
    SqueezeNet's 3x3/stride-2 pools.
    """
    batch, channels, height, width = images.shape
    folded = images.reshape(batch * channels, 1, height, width)
    cols = im2col(folded, kernel, kernel, stride, pad=0)
    argmax = cols.argmax(axis=1)
    out_vals = cols[np.arange(cols.shape[0]), argmax]

    out_h = conv_output_size(height, kernel, stride, 0)
    out_w = conv_output_size(width, kernel, stride, 0)
    out = out_vals.reshape(batch, channels, out_h, out_w)
    return out, argmax


def maxpool2d_backward(
    grad_out: np.ndarray,
    argmax: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    """Max pooling backward: route gradients to the argmax positions."""
    batch, channels, height, width = input_shape
    rows = argmax.shape[0]
    grad_cols = np.zeros((rows, kernel * kernel), dtype=grad_out.dtype)
    grad_cols[np.arange(rows), argmax] = grad_out.reshape(-1)
    grad_folded = col2im(
        grad_cols,
        (batch * channels, 1, height, width),
        kernel,
        kernel,
        stride,
        pad=0,
    )
    return grad_folded.reshape(batch, channels, height, width)


def avgpool2d_forward(
    images: np.ndarray, kernel: int, stride: int
) -> np.ndarray:
    """Average pooling forward pass (no cache needed for backward)."""
    batch, channels, height, width = images.shape
    folded = images.reshape(batch * channels, 1, height, width)
    cols = im2col(folded, kernel, kernel, stride, pad=0)
    out_vals = cols.mean(axis=1)
    out_h = conv_output_size(height, kernel, stride, 0)
    out_w = conv_output_size(width, kernel, stride, 0)
    return out_vals.reshape(batch, channels, out_h, out_w)


def avgpool2d_backward(
    grad_out: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    """Average pooling backward: spread gradient uniformly over windows."""
    batch, channels, height, width = input_shape
    window = kernel * kernel
    grad_flat = grad_out.reshape(-1, 1) / window
    grad_cols = np.broadcast_to(
        grad_flat, (grad_flat.shape[0], window)
    ).copy()
    grad_folded = col2im(
        grad_cols,
        (batch * channels, 1, height, width),
        kernel,
        kernel,
        stride,
        pad=0,
    )
    return grad_folded.reshape(batch, channels, height, width)


# ----------------------------------------------------------------------
# Inference kernels: cache-free, fused, shortcut-taking.
# ----------------------------------------------------------------------

def relu_inplace(x: np.ndarray) -> np.ndarray:
    """In-place ReLU; returns ``x`` (no allocation)."""
    return np.maximum(x, 0.0, out=x)


def pad2d(images: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the two spatial axes of an NCHW batch.

    ``np.pad`` costs ~30 us of python-level bookkeeping per call, which
    dominates small-model inference; a calloc + one block copy is an
    order of magnitude cheaper.
    """
    if pad <= 0:
        return images
    batch, channels, height, width = images.shape
    padded = np.zeros(
        (batch, channels, height + 2 * pad, width + 2 * pad),
        dtype=images.dtype,
    )
    padded[:, :, pad:pad + height, pad:pad + width] = images
    return padded


def sliding_windows(
    images: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Zero-copy view of all receptive fields via stride tricks.

    Returns a read-only ``(N, C, out_h, out_w, kh, kw)`` view — no data
    is moved (beyond the pad copy when ``pad > 0``).
    :func:`conv2d_infer` gathers this view straight into its
    batched-matmul layout; :func:`im2col_strided` reshapes it into the
    classic row-major im2col matrix.
    """
    out_h = conv_output_size(images.shape[2], kernel_h, stride, pad)
    out_w = conv_output_size(images.shape[3], kernel_w, stride, pad)
    images = pad2d(images, pad)
    batch, channels = images.shape[:2]
    stride_n, stride_c, stride_h, stride_w = images.strides
    return np.lib.stride_tricks.as_strided(
        images,
        shape=(batch, channels, out_h, out_w, kernel_h, kernel_w),
        strides=(
            stride_n, stride_c,
            stride_h * stride, stride_w * stride,
            stride_h, stride_w,
        ),
        writeable=False,
    )


def im2col_strided(
    images: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """:func:`im2col`-compatible matrix built from a strided view.

    Produces the identical ``(N * out_h * out_w, C * kh * kw)`` layout
    but replaces the python loop over kernel offsets with one reshape of
    the :func:`sliding_windows` view (a single fused copy).  Kept as
    the drop-in fast equivalent of :func:`im2col` for verification and
    external callers; :func:`conv2d_infer` itself gathers windows into
    a batched-matmul layout instead (whole-row copy runs — faster).
    """
    windows = sliding_windows(images, kernel_h, kernel_w, stride, pad)
    batch, channels, out_h, out_w = windows.shape[:4]
    return windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch * out_h * out_w, channels * kernel_h * kernel_w
    )


def conv2d_scratch_shape(
    input_shape: Tuple[int, int, int, int],
    weight_shape: Tuple[int, int, int, int],
    stride: int,
    pad: int,
) -> Tuple[int, ...]:
    """Shape of the optional ``out`` scratch buffer of :func:`conv2d_infer`.

    The 1x1 shortcut and the general window-contraction path write into
    differently shaped buffers; callers that pool scratch memory ask
    here instead of hard-coding the layout.
    """
    batch = input_shape[0]
    out_channels, _, kernel_h, kernel_w = weight_shape
    out_h = conv_output_size(input_shape[2], kernel_h, stride, pad)
    out_w = conv_output_size(input_shape[3], kernel_w, stride, pad)
    return (batch, out_channels, out_h * out_w)


def conv1x1_infer(
    images: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    stride: int = 1,
    pad: int = 0,
    relu: bool = False,
    out: Optional[np.ndarray] = None,
    flat_weight: Optional[np.ndarray] = None,
) -> np.ndarray:
    """1x1-convolution fast path: no im2col, just reshape + batched GEMM.

    A 1x1 convolution is a per-pixel channel mix, i.e. one matrix
    multiply ``(O, C) @ (C, H*W)`` per image; ``np.matmul`` broadcasts
    it over the batch in a single BLAS call.  Most of PercivalNet's
    FLOPs (squeeze/expand-1x1/classifier convs) take this path.
    ``flat_weight`` optionally passes a precomputed ``(O, C)`` view of
    the weights (compiled plans cache it per op).
    """
    out_channels = weight.shape[0]
    if flat_weight is None:
        flat_weight = weight.reshape(out_channels, weight.shape[1])
    images = pad2d(images, pad)
    if stride > 1:
        images = images[:, :, ::stride, ::stride]
    batch, channels, out_h, out_w = images.shape
    flat = images.reshape(batch, channels, out_h * out_w)
    result = np.matmul(flat_weight, flat, out=out)
    result += bias[:, None]
    if relu:
        relu_inplace(result)
    return result.reshape(batch, out_channels, out_h, out_w)


def conv2d_infer(
    images: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    stride: int,
    pad: int,
    relu: bool = False,
    out: Optional[np.ndarray] = None,
    flat_weight: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Inference-only convolution: no cols retention, optional fusions.

    Matches :func:`conv2d_forward` numerically but returns only the
    output.  1x1 kernels skip im2col entirely (reshape + batched GEMM).
    The general case gathers the :func:`sliding_windows` view into
    batched-matmul layout ``(N, C*kh*kw, oh*ow)`` — the innermost copy
    runs are whole output rows, ~3x faster than the row-major im2col
    gather — and contracts it against the flat weights in one broadcast
    GEMM, leaving a contiguous NCHW output.  ``relu=True`` applies ReLU
    in-place on the GEMM result (conv+ReLU fusion); ``out`` optionally
    receives the GEMM result — its required shape comes from
    :func:`conv2d_scratch_shape`; ``flat_weight`` optionally passes a
    precomputed ``(O, C*kh*kw)`` view of the weights.  The returned
    array may alias ``out``.
    """
    out_channels, in_channels, kernel_h, kernel_w = weight.shape
    if kernel_h == 1 and kernel_w == 1:
        return conv1x1_infer(
            images, weight, bias, stride, pad,
            relu=relu, out=out, flat_weight=flat_weight,
        )
    windows = sliding_windows(images, kernel_h, kernel_w, stride, pad)
    batch, _, out_h, out_w = windows.shape[:4]
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(
        batch, in_channels * kernel_h * kernel_w, out_h * out_w
    )
    if flat_weight is None:
        flat_weight = weight.reshape(out_channels, -1)
    result = np.matmul(flat_weight, cols, out=out)
    result += bias[:, None]
    if relu:
        relu_inplace(result)
    return result.reshape(batch, out_channels, out_h, out_w)


def _window_tiles(
    images: np.ndarray, kernel: int, stride: int
):
    """Yield one strided (N, C, out_h, out_w) view per window offset.

    Accumulating an elementwise reduction over these k*k views is far
    faster than a ufunc ``reduce`` over the 6-d strided-window view
    (~20x at PercivalNet's feature-map sizes) and handles overlapping
    windows the same way.
    """
    out_h = conv_output_size(images.shape[2], kernel, stride, 0)
    out_w = conv_output_size(images.shape[3], kernel, stride, 0)
    for offset_y in range(kernel):
        y_end = offset_y + stride * out_h
        for offset_x in range(kernel):
            x_end = offset_x + stride * out_w
            yield images[:, :, offset_y:y_end:stride,
                         offset_x:x_end:stride]


def maxpool2d_infer(
    images: np.ndarray, kernel: int, stride: int
) -> np.ndarray:
    """Max pooling without argmax retention."""
    result: Optional[np.ndarray] = None
    for tile in _window_tiles(images, kernel, stride):
        if result is None:
            result = np.ascontiguousarray(tile)
        else:
            np.maximum(result, tile, out=result)
    assert result is not None
    return result


def avgpool2d_infer(
    images: np.ndarray, kernel: int, stride: int
) -> np.ndarray:
    """Average pooling without the im2col materialization."""
    result: Optional[np.ndarray] = None
    for tile in _window_tiles(images, kernel, stride):
        if result is None:
            result = np.ascontiguousarray(tile)
        else:
            result += tile
    assert result is not None
    result /= kernel * kernel
    return result
