"""Low-level numeric kernels: im2col convolution and windowed pooling.

Convolution is implemented as im2col + GEMM, the standard CPU strategy.
``im2col`` unrolls every receptive field into a row, turning convolution
into one large matrix multiply that BLAS executes efficiently; ``col2im``
scatters gradients back, summing where receptive fields overlap.

All kernels take and return NCHW arrays.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output extent of a convolution/pooling along one axis."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size: input={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


def im2col(
    images: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Unroll receptive fields of an NCHW batch into a 2-D matrix.

    Returns an array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``
    where each row is one flattened receptive field.
    """
    batch, channels, height, width = images.shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)

    if pad > 0:
        images = np.pad(
            images,
            ((0, 0), (0, 0), (pad, pad), (pad, pad)),
            mode="constant",
        )

    cols = np.empty(
        (batch, channels, kernel_h, kernel_w, out_h, out_w),
        dtype=images.dtype,
    )
    for ky in range(kernel_h):
        y_end = ky + stride * out_h
        for kx in range(kernel_w):
            x_end = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = images[
                :, :, ky:y_end:stride, kx:x_end:stride
            ]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, -1
    )


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Inverse of :func:`im2col` for gradient scattering.

    Overlapping receptive fields accumulate (sum) into the same input
    location, which is exactly the convolution input-gradient semantics.
    """
    batch, channels, height, width = input_shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)

    cols = cols.reshape(
        batch, out_h, out_w, channels, kernel_h, kernel_w
    ).transpose(0, 3, 4, 5, 1, 2)

    padded = np.zeros(
        (batch, channels, height + 2 * pad, width + 2 * pad),
        dtype=cols.dtype,
    )
    for ky in range(kernel_h):
        y_end = ky + stride * out_h
        for kx in range(kernel_w):
            x_end = kx + stride * out_w
            padded[:, :, ky:y_end:stride, kx:x_end:stride] += cols[
                :, :, ky, kx, :, :
            ]
    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


def conv2d_forward(
    images: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    stride: int,
    pad: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Convolution forward pass.

    ``weight`` has shape ``(out_channels, in_channels, kh, kw)``.  Returns
    the output and the im2col matrix (cached for the backward pass).
    """
    batch = images.shape[0]
    out_channels, _, kernel_h, kernel_w = weight.shape
    out_h = conv_output_size(images.shape[2], kernel_h, stride, pad)
    out_w = conv_output_size(images.shape[3], kernel_w, stride, pad)

    cols = im2col(images, kernel_h, kernel_w, stride, pad)
    flat_weight = weight.reshape(out_channels, -1)
    out = cols @ flat_weight.T + bias
    out = out.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)
    return out, cols


def conv2d_backward(
    grad_out: np.ndarray,
    cols: np.ndarray,
    weight: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    stride: int,
    pad: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convolution backward pass.

    Returns ``(grad_input, grad_weight, grad_bias)`` given the upstream
    gradient in NCHW layout and the cached im2col matrix.
    """
    out_channels, _, kernel_h, kernel_w = weight.shape
    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, out_channels)

    grad_weight = (grad_flat.T @ cols).reshape(weight.shape)
    grad_bias = grad_flat.sum(axis=0)

    grad_cols = grad_flat @ weight.reshape(out_channels, -1)
    grad_input = col2im(
        grad_cols, input_shape, kernel_h, kernel_w, stride, pad
    )
    return grad_input, grad_weight, grad_bias


def maxpool2d_forward(
    images: np.ndarray, kernel: int, stride: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Max pooling forward; returns output and argmax indices for backward.

    Implemented via im2col over each channel independently (channels are
    folded into the batch axis), which handles overlapping windows such as
    SqueezeNet's 3x3/stride-2 pools.
    """
    batch, channels, height, width = images.shape
    folded = images.reshape(batch * channels, 1, height, width)
    cols = im2col(folded, kernel, kernel, stride, pad=0)
    argmax = cols.argmax(axis=1)
    out_vals = cols[np.arange(cols.shape[0]), argmax]

    out_h = conv_output_size(height, kernel, stride, 0)
    out_w = conv_output_size(width, kernel, stride, 0)
    out = out_vals.reshape(batch, channels, out_h, out_w)
    return out, argmax


def maxpool2d_backward(
    grad_out: np.ndarray,
    argmax: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    """Max pooling backward: route gradients to the argmax positions."""
    batch, channels, height, width = input_shape
    rows = argmax.shape[0]
    grad_cols = np.zeros((rows, kernel * kernel), dtype=grad_out.dtype)
    grad_cols[np.arange(rows), argmax] = grad_out.reshape(-1)
    grad_folded = col2im(
        grad_cols,
        (batch * channels, 1, height, width),
        kernel,
        kernel,
        stride,
        pad=0,
    )
    return grad_folded.reshape(batch, channels, height, width)


def avgpool2d_forward(
    images: np.ndarray, kernel: int, stride: int
) -> np.ndarray:
    """Average pooling forward pass (no cache needed for backward)."""
    batch, channels, height, width = images.shape
    folded = images.reshape(batch * channels, 1, height, width)
    cols = im2col(folded, kernel, kernel, stride, pad=0)
    out_vals = cols.mean(axis=1)
    out_h = conv_output_size(height, kernel, stride, 0)
    out_w = conv_output_size(width, kernel, stride, 0)
    return out_vals.reshape(batch, channels, out_h, out_w)


def avgpool2d_backward(
    grad_out: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    """Average pooling backward: spread gradient uniformly over windows."""
    batch, channels, height, width = input_shape
    window = kernel * kernel
    grad_flat = grad_out.reshape(-1, 1) / window
    grad_cols = np.broadcast_to(
        grad_flat, (grad_flat.shape[0], window)
    ).copy()
    grad_folded = col2im(
        grad_cols,
        (batch * channels, 1, height, width),
        kernel,
        kernel,
        stride,
        pad=0,
    )
    return grad_folded.reshape(batch, channels, height, width)
