"""Trainable parameter container."""

from __future__ import annotations

import numpy as np


class Parameter:
    """A named trainable array with an accumulated gradient.

    The framework has no autograd tape; layers write ``grad`` during their
    explicit backward pass and optimizers consume it.  ``grad`` is reset by
    the optimizer's ``zero_grad``.
    """

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        self.data = np.asarray(data)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of scalar elements."""
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        """Serialized size in bytes (raw array payload)."""
        return int(self.data.nbytes)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"
