"""SqueezeNet Fire module.

A Fire module (Iandola et al., 2016) is a squeeze layer (1x1 conv that
cuts the channel count) followed by two parallel expand convolutions
(1x1 and 3x3) whose outputs are concatenated along the channel axis.
The squeeze step is what makes the network small: the expensive 3x3
filters only ever see the reduced channel count.

The module is itself a :class:`~repro.nn.layers.Layer`, composing its
internal convolutions explicitly — this keeps the overall network a flat
``Sequential`` without needing general DAG autograd.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.layers import Conv2d, Layer, ReLU
from repro.nn.tensor import Parameter


class FireModule(Layer):
    """squeeze(1x1) -> ReLU -> [expand1x1 || expand3x3] -> ReLU -> concat."""

    def __init__(
        self,
        in_channels: int,
        squeeze_channels: int,
        expand_channels: int,
        rng: Optional[np.random.Generator] = None,
        name: str = "fire",
    ) -> None:
        if expand_channels % 2:
            raise ValueError(
                "expand_channels must be even (split across 1x1 and 3x3)"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        half = expand_channels // 2
        self.squeeze = Conv2d(
            in_channels, squeeze_channels, kernel_size=1,
            rng=rng, name=f"{name}.squeeze",
        )
        self.squeeze_relu = ReLU()
        self.expand1x1 = Conv2d(
            squeeze_channels, half, kernel_size=1,
            rng=rng, name=f"{name}.expand1x1",
        )
        self.expand3x3 = Conv2d(
            squeeze_channels, half, kernel_size=3, padding=1,
            rng=rng, name=f"{name}.expand3x3",
        )
        self.expand_relu = ReLU()
        self.in_channels = in_channels
        self.squeeze_channels = squeeze_channels
        self.expand_channels = expand_channels
        self._half = half

    def forward(self, x: np.ndarray) -> np.ndarray:
        squeezed = self.squeeze_relu(self.squeeze(x))
        left = self.expand1x1(squeezed)
        right = self.expand3x3(squeezed)
        return self.expand_relu(
            np.concatenate([left, right], axis=1)
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_cat = self.expand_relu.backward(grad_out)
        grad_left = grad_cat[:, : self._half]
        grad_right = grad_cat[:, self._half:]
        grad_squeezed = self.expand1x1.backward(grad_left)
        grad_squeezed = grad_squeezed + self.expand3x3.backward(grad_right)
        grad_squeezed = self.squeeze_relu.backward(grad_squeezed)
        return self.squeeze.backward(grad_squeezed)

    def parameters(self) -> List[Parameter]:
        return (
            self.squeeze.parameters()
            + self.expand1x1.parameters()
            + self.expand3x3.parameters()
        )

    def sub_layers(self):
        return (
            self.squeeze, self.squeeze_relu,
            self.expand1x1, self.expand3x3, self.expand_relu,
        )
