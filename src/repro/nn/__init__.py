"""A from-scratch numpy deep-learning framework.

The paper trains and ships a compressed SqueezeNet fork; no deep-learning
runtime is available offline, so this package implements the required
operator set directly on numpy:

* convolution (im2col + GEMM, full backward pass),
* max / global-average pooling,
* ReLU, dropout, channel concatenation (for Fire modules),
* softmax cross-entropy,
* SGD with momentum and step learning-rate decay (the paper's §4.3 recipe),
* weight initialization, ``.npz`` serialization, and a training loop,
* a compiled inference fast path (``compile_inference``): fused,
  cache-free kernels for eval-mode forward passes (see
  ``repro.nn.inference`` and ``docs/inference.md``),
* precision-aware weight artifacts (``repro.nn.artifact`` +
  ``repro.nn.quantize``): fp32/fp16/int8 storage with per-channel
  scales, one packed buffer shared by plan compilation, serialization,
  and the shared-memory worker handoff.

Layout convention is NCHW throughout. Every layer implements
``forward``/``backward`` explicitly (no taped autograd) which keeps the
framework small, auditable, and straightforward to gradient-check.
"""

from repro.nn.tensor import Parameter
from repro.nn.layers import (
    Layer,
    Conv2d,
    MaxPool2d,
    GlobalAvgPool2d,
    AvgPool2d,
    ReLU,
    Dropout,
    Flatten,
    Linear,
    Identity,
)
from repro.nn.fire import FireModule
from repro.nn.network import Sequential
from repro.nn.artifact import ArtifactEntry, WeightArtifact
from repro.nn.quantize import (
    PRECISIONS,
    dequantize_array,
    quantize_array,
    validate_precision,
)
from repro.nn.inference import (
    InferencePlan,
    UnsupportedLayerError,
    compile_inference,
)
from repro.nn.loss import SoftmaxCrossEntropy, softmax
from repro.nn.optim import SGD, StepLR
from repro.nn.serialization import save_weights, load_weights
from repro.nn.trainer import Trainer, TrainConfig, TrainReport
from repro.nn.gradcheck import numerical_gradient, check_layer_gradients

__all__ = [
    "Parameter",
    "Layer",
    "Conv2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "AvgPool2d",
    "ReLU",
    "Dropout",
    "Flatten",
    "Linear",
    "Identity",
    "FireModule",
    "Sequential",
    "ArtifactEntry",
    "WeightArtifact",
    "PRECISIONS",
    "dequantize_array",
    "quantize_array",
    "validate_precision",
    "InferencePlan",
    "UnsupportedLayerError",
    "compile_inference",
    "SoftmaxCrossEntropy",
    "softmax",
    "SGD",
    "StepLR",
    "save_weights",
    "load_weights",
    "Trainer",
    "TrainConfig",
    "TrainReport",
    "numerical_gradient",
    "check_layer_gradients",
]
