"""Weight quantization kernels.

The storage-side half of the precision pipeline (see
``repro.nn.artifact`` for the packaging layer): fp32 tensors are
lowered to a smaller *storage* dtype once, shipped/persisted in that
form, and dequantized back to fp32 exactly once before any GEMM — the
compute path never runs reduced-precision math.

Supported precisions:

* ``fp32`` — passthrough (the identity storage).
* ``fp16`` — a plain ``astype`` cast; relative error is bounded by the
  half-precision epsilon (~5e-4), no side-band data needed.
* ``int8`` — symmetric per-channel affine quantization for tensors
  with an output-channel axis (``ndim >= 2``): each output channel
  ``c`` stores ``round(w / scale_c)`` clipped to ``[-127, 127]`` with
  ``scale_c = max|w_c| / 127``.  One fp32 scale per output channel
  travels alongside the int8 payload.  1-D tensors (biases) stay fp32
  — they are a rounding error of the model size and quantizing them
  buys nothing but accuracy risk.

The reconstruction error of the int8 path is bounded per channel by
``scale_c / 2`` (round-to-nearest never moves a value further than half
a quantization step, and clipping never triggers because the scale is
chosen from the channel maximum).  ``tests/properties`` asserts this
bound property-style.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: canonical precision names, in decreasing storage width
FP32 = "fp32"
FP16 = "fp16"
INT8 = "int8"
PRECISIONS: Tuple[str, ...] = (FP32, FP16, INT8)

#: symmetric int8 uses the full signed range minus the asymmetric -128
INT8_LEVELS = 127


def validate_precision(precision: str) -> str:
    """Return ``precision`` normalized, raising on unknown names."""
    value = str(precision).strip().lower()
    if value not in PRECISIONS:
        raise ValueError(
            f"unknown precision {precision!r}; expected one of {PRECISIONS}"
        )
    return value


def int8_scales(array: np.ndarray) -> np.ndarray:
    """Per-output-channel scales for symmetric int8 quantization.

    Channel axis is axis 0 (the ``out_channels`` axis of both conv and
    linear weights).  All-zero channels get scale 1.0 so dequantization
    stays exact without a divide-by-zero.
    """
    if array.ndim < 2:
        raise ValueError("int8 scales need an output-channel axis")
    max_abs = np.abs(array.reshape(array.shape[0], -1)).max(axis=1)
    scales = (max_abs / INT8_LEVELS).astype(np.float32)
    scales[scales == 0.0] = 1.0
    return scales


def _broadcast(scales: np.ndarray, ndim: int) -> np.ndarray:
    return np.asarray(scales, dtype=np.float32).reshape(
        (-1,) + (1,) * (ndim - 1)
    )


def quantize_int8(array: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize an fp32 tensor to ``(int8 payload, fp32 scales)``."""
    array = np.asarray(array, dtype=np.float32)
    scales = int8_scales(array)
    quantized = np.clip(
        np.rint(array / _broadcast(scales, array.ndim)),
        -INT8_LEVELS,
        INT8_LEVELS,
    ).astype(np.int8)
    return quantized, scales


def dequantize_int8(stored: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Reconstruct fp32 values from an int8 payload and its scales."""
    return stored.astype(np.float32) * _broadcast(scales, stored.ndim)


def quantize_array(
    array: np.ndarray, precision: str
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Lower one fp32 tensor to its storage form for ``precision``.

    Returns ``(stored, scales)`` where ``scales`` is ``None`` for every
    precision except int8 tensors with an output-channel axis.  Under
    ``int8``, 1-D tensors (biases) pass through as fp32.
    """
    precision = validate_precision(precision)
    array = np.ascontiguousarray(array, dtype=np.float32)
    if precision == FP16:
        return array.astype(np.float16), None
    if precision == INT8 and array.ndim >= 2:
        return quantize_int8(array)
    return array, None


def dequantize_array(
    stored: np.ndarray, scales: Optional[np.ndarray] = None
) -> np.ndarray:
    """Reconstruct fp32 values from any storage form.

    The storage dtype plus the presence of scales fully determines the
    reconstruction, so callers never need to thread the precision name
    through — manifests and archives stay self-describing.
    """
    if scales is not None:
        return dequantize_int8(stored, scales)
    if stored.dtype == np.float32:
        return stored
    return stored.astype(np.float32)
