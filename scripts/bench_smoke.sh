#!/usr/bin/env bash
# Run only the bench_smoke-marked benchmarks with reduced timing rounds.
#
# The full benchmark suite regenerates every paper table and takes
# minutes; this runs the fast-path micro-benchmarks alone in seconds —
# handy as a perf smoke check after touching the nn/ kernels.
#
#   scripts/bench_smoke.sh            # defaults: 8 rounds
#   PERCIVAL_BENCH_ROUNDS=30 scripts/bench_smoke.sh -v
set -euo pipefail
cd "$(dirname "$0")/.."
export PERCIVAL_BENCH_ROUNDS="${PERCIVAL_BENCH_ROUNDS:-8}"
# append to benchmarks/output/results_latest.txt instead of truncating
# the consolidated artifact of the last full benchmark run
export PERCIVAL_BENCH_APPEND=1
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks -m bench_smoke -q "$@"
