#!/usr/bin/env bash
# Run only the bench_smoke-marked benchmarks with reduced timing rounds.
#
# The full benchmark suite regenerates every paper table and takes
# minutes; this runs the fast-path micro-benchmarks alone in seconds —
# handy as a perf smoke check after touching the nn/ kernels, and the
# exact command CI's bench-smoke job runs.
#
#   scripts/bench_smoke.sh            # defaults: 8 rounds
#   PERCIVAL_BENCH_ROUNDS=30 scripts/bench_smoke.sh -v
#   PYTHON=python3.11 scripts/bench_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

PYTHON="${PYTHON:-python}"
if ! command -v "$PYTHON" >/dev/null 2>&1; then
    echo "bench_smoke: interpreter '$PYTHON' not found on PATH" \
         "(set PYTHON=... to pick one)" >&2
    exit 2
fi
if ! "$PYTHON" -c "import pytest" >/dev/null 2>&1; then
    echo "bench_smoke: pytest is not importable by $PYTHON —" \
         "install the test toolchain first:" >&2
    echo "    $PYTHON -m pip install numpy pytest pytest-benchmark" >&2
    exit 2
fi

export PERCIVAL_BENCH_ROUNDS="${PERCIVAL_BENCH_ROUNDS:-8}"
# append to benchmarks/output/results_latest.txt instead of truncating
# the consolidated artifact of the last full benchmark run
export PERCIVAL_BENCH_APPEND=1

rc=0
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    "$PYTHON" -m pytest benchmarks -m bench_smoke -q "$@" || rc=$?
if [ "$rc" -eq 5 ]; then
    # pytest exit code 5: nothing ran.  A renamed marker or moved
    # directory would otherwise pass CI while benchmarking nothing.
    echo "bench_smoke: zero tests matched the bench_smoke marker" >&2
    exit 1
fi
exit "$rc"
