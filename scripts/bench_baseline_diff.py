#!/usr/bin/env python
"""Diff a fresh BENCH_serving.json against the committed baseline.

CI's bench-smoke job runs this after ``scripts/bench_smoke.sh``: the
fresh machine-readable record is compared metric by metric against
``benchmarks/baselines/BENCH_serving.json`` (committed alongside the
code that produced it), a trend table is printed for every shared
metric, and the job **fails** when a gated metric regressed by more
than ``--regression-threshold`` (default 20%).

Gating policy — only metric names containing ``speedup`` or
``req_per_s`` (throughput) gate, and only in the harmful direction
(lower than baseline).  Latency percentiles, makespans, and counters
are trend-reported but never gate: wall-clock numbers move with runner
hardware, whereas speedup ratios are self-normalizing and a >20%
collapse means the optimization itself broke.  Metrics present only in
the fresh run (a new benchmark) pass with a notice so adding a
benchmark never requires a baseline in the same commit; metrics present
only in the baseline fail — a silently vanished benchmark is exactly
the regression this gate exists to catch.

Stdlib only: CI runs it with bare ``python``.
"""

from __future__ import annotations

import argparse
import json
import sys

#: substrings of metric names that gate (self-normalizing ratios and
#: throughput rates); everything else is trend-only
GATED_MARKERS = ("speedup", "req_per_s")


def is_gated(metric: str) -> bool:
    """Gate on the metric name only — ``bench.metric`` benches named
    after their headline ratio (serving_multilane_speedup) must not
    drag their counters into the gate."""
    lowered = metric.rsplit(".", 1)[-1].lower()
    return any(marker in lowered for marker in GATED_MARKERS)


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        sys.exit(f"bench_baseline_diff: cannot read {path}: {exc}")
    if not isinstance(payload, dict):
        sys.exit(f"bench_baseline_diff: {path} is not a JSON object")
    return payload


def flatten(records: dict) -> dict:
    """``{bench: {metric: value}}`` -> ``{"bench.metric": value}``,
    numeric values only (strings and lists are not diffable)."""
    flat = {}
    for bench, metrics in sorted(records.items()):
        if not isinstance(metrics, dict):
            continue
        for metric, value in sorted(metrics.items()):
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            flat[f"{bench}.{metric}"] = float(value)
    return flat


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline BENCH_serving.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly produced BENCH_serving.json")
    parser.add_argument("--regression-threshold", type=float, default=0.20,
                        help="max allowed fractional drop of a gated "
                             "metric below baseline (default 0.20)")
    args = parser.parse_args(argv)
    if not 0.0 < args.regression_threshold < 1.0:
        parser.error("--regression-threshold must be in (0, 1)")

    baseline = flatten(load(args.baseline))
    fresh = flatten(load(args.fresh))
    failures = []
    notices = []
    rows = []

    for name in sorted(set(baseline) | set(fresh)):
        base = baseline.get(name)
        now = fresh.get(name)
        if base is None:
            notices.append(f"NEW metric {name} = {now:g} "
                           "(no baseline yet; passes)")
            continue
        if now is None:
            failures.append(f"metric {name} vanished from the fresh run "
                            f"(baseline {base:g})")
            continue
        delta = (now - base) / base if base else 0.0
        gated = is_gated(name)
        verdict = "ok"
        if gated and delta < -args.regression_threshold:
            verdict = "FAIL"
            failures.append(
                f"gated metric {name} regressed "
                f"{-delta:.1%} (baseline {base:g} -> {now:g}, "
                f"threshold {args.regression_threshold:.0%})"
            )
        rows.append((name, base, now, delta,
                     "gate" if gated else "trend", verdict))

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'metric':<{width}}  {'baseline':>12}  {'fresh':>12}  "
          f"{'delta':>8}  {'kind':<5}  verdict")
    for name, base, now, delta, kind, verdict in rows:
        print(f"{name:<{width}}  {base:>12.4g}  {now:>12.4g}  "
              f"{delta:>+7.1%}  {kind:<5}  {verdict}")
    for notice in notices:
        print(notice)
    if failures:
        print()
        for failure in failures:
            print(f"REGRESSION: {failure}")
        return 1
    print("\nbench_baseline_diff: no gated regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
