"""Seeded golden-verdict regression: direct vs pooled vs served.

A fixed synthesized frame set (seeded generators, deterministic network
init) with *committed* expected P(ad) values.  Three execution paths —
the direct blocker, the sharded worker pool, and the micro-batching
serve loop — must all reproduce these numbers within the classifier's
``fast_path_tolerance``, and must agree with each other bit-for-bit.

This is the test that catches "the serving layer quietly changed a
probability": any reordering, preprocessing drift, batching bug, or
precision mix-up between the three paths lands here first.  The golden
values were generated at fp32 from the seed-0 untrained network;
quantized CI runs (``PERCIVAL_PRECISION=int8``) compare within their
own gate-derived tolerance.
"""

import numpy as np
import pytest

from repro.core import InferenceWorkerPool, PercivalBlocker, ServeSettings
from repro.serve import ArrivalEvent, ServeLoop
from repro.utils.rng import spawn_rng

#: (truth, P(ad)) per frame, committed from the fp32 seed-0 network.
#: Regenerate ONLY on an intentional model/preprocessing change, by
#: printing ``AdClassifier(PercivalConfig(precision="fp32"))
#: .ad_probabilities(_golden_frames())`` and updating this table.
GOLDEN = [
    ("ad", 0.0133231804),
    ("content", 0.0001993714),
    ("ad", 0.0118639600),
    ("content", 0.0042115068),
    ("ad", 0.0148159377),
    ("content", 0.0092863590),
    ("ad", 0.0056625442),
    ("content", 0.0103784073),
]


def _golden_frames():
    """The committed frame set: alternating seeded ads and content."""
    from repro.synth.adgen import AdSpec, generate_ad
    from repro.synth.contentgen import generate_content

    rng = spawn_rng(2024, "golden-verdicts")
    frames = []
    for index in range(len(GOLDEN)):
        if index % 2 == 0:
            frames.append(generate_ad(rng, AdSpec()))
        else:
            frames.append(generate_content(rng))
    return frames


@pytest.fixture(scope="module")
def golden_frames():
    return _golden_frames()


def _direct_probabilities(classifier, frames):
    blocker = PercivalBlocker(classifier, calibrated_latency_ms=1.0)
    return np.array(
        [blocker.decide(frame).probability for frame in frames]
    )


def _pooled_probabilities(classifier, frames):
    with InferenceWorkerPool(num_workers=2) as pool:
        pool.publish(classifier)
        blocker = PercivalBlocker(
            classifier,
            calibrated_latency_ms=1.0,
            pool=pool,
            shard_min_batch=2,
        )
        decisions = blocker.decide_many(frames)
        assert blocker.pool_fallbacks == 0, "pool path must not degrade"
    return np.array([decision.probability for decision in decisions])


def _served_probabilities(classifier, frames):
    blocker = PercivalBlocker(classifier, calibrated_latency_ms=1.0)
    events = [
        ArrivalEvent(at_ms=float(i), session_id=f"s{i % 3}", bitmap=frame)
        for i, frame in enumerate(frames)
    ]
    report = ServeLoop(
        blocker, ServeSettings(max_batch=4, max_wait_ms=2.0, max_depth=32)
    ).run(events)
    assert report.stats.conserved()
    assert not report.stats.shed
    return np.array([r.decision.probability for r in report.results])


def test_direct_path_matches_goldens(untrained_classifier, golden_frames):
    probabilities = _direct_probabilities(untrained_classifier, golden_frames)
    expected = np.array([value for _, value in GOLDEN])
    tolerance = untrained_classifier.fast_path_tolerance
    assert np.allclose(probabilities, expected, atol=tolerance), (
        f"direct P(ad) drifted past {tolerance:g}: "
        f"{list(map(float, probabilities))}"
    )


def test_all_three_paths_pinned_to_identical_outputs(
    untrained_classifier, golden_frames
):
    direct = _direct_probabilities(untrained_classifier, golden_frames)
    pooled = _pooled_probabilities(untrained_classifier, golden_frames)
    served = _served_probabilities(untrained_classifier, golden_frames)
    expected = np.array([value for _, value in GOLDEN])
    tolerance = untrained_classifier.fast_path_tolerance
    for name, probabilities in (
        ("direct", direct), ("pooled", pooled), ("served", served)
    ):
        assert np.allclose(probabilities, expected, atol=tolerance), (
            f"{name} path drifted from the goldens past {tolerance:g}"
        )
    # the three paths must agree with each other exactly: sharding and
    # serving reorganize *where* compute happens, never its result
    np.testing.assert_array_equal(direct, pooled)
    np.testing.assert_array_equal(direct, served)


def test_goldens_cover_both_classes():
    truths = [truth for truth, _ in GOLDEN]
    assert truths.count("ad") == truths.count("content") == len(GOLDEN) // 2
