"""Cascade integration with the serve loop: tier order, golden
verdicts, conservation, audit plumbing, fleet persistence."""

import asyncio
from dataclasses import replace

import numpy as np
import pytest

from repro.cascade import CascadeRouter, FrameProvenance
from repro.core import AdClassifier, PercivalBlocker, PercivalConfig, ServeSettings
from repro.serve import (
    ArrivalEvent,
    AsyncServeFront,
    FleetSimulator,
    FleetSpec,
    ServeLoop,
    TrafficSpec,
    synthesize_traffic,
)

SETTINGS = ServeSettings(max_batch=16, max_wait_ms=4.0, max_depth=256, lanes=1)
SPEC = TrafficSpec(
    sessions=8,
    frames_per_session=10,
    duplicate_fraction=0.3,
    provenance=True,
    sites=3,
    seed=21,
)


def _blocker():
    return PercivalBlocker(
        AdClassifier(PercivalConfig(calibrated_latency_ms=1.0)),
        calibrated_latency_ms=1.0,
    )


@pytest.fixture()
def traffic():
    return synthesize_traffic(SPEC)


def test_provenance_does_not_perturb_the_trace():
    """The provenance synthesizer draws from its own derived RNG
    stream: bitmaps and arrival times are bit-identical either way."""
    plain = synthesize_traffic(replace(SPEC, provenance=False))
    with_prov = synthesize_traffic(SPEC)
    assert len(plain) == len(with_prov)
    for bare, rich in zip(plain, with_prov):
        assert bare.at_ms == rich.at_ms
        assert bare.session_id == rich.session_id
        assert bare.priority == rich.priority
        np.testing.assert_array_equal(bare.bitmap, rich.bitmap)
        assert bare.provenance is None
        assert rich.provenance is not None


def test_cascade_false_is_the_pre_cascade_path(traffic, monkeypatch):
    """``cascade=False`` pins the router off even when the environment
    says on — results match a run where the knob does not exist."""
    monkeypatch.delenv("PERCIVAL_CASCADE", raising=False)
    baseline = ServeLoop(_blocker(), SETTINGS, cascade=False).run(traffic)
    monkeypatch.setenv("PERCIVAL_CASCADE", "on")
    pinned = ServeLoop(_blocker(), SETTINGS, cascade=False).run(traffic)
    assert pinned.stats.rule_hits == 0
    assert pinned.stats.cascade is None
    assert pinned.makespan_ms == baseline.makespan_ms
    for a, b in zip(baseline.results, pinned.results):
        assert (a.request_id, a.complete_ms, a.decision.is_ad) == (
            b.request_id, b.complete_ms, b.decision.is_ad
        )


def test_cascade_on_changes_no_verdicts(traffic):
    off = ServeLoop(_blocker(), SETTINGS, cascade=False).run(traffic)
    router = CascadeRouter.with_default_filterlist()
    on = ServeLoop(_blocker(), SETTINGS, cascade=router).run(traffic)
    assert off.stats.shed == on.stats.shed == 0
    off_verdicts = {r.request_id: r.decision.is_ad for r in off.results}
    on_verdicts = {r.request_id: r.decision.is_ad for r in on.results}
    assert off_verdicts == on_verdicts
    assert on.stats.rule_hits > 0
    assert on.stats.cascade is router.stats


def test_rule_hits_conserve_and_skip_the_queue(traffic):
    router = CascadeRouter.with_default_filterlist()
    report = ServeLoop(_blocker(), SETTINGS, cascade=router).run(traffic)
    stats = report.stats
    assert stats.conserved()
    rule_results = [r for r in report.results if r.rule_hit]
    assert len(rule_results) == stats.rule_hits == router.stats.rule_hits
    for result in rule_results:
        # answered at arrival: no queue wait, no lane, no memo flag
        assert result.complete_ms == result.arrival_ms
        assert result.lane == -1
        assert not result.memo_hit
        assert result.rule_tier in ("micro", "list")
        assert result.decision.from_cache
    # rule hits never occupy a batch slot (diff_hits covers runs with
    # the PERCIVAL_DIFF tier enabled in front of the cascade)
    assert (
        stats.batched_requests + stats.memo_hits + stats.coalesced
        + stats.rule_hits + stats.diff_hits == stats.answered
    )


def test_rule_tier_wins_over_memo():
    """A key that is both memoized and covered by a serving micro-rule
    is answered by the rule: tier order is rule -> memo -> queue."""
    traffic = synthesize_traffic(SPEC)
    router = CascadeRouter.with_default_filterlist()
    blocker = _blocker()
    first = ServeLoop(blocker, SETTINGS, cascade=router).run(traffic)
    # replay the same trace through the same warm blocker + router:
    # every key is now memoized AND most sources hold micro-rules
    second = ServeLoop(blocker, SETTINGS, cascade=router).run(traffic)
    assert second.stats.rule_hits > first.stats.rule_hits
    rule_keys = {r.key for r in second.results if r.rule_hit}
    memoized = [k for k in rule_keys
                if blocker.memoized_decision(key=k) is not None]
    # the memo would have answered these — the rule tier got there first
    assert memoized


def test_audits_reconcile_through_the_memo_path():
    """An audited prediction that lands on a memoized key still feeds
    the model verdict back to the rule's health ledger."""
    traffic = synthesize_traffic(SPEC)
    router = CascadeRouter(None, audit_interval=2)  # micro tier only
    blocker = _blocker()
    ServeLoop(blocker, SETTINGS, cascade=router).run(traffic)
    ServeLoop(blocker, SETTINGS, cascade=router).run(traffic)
    assert router.stats.audits > 0
    audited = [r for r in (router.cache.get(k) for k in
                           list(router.cache._rules)) if r.audits > 0]
    assert audited
    # the untrained model always agrees with its own compiled rules
    assert all(r.agreements >= r.audits > 0 or r.agreements > 0
               for r in audited)
    assert router.stats.invalidations == 0


def test_fleet_simulator_persists_the_rule_cache_across_epochs():
    spec = FleetSpec(
        epochs=3,
        base_sessions=4,
        peak_sessions=8,
        frames_per_session=8,
        seed=11,
    )
    router = CascadeRouter.with_default_filterlist()
    simulator = FleetSimulator(
        _blocker(),
        replace(SETTINGS, max_depth=512),
        cascade=router,
    )
    report = simulator.run(spec)
    assert report.conserved()
    assert simulator.cascade is router  # one router for the whole day
    assert router.stats.routed > 0
    # rules compiled in early epochs serve later ones
    assert router.stats.rule_hits > 0
    assert router.cache.serving_count > 0


def test_async_front_routes_through_the_cascade(traffic):
    router = CascadeRouter.with_default_filterlist()
    front = AsyncServeFront(_blocker(), SETTINGS, cascade=router)

    async def drive():
        decisions = []
        for event in traffic:
            decisions.append(await front.submit(
                event.bitmap,
                session_id=event.session_id,
                provenance=event.provenance,
            ))
        await front.aclose()
        return decisions

    decisions = asyncio.run(drive())
    assert len(decisions) == len(traffic)
    assert all(d is not None for d in decisions)
    assert front.stats.conserved()
    assert front.stats.rule_hits > 0
    assert front.stats.cascade is router.stats

    # verdict parity with the cascade-free front on the same stream
    plain_front = AsyncServeFront(_blocker(), SETTINGS, cascade=False)

    async def drive_plain():
        outcomes = []
        for event in traffic:
            outcomes.append(await plain_front.submit(
                event.bitmap, session_id=event.session_id
            ))
        await plain_front.aclose()
        return outcomes

    plain = asyncio.run(drive_plain())
    assert [d.is_ad for d in decisions] == [d.is_ad for d in plain]


def _coalesced_audit_setup():
    """A serving micro-rule whose every hit audits, plus N arrivals of
    one identical frame: one leader, N-1 coalesced riders, every one
    of them carrying its own audit ticket into the same flush."""
    rng = np.random.default_rng(17)
    bitmap = rng.random((32, 32, 4)).astype(np.float32)
    provenance = FrameProvenance(
        url="https://ads.net.example/serve/c0001.png",
        page_domain="site0.example",
        width=320,
        height=100,
    )
    router = CascadeRouter(None, audit_interval=1, invalidate_after=2)
    # the rule predicts "ad"; the untrained model will answer "not ad",
    # so every healer observation on this rule is a disagreement
    rule = router.cache.compile_rule(provenance.micro_key(), True, 0.99)
    events = [
        ArrivalEvent(
            at_ms=0.0, session_id=f"s{i}", bitmap=bitmap,
            provenance=provenance,
        )
        for i in range(4)
    ]
    return router, rule, events


def test_coalesced_riders_feed_the_healer_once_per_verdict():
    """Regression: a flush settling one computed verdict across a
    leader and its coalesced riders must produce exactly ONE healer
    observation — not one per rider.  Before the fix, four riders of a
    disagreeing frame meant four disagreements from a single model
    verdict, enough to invalidate a healthy rule in one flush."""
    router, rule, events = _coalesced_audit_setup()
    report = ServeLoop(_blocker(), SETTINGS, cascade=router).run(events)
    stats = report.stats
    assert stats.conserved()
    assert stats.coalesced == 3 and stats.batched_requests == 1
    assert rule.audits == 4  # every arrival was audited at route time
    # one computed verdict -> one observation, rider count irrelevant
    assert rule.agreements + rule.disagreements == 1
    assert rule.disagreements == 1
    assert not rule.invalidated, (
        "a single verdict must never count as repeated drift"
    )
    assert router.stats.audit_invalidations == 0


def test_coalesced_riders_feed_the_healer_once_async():
    """The asyncio front's settle path obeys the same law."""
    router, rule, events = _coalesced_audit_setup()
    front = AsyncServeFront(_blocker(), SETTINGS, cascade=router)

    async def drive():
        results = await asyncio.gather(*[
            front.submit(
                event.bitmap,
                session_id=event.session_id,
                provenance=event.provenance,
            )
            for event in events
        ])
        await front.aclose()
        return results

    decisions = asyncio.run(drive())
    assert len(decisions) == len(events)
    assert front.stats.conserved()
    assert front.stats.coalesced == 3
    assert rule.agreements + rule.disagreements == 1
    assert not rule.invalidated
