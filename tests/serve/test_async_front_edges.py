"""Edge cases of the asyncio front door: timer races, close, executor.

The contract under stress: no matter how the ``max_wait_ms`` timer, the
deferred-flush callback, and ``aclose()`` interleave, every admitted
request resolves exactly once (decision or exception — never a hang),
and the conservation ledger balances.  Executor mode must be verdict-
and ledger-equivalent to inline mode; it only moves compute off the
event-loop thread.
"""

import asyncio

import numpy as np
import pytest

from repro.core import PercivalBlocker, ServeSettings
from repro.serve import AsyncServeFront, ServeClosedError


def _blocker(classifier, **kwargs):
    kwargs.setdefault("calibrated_latency_ms", 1.0)
    return PercivalBlocker(classifier, **kwargs)


def _frames(count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.random((12, 14, 4)).astype(np.float32) for _ in range(count)
    ]


class TestTimerEdges:
    def test_deadline_fires_while_flush_already_scheduled(
        self, untrained_classifier
    ):
        """``max_wait_ms=0`` puts the deadline timer and the full-batch
        flush callback on the event loop in the same tick; whichever
        runs second must find the queue empty and do nothing — not
        double-flush, not hang the leftover request."""
        front = AsyncServeFront(
            _blocker(untrained_classifier),
            ServeSettings(max_batch=2, max_wait_ms=0.0, max_depth=16),
        )

        async def drive():
            decisions = await asyncio.gather(
                *(front.submit(frame) for frame in _frames(3))
            )
            await front.aclose()
            return decisions

        decisions = asyncio.run(drive())
        assert len(decisions) == 3
        assert all(d is not None for d in decisions)
        assert front.stats.conserved()
        assert front.stats.answered == 3

    def test_timer_survives_partial_flush_and_fires_later(
        self, untrained_classifier
    ):
        """A full batch flushes immediately; the straggler left behind
        must still be flushed by the (already armed) deadline timer."""
        front = AsyncServeFront(
            _blocker(untrained_classifier),
            ServeSettings(max_batch=2, max_wait_ms=5.0, max_depth=16),
        )

        async def drive():
            tasks = [
                asyncio.ensure_future(front.submit(frame))
                for frame in _frames(3, seed=4)
            ]
            done = await asyncio.wait_for(asyncio.gather(*tasks), timeout=5.0)
            await front.aclose()
            return done

        decisions = asyncio.run(drive())
        assert len(decisions) == 3
        assert front.stats.batches == 2
        assert front.stats.conserved()

    def test_aclose_with_armed_timer_resolves_the_straggler(
        self, untrained_classifier
    ):
        """Closing while a partial batch sits behind a long timer must
        force-flush it (the waiter resolves, never hangs) and disarm
        the timer."""
        front = AsyncServeFront(
            _blocker(untrained_classifier),
            ServeSettings(max_batch=8, max_wait_ms=60_000.0, max_depth=16),
        )

        async def drive():
            task = asyncio.ensure_future(
                front.submit(_frames(1, seed=2)[0])
            )
            await asyncio.sleep(0)  # let submit enqueue + arm the timer
            assert front._timer is not None
            assert front.depth == 1
            await front.aclose()
            return await asyncio.wait_for(task, timeout=1.0)

        decision = asyncio.run(drive())
        assert decision is not None
        assert front._timer is None
        assert front.depth == 0
        assert front.stats.conserved()

    def test_submit_after_close_raises_cleanly(self, untrained_classifier):
        front = AsyncServeFront(
            _blocker(untrained_classifier),
            ServeSettings(max_batch=2, max_wait_ms=1.0),
        )

        async def drive():
            await front.aclose()
            with pytest.raises(ServeClosedError):
                await front.submit(_frames(1)[0])
            # nothing was admitted, so the ledger never moved
            assert front.stats.submitted == 0
            await front.aclose()  # idempotent

        asyncio.run(drive())


class TestExecutorMode:
    def test_executor_mode_matches_inline_verdicts(
        self, untrained_classifier
    ):
        frames = _frames(6, seed=11)
        settings = ServeSettings(max_batch=3, max_wait_ms=1.0, max_depth=32)

        def run(use_executor):
            front = AsyncServeFront(
                _blocker(untrained_classifier), settings,
                use_executor=use_executor,
            )

            async def drive():
                decisions = await asyncio.gather(
                    *(front.submit(frame) for frame in frames)
                )
                await front.aclose()
                return front, decisions

            return asyncio.run(drive())

        inline_front, inline = run(False)
        executor_front, threaded = run(True)
        assert [d.probability for d in inline] == [
            d.probability for d in threaded
        ]
        assert [d.is_ad for d in inline] == [d.is_ad for d in threaded]
        assert inline_front.stats.conserved()
        assert executor_front.stats.conserved()
        assert executor_front.stats.answered == len(frames)
        # aclose released the executor thread
        assert executor_front._executor is None

    def test_event_loop_stays_responsive_during_executor_flush(
        self, untrained_classifier
    ):
        """While a batch computes on the executor thread, unrelated
        coroutines keep getting scheduled — the definitional difference
        from inline mode."""
        front = AsyncServeFront(
            _blocker(untrained_classifier),
            ServeSettings(max_batch=2, max_wait_ms=0.5, max_depth=32),
            use_executor=True,
        )
        heartbeats = []

        async def heartbeat():
            while True:
                heartbeats.append(len(heartbeats))
                await asyncio.sleep(0)

        async def drive():
            ticker = asyncio.ensure_future(heartbeat())
            decisions = await asyncio.gather(
                *(front.submit(frame) for frame in _frames(8, seed=3))
            )
            ticker.cancel()
            await front.aclose()
            return decisions

        decisions = asyncio.run(drive())
        assert len(decisions) == 8
        assert heartbeats  # the loop turned over while batches flushed
        assert front.stats.conserved()

    def test_executor_failure_propagates_then_recovers(
        self, untrained_classifier
    ):
        blocker = _blocker(untrained_classifier)
        front = AsyncServeFront(
            blocker,
            ServeSettings(max_batch=2, max_wait_ms=0.5, max_depth=16),
            use_executor=True,
        )
        healthy = blocker.decide_many
        calls = {"n": 0}

        def flaky(bitmaps, keys=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("worker fleet fell over")
            return healthy(bitmaps, keys=keys)

        blocker.decide_many = flaky
        frames = _frames(4, seed=8)

        async def drive():
            first = await asyncio.gather(
                front.submit(frames[0]), front.submit(frames[1]),
                return_exceptions=True,
            )
            second = await asyncio.gather(
                front.submit(frames[2]), front.submit(frames[3]),
            )
            await front.aclose()
            return first, second

        failures, recovered = asyncio.run(drive())
        assert all(isinstance(f, RuntimeError) for f in failures)
        assert all(d is not None for d in recovered)
        assert front.stats.failed == 2
        assert front.stats.answered == 2
        assert front.stats.conserved()

    def test_drain_waits_for_inflight_executor_batches(
        self, untrained_classifier
    ):
        front = AsyncServeFront(
            _blocker(untrained_classifier),
            ServeSettings(max_batch=2, max_wait_ms=60_000.0, max_depth=32),
            use_executor=True,
        )

        async def drive():
            tasks = [
                asyncio.ensure_future(front.submit(frame))
                for frame in _frames(5, seed=6)
            ]
            await asyncio.sleep(0)
            await front.drain()
            # drain's contract: once it returns, nothing is queued and
            # nothing is in flight — every waiter has its answer
            assert front.depth == 0
            assert not front._inflight
            decisions = await asyncio.wait_for(
                asyncio.gather(*tasks), timeout=1.0
            )
            await front.aclose()
            return decisions

        decisions = asyncio.run(drive())
        assert len(decisions) == 5
        assert front.stats.conserved()
