"""Deterministic serving simulations + the asyncio front door.

The contract: the serving layer changes *when* and *in what grouping*
classifications run — never what any verdict is, and never whether a
request gets an answer.  Every simulation here replays bit-identically
and is checked for conservation (answered + shed == submitted).
"""

import asyncio

import numpy as np
import pytest

from repro.core import PercivalBlocker, ServeSettings, configured_serve_settings
from repro.core.config import configured_serve_lanes
from repro.serve import (
    ArrivalEvent,
    AsyncServeFront,
    BatchComputeModel,
    LatencySummary,
    ServeLoop,
    ServeOverloadError,
    TrafficSpec,
    synthesize_traffic,
)


def _blocker(classifier, **kwargs):
    kwargs.setdefault("calibrated_latency_ms", 2.0)
    return PercivalBlocker(classifier, **kwargs)


def _frames(count, seed=0, size=(12, 14)):
    rng = np.random.default_rng(seed)
    return [
        rng.random((*size, 4)).astype(np.float32) for _ in range(count)
    ]


def _steady_events(frames, gap_ms=1.0, session="s0"):
    return [
        ArrivalEvent(at_ms=index * gap_ms, session_id=session, bitmap=frame)
        for index, frame in enumerate(frames)
    ]


class TestServeLoopSimulation:
    def test_replays_bit_identically(self, untrained_classifier):
        events = synthesize_traffic(TrafficSpec(
            sessions=3, frames_per_session=5, seed=11,
        ))
        settings = ServeSettings(max_batch=4, max_wait_ms=2.0, max_depth=16)
        first = ServeLoop(
            _blocker(untrained_classifier), settings
        ).run(events)
        second = ServeLoop(
            _blocker(untrained_classifier), settings
        ).run(events)
        assert first.makespan_ms == second.makespan_ms
        assert [
            (r.request_id, r.flush_ms, r.complete_ms, r.shed)
            for r in first.results
        ] == [
            (r.request_id, r.flush_ms, r.complete_ms, r.shed)
            for r in second.results
        ]

    def test_verdicts_match_unbatched_reference(self, untrained_classifier):
        events = synthesize_traffic(TrafficSpec(
            sessions=4, frames_per_session=6, seed=5,
        ))
        report = ServeLoop(
            _blocker(untrained_classifier),
            ServeSettings(max_batch=8, max_wait_ms=3.0, max_depth=64),
        ).run(events)
        assert report.stats.conserved()
        assert not report.stats.shed
        reference = _blocker(untrained_classifier)
        for event, result in zip(
            sorted(events, key=lambda e: e.at_ms), report.results
        ):
            expected = reference.decide(event.bitmap)
            assert result.decision.is_ad == expected.is_ad
            assert result.decision.probability == expected.probability

    def test_batches_coalesce_and_respect_max_batch(
        self, untrained_classifier
    ):
        frames = _frames(20, seed=3)
        events = _steady_events(frames, gap_ms=0.1)
        blocker = _blocker(untrained_classifier)
        report = ServeLoop(
            blocker, ServeSettings(max_batch=6, max_wait_ms=5.0, max_depth=64)
        ).run(events)
        assert report.stats.batches >= 2
        assert 1.0 < report.stats.mean_batch_size <= 6.0
        # every classification went through the blocker exactly once
        assert blocker.classifications == len(frames)

    def test_memo_answers_duplicates_across_sessions(
        self, untrained_classifier
    ):
        frames = _frames(4, seed=9)
        early = [
            ArrivalEvent(at_ms=i * 1.0, session_id="page-a", bitmap=f)
            for i, f in enumerate(frames)
        ]
        # far enough later that page-a's batches have completed
        late = [
            ArrivalEvent(at_ms=100.0 + i * 1.0, session_id="page-b", bitmap=f)
            for i, f in enumerate(frames)
        ]
        blocker = _blocker(untrained_classifier)
        report = ServeLoop(
            blocker, ServeSettings(max_batch=4, max_wait_ms=2.0, max_depth=32)
        ).run(early + late)
        assert report.stats.memo_hits == len(frames)
        assert blocker.classifications == len(frames)
        hits = [r for r in report.results if r.memo_hit]
        assert {r.session_id for r in hits} == {"page-b"}
        # memo hits answer instantly: no queue wait, no compute
        assert all(r.latency_ms == 0.0 for r in hits)

    def test_in_window_duplicates_ride_along(self, untrained_classifier):
        frame = _frames(1, seed=21)[0]
        events = [
            ArrivalEvent(at_ms=0.0, session_id="a", bitmap=frame),
            ArrivalEvent(at_ms=0.5, session_id="b", bitmap=frame),
            ArrivalEvent(at_ms=1.0, session_id="c", bitmap=frame),
        ]
        blocker = _blocker(untrained_classifier)
        report = ServeLoop(
            blocker,
            ServeSettings(max_batch=8, max_wait_ms=4.0, max_depth=32),
        ).run(events)
        assert blocker.classifications == 1
        assert report.stats.coalesced == 2
        assert report.stats.batches == 1
        decisions = [r.decision for r in report.results]
        assert all(d.probability == decisions[0].probability for d in decisions)
        # riders complete when their leader's batch completes
        assert len({r.complete_ms for r in report.results}) == 1

    def test_overload_sheds_explicitly_and_conserves(
        self, untrained_classifier
    ):
        # a hostile burst: everything lands at t=0 while each batch
        # takes long enough that the queue saturates behind the lane
        frames = _frames(64, seed=7)
        events = [
            ArrivalEvent(at_ms=0.0, session_id=f"s{i % 8}", bitmap=f)
            for i, f in enumerate(frames)
        ]
        report = ServeLoop(
            _blocker(untrained_classifier),
            ServeSettings(max_batch=4, max_wait_ms=1.0, max_depth=8),
            compute_model=lambda n: 50.0,
        ).run(events)
        assert report.stats.shed > 0
        assert report.stats.conserved()
        shed = report.shed
        assert all(r.decision is None for r in shed)
        answered = report.answered
        assert all(r.decision is not None for r in answered)
        assert len(answered) + len(shed) == len(frames)

    def test_slow_batch_delays_the_tail_not_the_verdicts(
        self, untrained_classifier
    ):
        frames = _frames(24, seed=13)
        events = _steady_events(frames, gap_ms=1.0)
        costs = iter([2.0, 200.0] + [2.0] * 100)

        def spiky_model(batch_size):
            return next(costs)

        blocker = _blocker(untrained_classifier)
        report = ServeLoop(
            blocker,
            # lanes pinned to 1: the monotone-completion assertion below
            # is the *single-lane* head-of-line contract (multi-lane
            # runs overtake slow batches by design)
            ServeSettings(
                max_batch=8, max_wait_ms=2.0, max_depth=64, lanes=1
            ),
            compute_model=spiky_model,
        ).run(events)
        assert report.stats.conserved()
        assert not report.stats.shed
        # the first batch answered before the spike; everything behind
        # the slow batch waited at least its 200 ms on the lane
        latencies = [r.latency_ms for r in report.results]
        assert min(latencies) < 10.0
        assert report.stats.total_ms.max >= 200.0
        # completions stay monotone in flush order (single compute lane)
        flushed = sorted(
            (r for r in report.results if not r.memo_hit),
            key=lambda r: r.flush_ms,
        )
        completes = [r.complete_ms for r in flushed]
        assert completes == sorted(completes)

    def test_quiet_traffic_never_waits_past_deadline(
        self, untrained_classifier
    ):
        # sparse arrivals, fast compute: the max_wait deadline is the
        # only flush trigger, and it is honoured exactly
        frames = _frames(6, seed=17)
        events = _steady_events(frames, gap_ms=50.0)
        settings = ServeSettings(max_batch=8, max_wait_ms=3.0, max_depth=16)
        report = ServeLoop(
            _blocker(untrained_classifier),
            settings,
            compute_model=lambda n: 1.0,
        ).run(events)
        waits = [r.queue_wait_ms for r in report.results]
        assert all(w == pytest.approx(settings.max_wait_ms) for w in waits)

    def test_latency_split_queue_wait_vs_compute(self, untrained_classifier):
        frames = _frames(8, seed=23)
        events = _steady_events(frames, gap_ms=0.5)
        report = ServeLoop(
            _blocker(untrained_classifier),
            ServeSettings(max_batch=8, max_wait_ms=10.0, max_depth=32),
            compute_model=lambda n: 7.0,
        ).run(events)
        for result in report.results:
            assert result.service_ms == pytest.approx(7.0)
            assert result.latency_ms == pytest.approx(
                result.queue_wait_ms + result.service_ms
            )


class TestBatchComputeModel:
    def test_single_frame_costs_one_calibrated_latency(
        self, untrained_classifier
    ):
        blocker = _blocker(untrained_classifier, calibrated_latency_ms=11.0)
        model = BatchComputeModel.from_blocker(blocker)
        assert model(1) == pytest.approx(11.0)
        # marginal frames amortize: batch of 8 well under 8 singles
        assert model(8) < 8 * model(1) / 2
        assert model(0) == 0.0

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            BatchComputeModel(per_image_ms=-1.0, setup_ms=0.0)


class TestAsyncServeFront:
    def test_concurrent_submits_batch_and_match_reference(
        self, untrained_classifier
    ):
        frames = _frames(20, seed=31)
        front = AsyncServeFront(
            _blocker(untrained_classifier),
            ServeSettings(max_batch=8, max_wait_ms=5.0, max_depth=64),
        )

        async def drive():
            tasks = [
                front.submit(frame, session_id=f"s{i % 4}")
                for i, frame in enumerate(frames)
            ]
            decisions = await asyncio.gather(*tasks)
            await front.aclose()
            return decisions

        decisions = asyncio.run(drive())
        reference = _blocker(untrained_classifier)
        for frame, decision in zip(frames, decisions):
            assert decision.probability == reference.decide(frame).probability
        assert front.stats.conserved()
        assert front.stats.batches <= len(frames) // 2
        assert front.stats.answered == len(frames)

    def test_duplicate_submits_share_compute(self, untrained_classifier):
        frame = _frames(1, seed=37)[0]
        blocker = _blocker(untrained_classifier)
        front = AsyncServeFront(
            blocker, ServeSettings(max_batch=4, max_wait_ms=2.0, max_depth=32)
        )

        async def drive():
            first = await asyncio.gather(
                *[front.submit(frame) for _ in range(4)]
            )
            # a later wave hits the now-filled memo
            second = await asyncio.gather(
                *[front.submit(frame) for _ in range(3)]
            )
            await front.aclose()
            return first, second

        first, second = asyncio.run(drive())
        assert blocker.classifications == 1
        assert front.stats.coalesced == 3
        assert front.stats.memo_hits == 3
        assert all(d.probability == first[0].probability for d in first)
        assert all(d.from_cache for d in second)

    def test_overload_raises_explicit_backpressure(
        self, untrained_classifier
    ):
        frames = _frames(40, seed=41)
        front = AsyncServeFront(
            _blocker(untrained_classifier),
            ServeSettings(max_batch=4, max_wait_ms=2.0, max_depth=8),
        )

        async def drive():
            results = await asyncio.gather(
                *[front.submit(frame) for frame in frames],
                return_exceptions=True,
            )
            await front.aclose()
            return results

        results = asyncio.run(drive())
        shed = [r for r in results if isinstance(r, ServeOverloadError)]
        answered = [r for r in results if not isinstance(r, Exception)]
        assert shed, "burst past max_depth must shed"
        assert len(shed) + len(answered) == len(frames)
        assert front.stats.conserved()

    def test_batch_failure_propagates_and_unblocks_the_key(
        self, untrained_classifier
    ):
        """A classification error inside a flush must reach the
        awaiters (never strand them) and release the fingerprints, so
        the same frame classifies fine once the blocker recovers."""
        frame = _frames(1, seed=47)[0]
        blocker = _blocker(untrained_classifier)
        front = AsyncServeFront(
            blocker, ServeSettings(max_batch=2, max_wait_ms=1.0, max_depth=16)
        )
        healthy_decide_many = blocker.decide_many
        blocker.decide_many = lambda *a, **k: (_ for _ in ()).throw(
            RuntimeError("classifier exploded")
        )

        async def drive():
            failures = await asyncio.gather(
                front.submit(frame), front.submit(frame),
                return_exceptions=True,
            )
            blocker.decide_many = healthy_decide_many
            recovered = await front.submit(frame)
            await front.aclose()
            return failures, recovered

        failures, recovered = asyncio.run(drive())
        assert all(
            isinstance(f, RuntimeError) and "exploded" in str(f)
            for f in failures
        )
        assert front.stats.failed == 2
        assert front.stats.conserved()
        assert recovered.probability == _blocker(
            untrained_classifier
        ).decide(frame).probability

    def test_deadline_timer_flushes_partial_batches(
        self, untrained_classifier
    ):
        frames = _frames(3, seed=43)
        front = AsyncServeFront(
            _blocker(untrained_classifier),
            ServeSettings(max_batch=64, max_wait_ms=5.0, max_depth=128),
        )

        async def drive():
            # far fewer than max_batch: only the deadline can flush
            return await asyncio.wait_for(
                asyncio.gather(*[front.submit(f) for f in frames]),
                timeout=5.0,
            )

        decisions = asyncio.run(drive())
        assert len(decisions) == 3
        assert front.stats.batches == 1


class TestServeKnobs:
    def test_explicit_settings_win(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_SERVE_MAX_BATCH", "99")
        explicit = ServeSettings(max_batch=4)
        assert configured_serve_settings(explicit) is explicit

    def test_env_knobs_resolve(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_SERVE_MAX_BATCH", "32")
        monkeypatch.setenv("PERCIVAL_SERVE_MAX_WAIT_MS", "7.5")
        monkeypatch.setenv("PERCIVAL_SERVE_MAX_DEPTH", "256")
        settings = configured_serve_settings()
        assert settings.max_batch == 32
        assert settings.max_wait_ms == 7.5
        assert settings.max_depth == 256

    def test_defaults_when_unset(self, monkeypatch):
        for name in (
            "PERCIVAL_SERVE_MAX_BATCH",
            "PERCIVAL_SERVE_MAX_WAIT_MS",
            "PERCIVAL_SERVE_MAX_DEPTH",
            "PERCIVAL_SERVE_AGING_MS",
            "PERCIVAL_SERVE_LANES",
        ):
            monkeypatch.delenv(name, raising=False)
        assert configured_serve_settings() == ServeSettings()
        assert configured_serve_lanes() is None

    def test_invalid_env_raises_with_name(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_SERVE_MAX_BATCH", "lots")
        with pytest.raises(ValueError, match="PERCIVAL_SERVE_MAX_BATCH"):
            configured_serve_settings()

    def test_lanes_env_knob(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_SERVE_LANES", "3")
        assert configured_serve_lanes() == 3
        # an explicit setting always wins over the environment
        assert configured_serve_lanes(5) == 5
        monkeypatch.setenv("PERCIVAL_SERVE_LANES", "auto")
        assert configured_serve_lanes() is None
        monkeypatch.setenv("PERCIVAL_SERVE_LANES", "0")
        with pytest.raises(ValueError, match="PERCIVAL_SERVE_LANES"):
            configured_serve_lanes()
        monkeypatch.setenv("PERCIVAL_SERVE_LANES", "many")
        with pytest.raises(ValueError, match="PERCIVAL_SERVE_LANES"):
            configured_serve_lanes()

    def test_aging_env_knob(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_SERVE_AGING_MS", "2.5")
        assert configured_serve_settings().aging_ms == 2.5

    def test_invalid_combinations_rejected(self):
        with pytest.raises(ValueError):
            ServeSettings(max_batch=0)
        with pytest.raises(ValueError):
            ServeSettings(max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            ServeSettings(max_batch=8, max_depth=4)
        with pytest.raises(ValueError):
            ServeSettings(lanes=0)
        with pytest.raises(ValueError):
            ServeSettings(aging_ms=0.0)


class TestLatencySummary:
    def test_percentiles(self):
        summary = LatencySummary()
        for value in range(1, 101):
            summary.add(float(value))
        assert summary.p50 == pytest.approx(50.5)
        assert summary.p99 == pytest.approx(99.01)
        assert summary.count == 100
        assert summary.max == 100.0

    def test_empty_summary_is_zero(self):
        summary = LatencySummary()
        assert summary.p50 == 0.0
        assert summary.mean == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencySummary().add(-1.0)
