"""Fleet simulator: diurnal traffic, SLO autoscaling, determinism.

The acceptance contract: a fleet replay is bit-identical for a fixed
seed (per-epoch tails included), the autoscaler reacts to SLO breaches
with bounded hysteresis steps, and no scaling decision ever loses a
request — conservation holds per epoch and fleet-wide.
"""

import pytest

from repro.core import PercivalBlocker, ServeSettings
from repro.serve import (
    FleetSimulator,
    FleetSpec,
    SLOPolicy,
    TrafficSpec,
)


def _blocker(classifier, **kwargs):
    kwargs.setdefault("calibrated_latency_ms", 8.0)
    return PercivalBlocker(classifier, **kwargs)


def _spec(**overrides):
    base = dict(
        epochs=5, base_sessions=2, peak_sessions=8,
        frames_per_session=5, hot_creative_bias=0.3, seed=5,
    )
    base.update(overrides)
    return FleetSpec(**base)


_SETTINGS = ServeSettings(max_batch=8, max_wait_ms=2.0, max_depth=64)


class TestSLOPolicy:
    def test_scales_up_on_p99_breach(self):
        policy = SLOPolicy(p99_target_ms=25.0)
        assert policy.next_lanes(2, p99_ms=30.0, shed=0) == 3

    def test_scales_up_on_any_shed(self):
        policy = SLOPolicy(p99_target_ms=25.0)
        assert policy.next_lanes(2, p99_ms=1.0, shed=1) == 3

    def test_scales_down_only_with_headroom_and_no_sheds(self):
        policy = SLOPolicy(p99_target_ms=25.0, scale_down_headroom=0.4)
        assert policy.next_lanes(3, p99_ms=5.0, shed=0) == 2
        # a shed vetoes the scale-down even with latency headroom
        assert policy.next_lanes(3, p99_ms=5.0, shed=1) == 4

    def test_hysteresis_band_holds_steady(self):
        policy = SLOPolicy(p99_target_ms=25.0, scale_down_headroom=0.4)
        # 10 <= p99 <= 25 is the dead band: neither threshold trips
        for p99 in (10.0, 20.0, 25.0):
            assert policy.next_lanes(3, p99_ms=p99, shed=0) == 3

    def test_clamps_to_lane_bounds(self):
        policy = SLOPolicy(p99_target_ms=25.0, min_lanes=2, max_lanes=4)
        assert policy.next_lanes(4, p99_ms=100.0, shed=5) == 4
        assert policy.next_lanes(2, p99_ms=0.1, shed=0) == 2

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            SLOPolicy(p99_target_ms=0.0)
        with pytest.raises(ValueError):
            SLOPolicy(scale_down_headroom=1.0)
        with pytest.raises(ValueError):
            SLOPolicy(min_lanes=0)
        with pytest.raises(ValueError):
            SLOPolicy(min_lanes=5, max_lanes=2)


class TestFleetSpec:
    def test_diurnal_curve_shape(self):
        spec = _spec(epochs=8)
        assert spec.diurnal_multiplier(0) == 0.0
        assert spec.diurnal_multiplier(4) == pytest.approx(1.0)
        # symmetric around the peak
        assert spec.diurnal_multiplier(2) == pytest.approx(
            spec.diurnal_multiplier(6)
        )
        assert _spec(epochs=1).diurnal_multiplier(0) == 1.0

    def test_epoch_traffic_derivation(self):
        spec = _spec(
            epochs=8, base_sessions=4, peak_sessions=16, seed=5,
            traffic=TrafficSpec(duplicate_fraction=0.3),
        )
        quiet = spec.epoch_traffic(0)
        peak = spec.epoch_traffic(4)
        assert quiet.sessions == 4 and peak.sessions == 16
        assert quiet.seed == 5 and peak.seed == 9
        assert quiet.duplicate_fraction == pytest.approx(0.3)
        # hot creatives dominate at peak...
        assert peak.duplicate_fraction == pytest.approx(0.6)
        # ...but never past the cap
        capped = _spec(
            hot_creative_bias=5.0,
            traffic=TrafficSpec(duplicate_fraction=0.3),
        )
        assert capped.epoch_traffic(2).duplicate_fraction <= 0.9

    def test_rejects_invalid_shapes(self):
        with pytest.raises(ValueError):
            _spec(epochs=0)
        with pytest.raises(ValueError):
            _spec(base_sessions=9, peak_sessions=8)
        with pytest.raises(ValueError):
            _spec(frames_per_session=0)
        with pytest.raises(ValueError):
            _spec(hot_creative_bias=-0.1)


class TestFleetReplay:
    def test_replay_is_deterministic_for_a_fixed_seed(
        self, untrained_classifier
    ):
        def run():
            simulator = FleetSimulator(
                _blocker(untrained_classifier),
                _SETTINGS,
                policy=SLOPolicy(p99_target_ms=30.0, max_lanes=4),
            )
            return simulator.run(_spec())
        first, second = run(), run()
        assert [
            (
                e.epoch, e.sessions, e.offered, e.lanes,
                e.p99_ms, e.queue_wait_p99_ms, e.answered, e.shed,
                e.makespan_ms, e.next_lanes,
            )
            for e in first.epochs
        ] == [
            (
                e.epoch, e.sessions, e.offered, e.lanes,
                e.p99_ms, e.queue_wait_p99_ms, e.answered, e.shed,
                e.makespan_ms, e.next_lanes,
            )
            for e in second.epochs
        ]

    def test_autoscaler_reacts_and_conserves(self, untrained_classifier):
        report = FleetSimulator(
            _blocker(untrained_classifier),
            _SETTINGS,
            policy=SLOPolicy(p99_target_ms=20.0, max_lanes=4),
        ).run(_spec(peak_sessions=12, frames_per_session=6))
        assert report.conserved()
        assert len(report.epochs) == 5
        # the diurnal swell breached the tight SLO at least once
        assert report.peak_lanes > 1
        # totals line up with the per-epoch ledger
        assert report.offered == sum(e.offered for e in report.epochs)
        assert report.answered + report.shed == report.offered
        # each epoch ran at the lane count the previous epoch chose
        for prev, cur in zip(report.epochs, report.epochs[1:]):
            assert cur.lanes == prev.next_lanes

    def test_lane_cap_pins_the_policy(self, untrained_classifier):
        report = FleetSimulator(
            _blocker(untrained_classifier),
            _SETTINGS,
            policy=SLOPolicy(p99_target_ms=1.0, max_lanes=2),
        ).run(_spec())
        assert report.peak_lanes <= 2

    def test_table_renders(self, untrained_classifier):
        report = FleetSimulator(
            _blocker(untrained_classifier), _SETTINGS,
            policy=SLOPolicy(p99_target_ms=30.0),
        ).run(_spec(epochs=2))
        table = report.to_table()
        assert "epoch" in table and "conserved=True" in table

    def test_rejects_invalid_initial_lanes(self, untrained_classifier):
        with pytest.raises(ValueError):
            FleetSimulator(
                _blocker(untrained_classifier), initial_lanes=0
            )


class _RecordingPool:
    """Duck-typed pool stub: capacity + a resize call log."""

    closed = False

    def __init__(self, fail=False):
        self.available_capacity = 1
        self.calls = []
        self.fail = fail

    def resize(self, num_workers):
        self.calls.append(num_workers)
        if self.fail:
            raise RuntimeError("mid-dispatch")
        self.available_capacity = num_workers


class TestFleetPoolCoupling:
    def test_resizes_pool_to_lane_count_each_epoch(
        self, untrained_classifier
    ):
        blocker = _blocker(untrained_classifier)
        pool = _RecordingPool()
        blocker.pool = pool
        report = FleetSimulator(
            blocker, _SETTINGS,
            policy=SLOPolicy(p99_target_ms=20.0, max_lanes=4),
        ).run(_spec(peak_sessions=12, frames_per_session=6))
        assert pool.calls == [e.lanes for e in report.epochs]

    def test_resize_failure_never_aborts_the_replay(
        self, untrained_classifier
    ):
        blocker = _blocker(untrained_classifier)
        blocker.pool = _RecordingPool(fail=True)
        report = FleetSimulator(
            blocker, _SETTINGS,
            policy=SLOPolicy(p99_target_ms=20.0, max_lanes=4),
        ).run(_spec())
        assert report.conserved()
        assert blocker.pool.calls  # it did try

    def test_poolless_blocker_skips_resizing(self, untrained_classifier):
        report = FleetSimulator(
            _blocker(untrained_classifier), _SETTINGS,
            policy=SLOPolicy(p99_target_ms=30.0),
        ).run(_spec(epochs=2))
        assert report.conserved()
