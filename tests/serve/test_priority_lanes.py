"""Multi-lane scheduling and priority classes in :class:`ServeLoop`.

The lane contract: lanes change *when* batches compute (up to ``n``
flushes overlap in virtual time), never *what* any verdict is and never
the conservation ledger.  One lane reproduces the pre-lane serializing
loop exactly; the dispatch tie-break (lowest free lane index) keeps
every multi-lane schedule bit-identical run to run.
"""

import numpy as np
import pytest

from repro.core import PercivalBlocker, ServeSettings
from repro.serve import (
    PRIORITY_BELOW_FOLD,
    PRIORITY_VIEWPORT,
    ArrivalEvent,
    ServeLoop,
    TrafficSpec,
    synthesize_traffic,
)
from repro.serve.loop import _pool_capacity


def _blocker(classifier, **kwargs):
    kwargs.setdefault("calibrated_latency_ms", 4.0)
    return PercivalBlocker(classifier, **kwargs)


def _heavy_trace(seed=77):
    """Enough concurrent sessions that batches genuinely queue up."""
    return synthesize_traffic(TrafficSpec(
        sessions=12, frames_per_session=6, mean_gap_ms=0.5,
        session_stagger_ms=0.25, seed=seed,
    ))


class _StubPool:
    def __init__(self, capacity):
        self.available_capacity = capacity


class TestLaneResolution:
    def test_settings_pin_wins_over_env(
        self, untrained_classifier, monkeypatch
    ):
        monkeypatch.setenv("PERCIVAL_SERVE_LANES", "7")
        loop = ServeLoop(
            _blocker(untrained_classifier), ServeSettings(lanes=2)
        )
        assert loop.resolved_lanes() == 2

    def test_env_wins_over_pool_capacity(
        self, untrained_classifier, monkeypatch
    ):
        monkeypatch.setenv("PERCIVAL_SERVE_LANES", "3")
        blocker = _blocker(untrained_classifier)
        blocker.pool = _StubPool(capacity=5)
        assert ServeLoop(blocker).resolved_lanes() == 3

    def test_pool_capacity_sizes_lanes_by_default(
        self, untrained_classifier, monkeypatch
    ):
        monkeypatch.delenv("PERCIVAL_SERVE_LANES", raising=False)
        blocker = _blocker(untrained_classifier)
        blocker.pool = _StubPool(capacity=4)
        assert ServeLoop(blocker).resolved_lanes() == 4

    def test_poolless_defaults_to_one_lane(
        self, untrained_classifier, monkeypatch
    ):
        monkeypatch.delenv("PERCIVAL_SERVE_LANES", raising=False)
        assert ServeLoop(_blocker(untrained_classifier)).resolved_lanes() == 1

    def test_pool_capacity_probe(self):
        assert _pool_capacity(None) == 0
        assert _pool_capacity(object()) == 0
        assert _pool_capacity(_StubPool(capacity=3)) == 3
        assert _pool_capacity(_StubPool(capacity=0)) == 0


class TestMultiLaneScheduling:
    def test_multi_lane_replays_bit_identically(self, untrained_classifier):
        events = _heavy_trace()
        settings = ServeSettings(
            max_batch=8, max_wait_ms=1.0, max_depth=128, lanes=3
        )
        runs = [
            ServeLoop(_blocker(untrained_classifier), settings).run(events)
            for _ in range(2)
        ]
        assert runs[0].makespan_ms == runs[1].makespan_ms
        assert [
            (r.request_id, r.flush_ms, r.complete_ms, r.lane, r.shed)
            for r in runs[0].results
        ] == [
            (r.request_id, r.flush_ms, r.complete_ms, r.lane, r.shed)
            for r in runs[1].results
        ]

    def test_lanes_overlap_and_shrink_the_makespan(
        self, untrained_classifier
    ):
        events = _heavy_trace()
        def run(lanes):
            return ServeLoop(
                _blocker(untrained_classifier),
                ServeSettings(
                    max_batch=8, max_wait_ms=1.0, max_depth=256, lanes=lanes
                ),
            ).run(events)
        single = run(1)
        double = run(2)
        assert single.stats.conserved() and double.stats.conserved()
        assert not single.stats.shed and not double.stats.shed
        # both lanes actually carried work...
        assert set(double.stats.lane_busy_ms) == {0, 1}
        assert all(v > 0 for v in double.stats.lane_busy_ms.values())
        # ...and overlapping them compressed virtual time
        assert double.makespan_ms < single.makespan_ms

    def test_verdicts_identical_across_lane_counts(
        self, untrained_classifier
    ):
        events = _heavy_trace(seed=13)
        reports = {}
        for lanes in (1, 3):
            report = ServeLoop(
                _blocker(untrained_classifier),
                ServeSettings(
                    max_batch=8, max_wait_ms=1.0, max_depth=256, lanes=lanes
                ),
            ).run(events)
            assert report.stats.conserved() and not report.stats.shed
            reports[lanes] = report
        for one, three in zip(
            reports[1].results, reports[3].results
        ):
            assert one.request_id == three.request_id
            assert one.key == three.key
            np.testing.assert_array_equal(
                one.decision.probability, three.decision.probability
            )
            assert one.decision.is_ad == three.decision.is_ad

    def test_single_lane_serializes_on_lane_zero(self, untrained_classifier):
        report = ServeLoop(
            _blocker(untrained_classifier),
            ServeSettings(max_batch=4, max_wait_ms=1.0, lanes=1),
        ).run(_heavy_trace(seed=3))
        batched = [r for r in report.results if r.lane >= 0]
        assert batched and all(r.lane == 0 for r in batched)
        # memo hits / sheds never occupy a lane
        assert all(
            r.lane == -1 for r in report.results if r.memo_hit or r.shed
        )
        # one lane never overlaps: completions are monotone
        flushes = sorted(
            {(r.flush_ms, r.complete_ms) for r in batched}
        )
        for (_, done), (started, _) in zip(flushes, flushes[1:]):
            assert started >= done


class TestPriorityScheduling:
    def test_viewport_batch_preempts_older_below_fold(
        self, untrained_classifier
    ):
        """While the single lane is busy with a warmup batch, two
        below-the-fold frames queue, then two viewport frames.  When
        the lane frees, it must serve the viewport pair ahead of the
        strictly older fold pair (aging disabled by a huge ``aging_ms``
        so the classes cannot blur)."""
        rng = np.random.default_rng(21)
        frames = [
            rng.random((12, 14, 4)).astype(np.float32) for _ in range(6)
        ]
        warmup = [
            ArrivalEvent(
                at_ms=0.0, session_id="warmup", bitmap=frames[index],
                priority=PRIORITY_VIEWPORT,
            )
            for index in range(2)
        ]
        fold = [
            ArrivalEvent(
                at_ms=0.2 + 0.1 * index,
                session_id="fold",
                bitmap=frames[2 + index],
                priority=PRIORITY_BELOW_FOLD,
            )
            for index in range(2)
        ]
        viewport = [
            ArrivalEvent(
                at_ms=0.5 + 0.1 * index,
                session_id="viewport",
                bitmap=frames[4 + index],
                priority=PRIORITY_VIEWPORT,
            )
            for index in range(2)
        ]
        report = ServeLoop(
            _blocker(untrained_classifier),
            ServeSettings(
                max_batch=2, max_wait_ms=10.0, max_depth=64,
                lanes=1, aging_ms=10_000.0,
            ),
        ).run(warmup + fold + viewport)
        assert report.stats.conserved() and not report.stats.shed
        flush_of = {
            session: min(
                r.flush_ms
                for r in report.results
                if r.session_id == session
            )
            for session in ("warmup", "fold", "viewport")
        }
        # warmup held the lane past every later arrival...
        assert flush_of["warmup"] == 0.0
        # ...and the freed lane served viewport before the older fold
        assert flush_of["viewport"] < flush_of["fold"]

    def test_queue_wait_tracked_per_priority(self, untrained_classifier):
        events = synthesize_traffic(TrafficSpec(
            sessions=8, frames_per_session=8, viewport_frames=4,
            mean_gap_ms=0.5, seed=9,
        ))
        assert {e.priority for e in events} == {
            PRIORITY_VIEWPORT, PRIORITY_BELOW_FOLD
        }
        report = ServeLoop(
            _blocker(untrained_classifier),
            ServeSettings(max_batch=8, max_wait_ms=1.0, lanes=1),
        ).run(events)
        assert report.stats.conserved()
        by_priority = report.stats.queue_wait_by_priority
        assert set(by_priority) == {PRIORITY_VIEWPORT, PRIORITY_BELOW_FOLD}
        answered = len(report.answered)
        assert sum(s.count for s in by_priority.values()) == answered
