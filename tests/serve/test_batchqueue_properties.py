"""Property-based tests of the micro-batching queue (hypothesis).

The four laws the serving layer stands on, checked over arbitrary
arrival/poll schedules on a virtual clock:

1. **FIFO** — batches pop requests in arrival order (which implies
   FIFO per session: a session's frames never reorder),
2. **bounded batches** — no popped batch exceeds ``max_batch``,
3. **deadline** — after polling at time ``t``, no request whose
   ``max_wait_ms`` deadline has passed is still queued,
4. **conservation** — every offered request is either admitted (and
   eventually popped exactly once) or shed at admission; nothing is
   lost, duplicated, or silently dropped.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import ServeSettings
from repro.serve import BatchQueue, ServeRequest

_DUMMY = np.zeros((1, 1, 4), dtype=np.float32)

_settings_strategy = st.builds(
    ServeSettings,
    max_batch=st.integers(1, 8),
    max_wait_ms=st.floats(0.0, 10.0, allow_nan=False),
    max_depth=st.integers(8, 24),
)

# one step per arrival: (virtual gap before it, session id, whether the
# driver polls the queue right after admitting it)
_schedule_strategy = st.lists(
    st.tuples(
        st.floats(0.0, 6.0, allow_nan=False),
        st.integers(0, 3),
        st.booleans(),
    ),
    min_size=1,
    max_size=60,
)


def _drain_due(queue, now_ms, popped):
    while True:
        batch = queue.pop_batch(now_ms)
        if batch is None:
            return
        popped.append((now_ms, batch))


def _replay(config, schedule):
    """Drive a queue through the schedule; returns the full history."""
    queue = BatchQueue(config)
    now_ms = 0.0
    offered = []
    admitted = []
    shed = []
    popped = []
    for index, (gap_ms, session, poll) in enumerate(schedule):
        now_ms += gap_ms
        request = ServeRequest(
            request_id=index,
            session_id=f"session-{session}",
            key=f"key-{index}",
            bitmap=_DUMMY,
            arrival_ms=now_ms,
        )
        offered.append(request)
        assert queue.depth <= config.max_depth
        expect_shed = queue.depth >= config.max_depth
        accepted = queue.offer(request, now_ms)
        assert accepted == (not expect_shed)
        (admitted if accepted else shed).append(request)
        if poll:
            _drain_due(queue, now_ms, popped)
    # end of traffic: flush whatever remains, deadline or not
    final = queue.pop_batch(now_ms, force=True)
    while final is not None:
        popped.append((now_ms, final))
        final = queue.pop_batch(now_ms, force=True)
    return queue, offered, admitted, shed, popped


@settings(max_examples=80, deadline=None)
@given(config=_settings_strategy, schedule=_schedule_strategy)
def test_fifo_and_per_session_order(config, schedule):
    _, _, admitted, _, popped = _replay(config, schedule)
    popped_flat = [request for _, batch in popped for request in batch]
    # global FIFO over admitted requests...
    assert [r.request_id for r in popped_flat] == [
        r.request_id for r in admitted
    ]
    # ...which implies FIFO within every session
    for session in {r.session_id for r in admitted}:
        session_popped = [
            r.request_id for r in popped_flat if r.session_id == session
        ]
        assert session_popped == sorted(session_popped)


@settings(max_examples=80, deadline=None)
@given(config=_settings_strategy, schedule=_schedule_strategy)
def test_batches_never_exceed_max_batch(config, schedule):
    _, _, _, _, popped = _replay(config, schedule)
    assert all(len(batch) <= config.max_batch for _, batch in popped)


@settings(max_examples=80, deadline=None)
@given(config=_settings_strategy, schedule=_schedule_strategy)
def test_no_request_held_past_deadline_at_poll(config, schedule):
    """After any poll at time t, everything still queued is within its
    ``max_wait_ms`` budget (and below ``max_batch``) — the queue never
    sits on a due request."""
    queue = BatchQueue(config)
    now_ms = 0.0
    for index, (gap_ms, session, poll) in enumerate(schedule):
        now_ms += gap_ms
        queue.offer(
            ServeRequest(
                request_id=index,
                session_id=f"session-{session}",
                key=f"key-{index}",
                bitmap=_DUMMY,
                arrival_ms=now_ms,
            ),
            now_ms,
        )
        if poll:
            while queue.pop_batch(now_ms) is not None:
                pass
            assert not queue.due(now_ms)
            deadline = queue.next_deadline_ms()
            assert deadline is None or deadline > now_ms


@settings(max_examples=80, deadline=None)
@given(config=_settings_strategy, schedule=_schedule_strategy)
def test_requests_are_conserved(config, schedule):
    queue, offered, admitted, shed, popped = _replay(config, schedule)
    popped_flat = [request for _, batch in popped for request in batch]
    # every offer is accounted for: admitted + shed, no overlap
    assert len(admitted) + len(shed) == len(offered)
    assert {r.request_id for r in admitted}.isdisjoint(
        {r.request_id for r in shed}
    )
    # every admitted request pops exactly once; shed ones never do
    assert sorted(r.request_id for r in popped_flat) == sorted(
        r.request_id for r in admitted
    )
    assert len({r.request_id for r in popped_flat}) == len(popped_flat)
    # the queue's own ledger agrees
    assert queue.accepted_count == len(admitted)
    assert queue.shed_count == len(shed)
    assert queue.flushed_count == len(popped_flat)
    assert queue.depth == 0
