"""Property-based tests of the micro-batching queue (hypothesis).

The laws the serving layer stands on, checked over arbitrary
arrival/poll schedules on a virtual clock:

1. **FIFO** — with uniform priority, batches pop requests in arrival
   order (which implies FIFO per session: a session's frames never
   reorder),
2. **bounded batches** — no popped batch exceeds ``max_batch``,
3. **deadline** — after polling at time ``t``, no request whose
   ``max_wait_ms`` deadline has passed is still queued,
4. **conservation** — every offered request is either admitted (and
   eventually popped exactly once) or shed at admission; nothing is
   lost, duplicated, or silently dropped — and the ledger is
   priority-blind (admission never looks at the class),
5. **priority order** — mixed-priority pops rank by (effective
   priority, admission order), which preserves FIFO within every
   ``(session, priority)`` pair, and aging bounds starvation: a
   request that has waited ``priority * aging_ms`` ranks with the top
   class.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import ServeSettings
from repro.diff import FrameDiffer, RegionRecord, RegionView
from repro.serve import BatchQueue, ServeRequest

_DUMMY = np.zeros((1, 1, 4), dtype=np.float32)

_settings_strategy = st.builds(
    ServeSettings,
    max_batch=st.integers(1, 8),
    max_wait_ms=st.floats(0.0, 10.0, allow_nan=False),
    max_depth=st.integers(8, 24),
)

_priority_settings_strategy = st.builds(
    ServeSettings,
    max_batch=st.integers(1, 8),
    max_wait_ms=st.floats(0.0, 10.0, allow_nan=False),
    max_depth=st.integers(8, 24),
    aging_ms=st.floats(0.5, 16.0, allow_nan=False),
)

# one step per arrival: (virtual gap before it, session id, whether the
# driver polls the queue right after admitting it)
_schedule_strategy = st.lists(
    st.tuples(
        st.floats(0.0, 6.0, allow_nan=False),
        st.integers(0, 3),
        st.booleans(),
    ),
    min_size=1,
    max_size=60,
)

# mixed-priority schedules add a priority class (0 = viewport urgency,
# up to 2) to every arrival
_priority_schedule_strategy = st.lists(
    st.tuples(
        st.floats(0.0, 6.0, allow_nan=False),
        st.integers(0, 3),
        st.integers(0, 2),
        st.booleans(),
    ),
    min_size=1,
    max_size=60,
)


def _drain_due(queue, now_ms, popped):
    while True:
        batch = queue.pop_batch(now_ms)
        if batch is None:
            return
        popped.append((now_ms, batch))


def _replay(config, schedule):
    """Drive a queue through the schedule; returns the full history."""
    queue = BatchQueue(config)
    now_ms = 0.0
    offered = []
    admitted = []
    shed = []
    popped = []
    for index, (gap_ms, session, poll) in enumerate(schedule):
        now_ms += gap_ms
        request = ServeRequest(
            request_id=index,
            session_id=f"session-{session}",
            key=f"key-{index}",
            bitmap=_DUMMY,
            arrival_ms=now_ms,
        )
        offered.append(request)
        assert queue.depth <= config.max_depth
        expect_shed = queue.depth >= config.max_depth
        accepted = queue.offer(request, now_ms)
        assert accepted == (not expect_shed)
        (admitted if accepted else shed).append(request)
        if poll:
            _drain_due(queue, now_ms, popped)
    # end of traffic: flush whatever remains, deadline or not
    final = queue.pop_batch(now_ms, force=True)
    while final is not None:
        popped.append((now_ms, final))
        final = queue.pop_batch(now_ms, force=True)
    return queue, offered, admitted, shed, popped


@settings(max_examples=80, deadline=None)
@given(config=_settings_strategy, schedule=_schedule_strategy)
def test_fifo_and_per_session_order(config, schedule):
    _, _, admitted, _, popped = _replay(config, schedule)
    popped_flat = [request for _, batch in popped for request in batch]
    # global FIFO over admitted requests...
    assert [r.request_id for r in popped_flat] == [
        r.request_id for r in admitted
    ]
    # ...which implies FIFO within every session
    for session in {r.session_id for r in admitted}:
        session_popped = [
            r.request_id for r in popped_flat if r.session_id == session
        ]
        assert session_popped == sorted(session_popped)


@settings(max_examples=80, deadline=None)
@given(config=_settings_strategy, schedule=_schedule_strategy)
def test_batches_never_exceed_max_batch(config, schedule):
    _, _, _, _, popped = _replay(config, schedule)
    assert all(len(batch) <= config.max_batch for _, batch in popped)


@settings(max_examples=80, deadline=None)
@given(config=_settings_strategy, schedule=_schedule_strategy)
def test_no_request_held_past_deadline_at_poll(config, schedule):
    """After any poll at time t, everything still queued is within its
    ``max_wait_ms`` budget (and below ``max_batch``) — the queue never
    sits on a due request."""
    queue = BatchQueue(config)
    now_ms = 0.0
    for index, (gap_ms, session, poll) in enumerate(schedule):
        now_ms += gap_ms
        queue.offer(
            ServeRequest(
                request_id=index,
                session_id=f"session-{session}",
                key=f"key-{index}",
                bitmap=_DUMMY,
                arrival_ms=now_ms,
            ),
            now_ms,
        )
        if poll:
            while queue.pop_batch(now_ms) is not None:
                pass
            assert not queue.due(now_ms)
            deadline = queue.next_deadline_ms()
            assert deadline is None or deadline > now_ms


@settings(max_examples=80, deadline=None)
@given(config=_settings_strategy, schedule=_schedule_strategy)
def test_requests_are_conserved(config, schedule):
    queue, offered, admitted, shed, popped = _replay(config, schedule)
    popped_flat = [request for _, batch in popped for request in batch]
    # every offer is accounted for: admitted + shed, no overlap
    assert len(admitted) + len(shed) == len(offered)
    assert {r.request_id for r in admitted}.isdisjoint(
        {r.request_id for r in shed}
    )
    # every admitted request pops exactly once; shed ones never do
    assert sorted(r.request_id for r in popped_flat) == sorted(
        r.request_id for r in admitted
    )
    assert len({r.request_id for r in popped_flat}) == len(popped_flat)
    # the queue's own ledger agrees
    assert queue.accepted_count == len(admitted)
    assert queue.shed_count == len(shed)
    assert queue.flushed_count == len(popped_flat)
    assert queue.depth == 0


# ----------------------------------------------------------------------
# Priority-class properties
# ----------------------------------------------------------------------
def _replay_priorities(config, schedule):
    """Drive a queue through a mixed-priority schedule.

    Returns the pop history with enough context to check ordering:
    each popped batch is ``(pop_time, [(admission_index, request)])``.
    """
    queue = BatchQueue(config)
    now_ms = 0.0
    offered = []
    admitted = []
    shed = []
    popped = []
    admission_index = {}

    def drain(force=False):
        while True:
            batch = queue.pop_batch(now_ms, force=force)
            if batch is None:
                return
            popped.append(
                (now_ms, [(admission_index[r.request_id], r) for r in batch])
            )

    for index, (gap_ms, session, priority, poll) in enumerate(schedule):
        now_ms += gap_ms
        request = ServeRequest(
            request_id=index,
            session_id=f"session-{session}",
            key=f"key-{index}",
            bitmap=_DUMMY,
            arrival_ms=now_ms,
            priority=priority,
        )
        offered.append(request)
        expect_shed = queue.depth >= config.max_depth
        accepted = queue.offer(request, now_ms)
        # admission is priority-blind: it sheds exactly on total depth
        assert accepted == (not expect_shed)
        if accepted:
            admission_index[request.request_id] = len(admitted)
            admitted.append(request)
        else:
            shed.append(request)
        if poll:
            drain()
    drain(force=True)
    return queue, offered, admitted, shed, popped


@settings(max_examples=80, deadline=None)
@given(config=_priority_settings_strategy,
       schedule=_priority_schedule_strategy)
def test_batches_rank_by_effective_priority_then_admission(
    config, schedule
):
    """Every popped batch is ordered by (effective priority at pop
    time, admission order) — the queue's published scheduling law."""
    queue, _, _, _, popped = _replay_priorities(config, schedule)
    for pop_ms, entries in popped:
        ranks = [
            (queue.effective_priority(request, pop_ms), admission)
            for admission, request in entries
        ]
        assert ranks == sorted(ranks)


@settings(max_examples=80, deadline=None)
@given(config=_priority_settings_strategy,
       schedule=_priority_schedule_strategy)
def test_per_session_per_priority_fifo(config, schedule):
    """Two frames of one session at one priority never reorder, no
    matter how the classes interleave or age."""
    _, _, admitted, _, popped = _replay_priorities(config, schedule)
    popped_flat = [request for _, entries in popped for _, request in entries]
    pairs = {(r.session_id, r.priority) for r in admitted}
    for session, priority in pairs:
        order = [
            r.request_id
            for r in popped_flat
            if r.session_id == session and r.priority == priority
        ]
        assert order == sorted(order)


@settings(max_examples=80, deadline=None)
@given(config=_priority_settings_strategy,
       schedule=_priority_schedule_strategy)
def test_priority_conservation_and_bounds(config, schedule):
    """Conservation and batch bounds are priority-blind: the ledger
    balances exactly as in the uniform-priority law."""
    queue, offered, admitted, shed, popped = _replay_priorities(
        config, schedule
    )
    popped_flat = [request for _, entries in popped for _, request in entries]
    assert all(len(entries) <= config.max_batch for _, entries in popped)
    assert len(admitted) + len(shed) == len(offered)
    assert sorted(r.request_id for r in popped_flat) == sorted(
        r.request_id for r in admitted
    )
    assert len({r.request_id for r in popped_flat}) == len(popped_flat)
    assert queue.accepted_count == len(admitted)
    assert queue.shed_count == len(shed)
    assert queue.flushed_count == len(popped_flat)
    assert queue.depth == 0


@settings(max_examples=60, deadline=None)
@given(
    aging_ms=st.floats(0.5, 8.0, allow_nan=False),
    priority=st.integers(1, 3),
    extra_wait=st.floats(0.0, 50.0, allow_nan=False),
)
def test_aging_bounds_starvation(aging_ms, priority, extra_wait):
    """Within ``(priority + 1) * aging_ms`` of waiting, a request ranks
    with the top class — so a sustained flood of urgent arrivals can
    delay it a bounded amount, then only behind strictly older
    top-class work.  (The +1 step absorbs float flooring at the exact
    boundary.)"""
    config = ServeSettings(aging_ms=aging_ms)
    queue = BatchQueue(config)
    request = ServeRequest(
        request_id=0,
        session_id="s",
        key="k",
        bitmap=_DUMMY,
        arrival_ms=0.0,
        priority=priority,
    )
    matured = (priority + 1) * aging_ms + extra_wait
    assert queue.effective_priority(request, matured) == 0
    # and aging never *worsens* a priority, nor goes below the top
    for t in (0.0, aging_ms / 2, matured):
        effective = queue.effective_priority(request, t)
        assert 0 <= effective <= priority


# ----------------------------------------------------------------------
# Extreme aging over diff-generated partial-page streams
# ----------------------------------------------------------------------
#: slot pools small enough that revisits overlap heavily — the regime
#: the diff layer produces: most of a page inherits, a residue enqueues
_SLOT_URLS = [f"https://site.example/slot{i}.png" for i in range(6)]
_SLOT_KEYS = ["ck-ad", "ck-content", "ck-churned"]
#: per-content priority class: ads are viewport-urgent, churned
#: creatives are background — gives every residue stream mixed classes
_SLOT_PRIORITY = {"ck-ad": 0, "ck-content": 1, "ck-churned": 3}

_region_strategy = st.builds(
    RegionView,
    url=st.sampled_from(_SLOT_URLS),
    content_key=st.sampled_from(_SLOT_KEYS),
)
_page_strategy = st.lists(_region_strategy, min_size=1, max_size=8)


def _residue_requests(first_visit, second_visit):
    """Run two visits through the differ; the reclassify residue of the
    second visit becomes the queue's arrival stream."""
    differ = FrameDiffer()
    differ.commit(
        "s", "page",
        [
            RegionRecord.from_view(
                view,
                view.content_key == "ck-ad",
                0.97 if view.content_key == "ck-ad" else 0.03,
            )
            for view in first_visit
        ],
    )
    plan = differ.plan("s", "page", second_visit)
    # the plan partitions the page: whatever does not inherit enqueues
    current = {view.url for view in second_visit}
    assert plan.inherited_urls | {v.url for v in plan.reclassify} == current
    return [
        ServeRequest(
            request_id=index,
            session_id="s",
            key=view.url,
            bitmap=_DUMMY,
            arrival_ms=float(index),
            priority=_SLOT_PRIORITY[view.content_key],
        )
        for index, view in enumerate(plan.reclassify)
    ]


@settings(max_examples=80, deadline=None)
@given(
    first_visit=_page_strategy,
    second_visit=_page_strategy,
    aging_ms=st.sampled_from([1e-6, 1e6]),
)
def test_extreme_aging_over_diff_residue_streams(
    first_visit, second_visit, aging_ms
):
    """At both ends of the aging dial the queue stays lawful on the
    partial-page streams the diff layer emits.  ``aging_ms ~ 1e-6``
    collapses every class to the top one — pops are pure admission
    order; ``aging_ms ~ 1e6`` never promotes within the test horizon —
    pops rank by the static class.  Either way the ledger balances."""
    requests = _residue_requests(first_visit, second_visit)
    config = ServeSettings(max_batch=3, max_wait_ms=4.0, aging_ms=aging_ms)
    queue = BatchQueue(config)
    for request in requests:
        assert queue.offer(request, request.arrival_ms)
    drain_ms = (requests[-1].arrival_ms + 1.0) if requests else 1.0
    batches = []
    while True:
        batch = queue.pop_batch(drain_ms, force=True)
        if batch is None:
            break
        batches.append(batch)
    flat = [request for batch in batches for request in batch]
    assert all(len(batch) <= config.max_batch for batch in batches)
    assert sorted(r.request_id for r in flat) == [
        r.request_id for r in requests
    ]
    assert queue.flushed_count == queue.accepted_count == len(requests)
    assert queue.depth == 0 and queue.shed_count == 0
    if aging_ms <= 1e-3:
        # everything matured past every class boundary: strict FIFO
        assert [r.request_id for r in flat] == [
            r.request_id for r in requests
        ]
    else:
        # nothing aged at all: every batch ranks by the static class,
        # FIFO within it
        for batch in batches:
            ranks = [(r.priority, r.request_id) for r in batch]
            assert ranks == sorted(ranks)
