"""The diff tier in the serving layer: snapshot recall in front of
everything, revisit traffic, and bit-identical off-path guarantees."""

import asyncio
from dataclasses import replace

import numpy as np
import pytest

from repro.cascade import CascadeRouter, FrameProvenance
from repro.core import (
    AdClassifier,
    PercivalBlocker,
    PercivalConfig,
    ServeSettings,
)
from repro.diff import FrameDiffer, RegionRecord, RegionView
from repro.serve import (
    ArrivalEvent,
    AsyncServeFront,
    ServeLoop,
    TrafficSpec,
    synthesize_traffic,
)

SETTINGS = ServeSettings(max_batch=16, max_wait_ms=4.0, max_depth=512, lanes=1)
SPEC = TrafficSpec(
    sessions=6,
    frames_per_session=8,
    duplicate_fraction=0.3,
    provenance=True,
    sites=3,
    revisits=2,
    revisit_churn=0.2,
    seed=11,
)


def _blocker():
    return PercivalBlocker(
        AdClassifier(PercivalConfig(calibrated_latency_ms=1.0)),
        calibrated_latency_ms=1.0,
    )


@pytest.fixture()
def revisit_traffic():
    return synthesize_traffic(SPEC)


def test_revisits_do_not_perturb_the_base_trace():
    """The revisit generator draws from its own derived RNG stream:
    the base trace is bit-identical with revisits on or off."""
    flat = synthesize_traffic(replace(SPEC, revisits=0))
    with_revisits = synthesize_traffic(SPEC)
    assert len(with_revisits) == len(flat) * (1 + SPEC.revisits)
    horizon = max(event.at_ms for event in flat)
    prefix = [e for e in with_revisits if e.at_ms <= horizon]
    assert len(prefix) == len(flat)
    for bare, rich in zip(flat, prefix):
        assert bare.at_ms == rich.at_ms
        assert bare.session_id == rich.session_id
        assert bare.content_key == rich.content_key
        assert bare.provenance == rich.provenance
        np.testing.assert_array_equal(bare.bitmap, rich.bitmap)


def test_revisit_epochs_repeat_page_identity():
    """Un-churned revisit slots re-emit the same URL and content key —
    the identity the diff tier answers on."""
    events = synthesize_traffic(replace(SPEC, revisit_churn=0.0))
    by_session_url = {}
    for event in events:
        key = (event.session_id, event.provenance.url)
        by_session_url.setdefault(key, []).append(event.content_key)
    repeated = [keys for keys in by_session_url.values() if len(keys) > 1]
    assert repeated, "revisit epochs must repeat page regions"
    for keys in repeated:
        assert len(set(keys)) == 1


def test_spec_validation():
    with pytest.raises(ValueError):
        TrafficSpec(revisits=-1)
    with pytest.raises(ValueError):
        TrafficSpec(revisit_churn=1.5)


def test_diff_false_is_the_pre_diff_path(revisit_traffic, monkeypatch):
    """``differ=False`` pins the layer off even when the environment
    says on — results match a run where the knob does not exist."""
    monkeypatch.delenv("PERCIVAL_DIFF", raising=False)
    baseline = ServeLoop(_blocker(), SETTINGS, differ=False).run(
        revisit_traffic
    )
    monkeypatch.setenv("PERCIVAL_DIFF", "on")
    pinned = ServeLoop(_blocker(), SETTINGS, differ=False).run(
        revisit_traffic
    )
    assert pinned.stats.diff_hits == 0
    assert pinned.stats.diff is None
    assert pinned.makespan_ms == baseline.makespan_ms
    for a, b in zip(baseline.results, pinned.results):
        assert (a.request_id, a.complete_ms, a.decision.probability) == (
            b.request_id, b.complete_ms, b.decision.probability
        )


def test_diff_on_changes_no_verdicts(revisit_traffic):
    """The acceptance law: every P(ad) and every final verdict is
    bit-identical to the diff-off run — the tier only changes *where*
    answers come from, never what they are.  (``cascade=False`` pins
    the rule tiers off: a rule hit carries its *compiled* probability,
    so an environment-injected router would make probabilities depend
    on rule compile timing — a cascade property, not a diff one.)"""
    off = ServeLoop(
        _blocker(), SETTINGS, cascade=False, differ=False
    ).run(revisit_traffic)
    differ = FrameDiffer()
    on = ServeLoop(
        _blocker(), SETTINGS, cascade=False, differ=differ
    ).run(revisit_traffic)
    assert off.stats.shed == on.stats.shed == 0
    off_verdicts = {
        r.request_id: (r.decision.is_ad, r.decision.probability)
        for r in off.results
    }
    on_verdicts = {
        r.request_id: (r.decision.is_ad, r.decision.probability)
        for r in on.results
    }
    assert off_verdicts == on_verdicts
    assert on.stats.diff_hits > 0
    assert on.stats.diff is differ.stats
    # snapshot recall replaces memo traffic, never model compute: the
    # frames that reach the batch pipeline are the same
    assert on.stats.batched_requests == off.stats.batched_requests


def test_diff_hits_skip_hash_memo_and_queue(revisit_traffic):
    differ = FrameDiffer()
    report = ServeLoop(_blocker(), SETTINGS, differ=differ).run(
        revisit_traffic
    )
    stats = report.stats
    assert stats.conserved()
    diff_results = [r for r in report.results if r.diff_hit]
    assert len(diff_results) == stats.diff_hits > 0
    for result in diff_results:
        # answered at arrival, before fingerprinting: no key, no lane
        assert result.key == ""
        assert result.complete_ms == result.arrival_ms
        assert result.lane == -1
        assert not result.memo_hit
        assert result.decision.from_cache
    assert (
        stats.batched_requests + stats.memo_hits + stats.coalesced
        + stats.rule_hits + stats.diff_hits == stats.answered
    )


def test_diff_tier_wins_over_rules_and_memo():
    """Tier order is diff -> rule -> memo: a frame the snapshot can
    answer never reaches the cascade router or the fingerprint."""
    rng = np.random.default_rng(5)
    bitmap = rng.random((32, 32, 4)).astype(np.float32)
    provenance = FrameProvenance(
        url="https://ads.net.example/serve/c1.png",
        page_domain="site0.example",
        width=320,
        height=100,
    )
    differ = FrameDiffer()
    differ.remember(
        "s0", provenance.page_domain,
        RegionRecord(
            url=provenance.url, content_key="ck", width=320, height=100,
            is_ad=True, probability=0.93,
        ),
    )
    router = CascadeRouter.with_default_filterlist()
    router.cache.compile_rule(provenance.micro_key(), True, 0.99)
    blocker = _blocker()
    event = ArrivalEvent(
        at_ms=0.0, session_id="s0", bitmap=bitmap,
        provenance=provenance, content_key="ck",
    )
    report = ServeLoop(
        blocker, SETTINGS, cascade=router, differ=differ
    ).run([event])
    (result,) = report.results
    assert result.diff_hit and not result.rule_hit and not result.memo_hit
    assert result.decision.probability == 0.93
    assert router.stats.routed == 0
    assert differ.stats.recall_hits == 1


def test_async_front_diff_tier():
    """The asyncio front door answers revisited frames from the
    snapshot with the same decision the first pass computed."""
    blocker = _blocker()
    differ = FrameDiffer()
    rng = np.random.default_rng(9)
    bitmap = rng.random((32, 32, 4)).astype(np.float32)
    provenance = FrameProvenance(
        url="https://cdn.site.example/img/1.jpg",
        page_domain="site.example",
    )

    async def drive():
        front = AsyncServeFront(
            blocker, ServeSettings(max_batch=4, max_wait_ms=1.0),
            differ=differ,
        )
        first = await front.submit(
            bitmap, session_id="s0", provenance=provenance,
            content_key="ck",
        )
        second = await front.submit(
            bitmap, session_id="s0", provenance=provenance,
            content_key="ck",
        )
        await front.aclose()
        return front.stats, first, second

    stats, first, second = asyncio.run(drive())
    assert stats.diff_hits == 1
    assert not first.from_cache and second.from_cache
    assert first.is_ad == second.is_ad
    assert first.probability == second.probability
    assert stats.conserved()


def test_changed_content_is_never_answered_from_the_snapshot():
    """A region whose bytes changed re-classifies: stale verdicts can
    not leak through the content-key check."""
    differ = FrameDiffer()
    differ.remember(
        "s0", "page",
        RegionRecord(
            url="u", content_key="old", is_ad=True, probability=0.9
        ),
    )
    assert differ.recall("s0", "page", "u", "new") is None
    view = RegionView(url="u", content_key="new")
    plan = differ.plan("s0", "page", [view])
    assert plan.inherit == []
    assert [v.url for v in plan.reclassify] == ["u"]
