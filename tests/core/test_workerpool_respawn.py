"""The bounded respawn budget and the pool's health counters.

A dead worker is replaced on the next call — but only while the
``respawn_budget`` lasts, and consecutive crash rounds back off
exponentially.  Past the budget (or inside a backoff window) the pool
serves *degraded* on its survivors, and with none left it raises so
callers fall back in-process.  ``stats()`` and ``available_capacity``
must tell the serving layer the truth at every stage."""

import numpy as np
import pytest

from repro.core import InferenceWorkerPool, WorkerPoolError


def _batch(classifier, count=4, seed=0):
    rng = np.random.default_rng(seed)
    size = classifier.config.input_size
    return rng.standard_normal((count, 4, size, size)).astype(np.float32)


def _kill(pool, index=0):
    victim = pool._workers[index].process
    victim.terminate()
    victim.join()


class TestRespawnBudget:
    def test_budget_caps_replacements_then_degrades(
        self, untrained_classifier
    ):
        """One budgeted respawn heals the first death; the second death
        finds the budget spent and the pool scatters over the lone
        survivor — same probabilities, fewer processes."""
        batch = _batch(untrained_classifier)
        reference = untrained_classifier.predict_proba_tensor(batch)
        with InferenceWorkerPool(
            num_workers=2, timeout_s=10.0,
            respawn_budget=1, respawn_backoff_s=0.0,
        ) as pool:
            pool.publish(untrained_classifier)

            _kill(pool)
            np.testing.assert_array_equal(
                pool.predict_proba(batch), reference
            )
            assert pool.alive_workers == 2  # healed, budget now spent
            assert pool.respawns == 1
            assert pool.budget_exhausted

            _kill(pool)
            np.testing.assert_array_equal(
                pool.predict_proba(batch), reference
            )
            assert pool.alive_workers == 1  # degraded, not healed
            assert pool.respawns == 1
            # capacity honestly reports the survivors, not num_workers
            assert pool.available_capacity == 1

    def test_zero_budget_and_zero_survivors_raises(
        self, untrained_classifier
    ):
        """With no budget at all, losing every worker leaves nothing to
        scatter over: the pool raises and the caller falls back."""
        with InferenceWorkerPool(
            num_workers=2, timeout_s=10.0,
            respawn_budget=0, respawn_backoff_s=0.0,
        ) as pool:
            pool.publish(untrained_classifier)
            assert pool.budget_exhausted  # 0 respawns allowed from birth
            _kill(pool, 0)
            _kill(pool, 1)
            with pytest.raises(WorkerPoolError, match="no live workers"):
                pool.predict_proba(_batch(untrained_classifier))

    def test_backoff_defers_the_second_replacement(
        self, untrained_classifier
    ):
        """The first respawn of a streak is immediate; the next death
        inside the backoff window is NOT replaced yet — the pool serves
        on the survivor and the respawn counter holds still."""
        batch = _batch(untrained_classifier, seed=1)
        reference = untrained_classifier.predict_proba_tensor(batch)
        with InferenceWorkerPool(
            num_workers=2, timeout_s=10.0,
            respawn_budget=4, respawn_backoff_s=60.0,
        ) as pool:
            pool.publish(untrained_classifier)

            _kill(pool)
            np.testing.assert_array_equal(
                pool.predict_proba(batch), reference
            )
            assert pool.respawns == 1
            assert pool.alive_workers == 2

            _kill(pool)
            np.testing.assert_array_equal(
                pool.predict_proba(batch), reference
            )
            assert pool.respawns == 1  # deferred, not spent
            assert pool.alive_workers == 1
            assert not pool.budget_exhausted

    def test_stats_snapshot(self, untrained_classifier):
        with InferenceWorkerPool(
            num_workers=2, timeout_s=10.0,
            respawn_budget=3, respawn_backoff_s=0.0,
        ) as pool:
            pool.publish(untrained_classifier)
            _kill(pool)
            pool.predict_proba(_batch(untrained_classifier))
            assert pool.stats() == {
                "num_workers": 2,
                "alive_workers": 2,
                "respawns": 1,
                "respawn_budget": 3,
                "budget_exhausted": False,
                "chaos_publish_failures": 0,
            }


class TestChaosPublishFailure:
    def test_armed_publish_fails_exactly_once(self, untrained_classifier):
        """Arming the fault makes the fingerprint read unpublished (so
        staleness checks route through publish), the next publish
        raises once, and the one after ships normally."""
        with InferenceWorkerPool(num_workers=2, timeout_s=10.0) as pool:
            fingerprint = pool.publish(untrained_classifier)
            assert pool.chaos_fail_next_publish()
            assert pool.published_fingerprint is None
            with pytest.raises(WorkerPoolError, match="injected publish"):
                pool.publish(untrained_classifier)
            assert pool.stats()["chaos_publish_failures"] == 1
            # the fault is one-shot: publication works again
            assert pool.publish(untrained_classifier) == fingerprint
            assert pool.published_fingerprint == fingerprint

    def test_arming_a_closed_pool_is_inert(self, untrained_classifier):
        pool = InferenceWorkerPool(num_workers=1, timeout_s=10.0)
        pool.close()
        assert not pool.chaos_fail_next_publish()
