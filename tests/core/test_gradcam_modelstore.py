"""Grad-CAM salience and the model store."""

import os

import numpy as np
import pytest

from repro.core import GradCam, ModelStore, PercivalConfig
from repro.synth.adgen import AdSpec, generate_ad
from repro.utils.rng import spawn_rng


class TestGradCam:
    def test_salience_shape_matches_bitmap(self, reference_classifier):
        ad = generate_ad(spawn_rng(1, "g"), AdSpec(cue_strength=1.0))
        cam = GradCam(reference_classifier).salience(ad)
        assert cam.shape == ad.shape[:2]

    def test_salience_in_unit_range(self, reference_classifier):
        ad = generate_ad(spawn_rng(2, "g"), AdSpec(cue_strength=1.0))
        cam = GradCam(reference_classifier).salience(ad)
        assert cam.min() >= 0.0
        assert cam.max() <= 1.0 + 1e-6

    def test_layer_selection(self, reference_classifier):
        gradcam = GradCam(reference_classifier)
        ad = generate_ad(spawn_rng(3, "g"), AdSpec(cue_strength=1.0))
        layers = gradcam.available_layers()
        early = gradcam.salience(ad, layer=layers[1])
        late = gradcam.salience(ad, layer=layers[-1])
        assert early.shape == late.shape
        assert not np.allclose(early, late)

    def test_invalid_layer_rejected(self, reference_classifier):
        gradcam = GradCam(reference_classifier)
        ad = generate_ad(spawn_rng(4, "g"), AdSpec())
        with pytest.raises(ValueError):
            gradcam.salience(ad, layer=1)  # 1 is the stem ReLU

    def test_cue_mass_fraction(self, reference_classifier):
        gradcam = GradCam(reference_classifier)
        ad = generate_ad(spawn_rng(5, "g"), AdSpec(cue_strength=1.0))
        height, width = ad.shape[:2]
        full = gradcam.cue_mass(ad, (0, 0, width, height))
        assert full == pytest.approx(1.0, abs=1e-5)
        half = gradcam.cue_mass(ad, (0, 0, width // 2, height))
        assert 0.0 <= half <= 1.0


class TestModelStore:
    def test_cache_roundtrip(self, tmp_path):
        store = ModelStore(cache_dir=str(tmp_path))
        config = PercivalConfig(
            epochs=1, num_train_ads=24, num_train_nonads=24,
            input_size=16, seed=3,
        )
        first = store.load_or_train(config)
        files = os.listdir(tmp_path)
        assert any(f.endswith(".npz") for f in files)
        assert any(f.endswith(".json") for f in files)

        second = store.load_or_train(config)
        ad = generate_ad(spawn_rng(0, "m"), AdSpec())
        assert first.ad_probability(ad) == pytest.approx(
            second.ad_probability(ad), abs=1e-6
        )

    def test_different_configs_different_entries(self, tmp_path):
        store = ModelStore(cache_dir=str(tmp_path))
        a = PercivalConfig(epochs=1, num_train_ads=24,
                           num_train_nonads=24, input_size=16, seed=3)
        b = PercivalConfig(epochs=1, num_train_ads=24,
                           num_train_nonads=24, input_size=16, seed=4)
        store.load_or_train(a)
        store.load_or_train(b)
        assert len([f for f in os.listdir(tmp_path)
                    if f.endswith(".npz")]) == 2

    def test_threshold_not_part_of_cache_key(self):
        a = PercivalConfig(ad_threshold=0.5)
        b = PercivalConfig(ad_threshold=0.9)
        assert a.cache_key() == b.cache_key()
