"""Bitmap preprocessing."""

import numpy as np
import pytest

from repro.core.preprocessing import preprocess_batch, preprocess_bitmap


class TestPreprocessBitmap:
    def test_output_shape(self, rng):
        bitmap = rng.random((50, 30, 4)).astype(np.float32)
        tensor = preprocess_bitmap(bitmap, 32)
        assert tensor.shape == (4, 32, 32)

    def test_rgb_gets_alpha(self, rng):
        bitmap = rng.random((20, 20, 3)).astype(np.float32)
        tensor = preprocess_bitmap(bitmap, 16)
        assert tensor.shape == (4, 16, 16)
        # alpha channel normalized from 1.0 -> 1.0 after centering
        assert np.allclose(tensor[3], (1.0 - 0.5) * 2.0)

    def test_normalized_range(self, rng):
        bitmap = rng.random((20, 20, 4)).astype(np.float32)
        tensor = preprocess_bitmap(bitmap, 16)
        assert tensor.min() >= -1.0 - 1e-5
        assert tensor.max() <= 1.0 + 1e-5

    def test_bad_rank_rejected(self):
        with pytest.raises(ValueError):
            preprocess_bitmap(np.zeros((4, 4)), 16)

    def test_bad_channels_rejected(self):
        with pytest.raises(ValueError):
            preprocess_bitmap(np.zeros((4, 4, 2)), 16)

    def test_paper_input_size_supported(self, rng):
        bitmap = rng.random((300, 250, 4)).astype(np.float32)
        tensor = preprocess_bitmap(bitmap, 224)
        assert tensor.shape == (4, 224, 224)


class TestPreprocessBatch:
    def test_stacks(self, rng):
        bitmaps = [
            rng.random((10 + i, 20, 4)).astype(np.float32)
            for i in range(3)
        ]
        batch = preprocess_batch(bitmaps, 16)
        assert batch.shape == (3, 4, 16, 16)

    def test_empty_batch(self):
        batch = preprocess_batch([], 16)
        assert batch.shape == (0, 4, 16, 16)
