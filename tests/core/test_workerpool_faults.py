"""Failure injection for the worker pool under the serving layer.

The serving stack multiplies the pool's failure surface: batches now
arrive from a queue that must conserve requests, weights can republish
(including a precision flip) *between* flushes, and a worker can die
while a flush is mid-scatter.  The invariants under test:

* verdicts never differ from the in-process reference, whatever fails,
* the blocker's fallback path fires exactly once per injected failure
  (``PercivalBlocker.pool_fallbacks`` is the observable),
* overload sheds explicitly and conserves requests,
* ``available_capacity`` tells the serving layer the truth: zero when
  closed, unpublished, or mid-dispatch.
"""

import numpy as np

from repro.core import (
    AdClassifier,
    InferenceWorkerPool,
    PercivalBlocker,
    PercivalConfig,
    ServeSettings,
    WorkerPoolError,
)
from repro.serve import ArrivalEvent, ServeLoop


def _frames(count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.random((10, 12, 4)).astype(np.float32) for _ in range(count)
    ]


def _burst(frames, start_ms=0.0, session="page"):
    return [
        ArrivalEvent(at_ms=start_ms, session_id=session, bitmap=frame)
        for frame in frames
    ]


def _reference_probabilities(classifier, frames):
    reference = PercivalBlocker(classifier, calibrated_latency_ms=1.0)
    return [reference.decide(frame).probability for frame in frames]


def _served_blocker(classifier, pool, shard_min_batch=4):
    return PercivalBlocker(
        classifier,
        calibrated_latency_ms=1.0,
        pool=pool,
        shard_min_batch=shard_min_batch,
    )


class _FailingPool:
    """Duck-typed pool wrapper that fails N scatters, then recovers."""

    def __init__(self, pool, failures):
        self._pool = pool
        self.failures_left = failures
        self.calls = 0

    @property
    def closed(self):
        return self._pool.closed

    @property
    def published_fingerprint(self):
        return self._pool.published_fingerprint

    @property
    def available_capacity(self):
        return self._pool.available_capacity

    def publish(self, classifier):
        return self._pool.publish(classifier)

    def predict_proba(self, batch):
        self.calls += 1
        if self.failures_left > 0:
            self.failures_left -= 1
            raise WorkerPoolError("injected mid-batch failure")
        return self._pool.predict_proba(batch)


class TestWorkerDeathUnderServeLoop:
    def test_death_mid_batch_falls_back_once_with_identical_verdicts(
        self, untrained_classifier, monkeypatch
    ):
        """A worker killed mid-batch degrades that one flush to the
        in-process path — one fallback, zero changed verdicts — and the
        pool heals for the next flush."""
        frames = _frames(8, seed=1)
        later = _frames(8, seed=2)
        with InferenceWorkerPool(num_workers=2, timeout_s=10.0) as pool:
            pool.publish(untrained_classifier)
            blocker = _served_blocker(untrained_classifier, pool)
            loop = ServeLoop(
                blocker,
                ServeSettings(max_batch=8, max_wait_ms=1.0, max_depth=32),
            )

            victim = pool._workers[0].process
            victim.terminate()
            victim.join()
            # freeze self-healing so the death is seen mid-batch
            with monkeypatch.context() as frozen:
                frozen.setattr(pool, "_sync_workers", lambda: None)
                report = loop.run(_burst(frames))
            assert blocker.pool_fallbacks == 1
            assert report.stats.conserved()
            served = [r.decision.probability for r in report.results]
            assert served == _reference_probabilities(
                untrained_classifier, frames
            )

            # healing unfrozen: the next serve wave respawns the worker
            # and shards again without further fallbacks
            second = loop.run(_burst(later))
            assert blocker.pool_fallbacks == 1
            assert second.stats.conserved()
            assert pool.alive_workers == 2

    def test_injected_failure_fires_fallback_exactly_once(
        self, untrained_classifier
    ):
        """Four pool-routed batches, one injected failure: exactly one
        fallback, and all 16 verdicts equal the reference."""
        frames = _frames(16, seed=3)
        with InferenceWorkerPool(num_workers=2) as inner:
            inner.publish(untrained_classifier)
            pool = _FailingPool(inner, failures=1)
            blocker = _served_blocker(untrained_classifier, pool)
            report = ServeLoop(
                blocker,
                ServeSettings(max_batch=4, max_wait_ms=1.0, max_depth=32),
                compute_model=lambda n: 0.5,
            ).run(_burst(frames))
        assert pool.calls == 4
        assert blocker.pool_fallbacks == 1
        assert report.stats.conserved()
        served = [r.decision.probability for r in report.results]
        assert served == _reference_probabilities(
            untrained_classifier, frames
        )


class TestQueueOverflowUnderPool:
    def test_overflow_sheds_explicitly_and_answers_the_rest(
        self, untrained_classifier
    ):
        """Filling the queue past the admission bound sheds visibly;
        every admitted request still gets the reference verdict."""
        frames = _frames(48, seed=5)
        with InferenceWorkerPool(num_workers=2) as pool:
            pool.publish(untrained_classifier)
            blocker = _served_blocker(untrained_classifier, pool)
            report = ServeLoop(
                blocker,
                ServeSettings(max_batch=4, max_wait_ms=1.0, max_depth=8),
                compute_model=lambda n: 40.0,  # slow lane -> backlog
            ).run(_burst(frames))
        assert report.stats.shed > 0
        assert report.stats.conserved()
        assert blocker.pool_fallbacks == 0
        expected = _reference_probabilities(untrained_classifier, frames)
        for event_index, result in enumerate(report.results):
            if result.shed:
                assert result.decision is None
            else:
                assert result.decision.probability == expected[event_index]


class TestPrecisionRepublishMidStream:
    def test_precision_flip_between_flushes_republishes_and_requotes(
        self,
    ):
        """Flipping storage precision between serve waves must ship a
        fresh publication (new fingerprint), clear the memo generation
        (no stale fp32 verdicts served), and keep every verdict equal
        to the in-process reference at the *new* precision."""
        classifier = AdClassifier(PercivalConfig(precision="fp32"))
        frames = _frames(8, seed=7)
        with InferenceWorkerPool(num_workers=2) as pool:
            pool.publish(classifier)
            fp32_fingerprint = pool.published_fingerprint
            blocker = _served_blocker(classifier, pool)
            loop = ServeLoop(
                blocker,
                ServeSettings(max_batch=8, max_wait_ms=1.0, max_depth=32),
            )
            first = loop.run(_burst(frames))
            assert first.stats.memo_hits == 0

            # mid-stream precision flip: same weights, new storage form
            classifier.precision = "fp16"
            classifier.invalidate_plan()

            second = loop.run(_burst(frames))
            assert pool.published_fingerprint != fp32_fingerprint
            assert (
                pool.published_fingerprint
                == classifier.weights_fingerprint()
            )
            # the memo generation rolled: the same frames were NOT
            # served from fp32-era cache entries
            assert second.stats.memo_hits == 0
            assert blocker.pool_fallbacks == 0
            served = [r.decision.probability for r in second.results]
            reference = AdClassifier(PercivalConfig(precision="fp16"))
            assert served == _reference_probabilities(reference, frames)


class TestNonBlockingCapacity:
    def test_capacity_states(self, untrained_classifier):
        pool = InferenceWorkerPool(num_workers=2)
        try:
            assert pool.available_capacity == 0  # nothing published
            pool.publish(untrained_classifier)
            assert pool.available_capacity == 2
            assert not pool.dispatching
        finally:
            pool.close()
        assert pool.available_capacity == 0  # closed

    def test_capacity_is_zero_mid_dispatch(
        self, untrained_classifier, monkeypatch
    ):
        """While a scatter/gather is in flight the pool reports no
        spare capacity — the serving layer never double-books it."""
        with InferenceWorkerPool(num_workers=2) as pool:
            pool.publish(untrained_classifier)
            observed = []
            original = pool._recv

            def spying_recv(worker):
                observed.append(pool.available_capacity)
                return original(worker)

            monkeypatch.setattr(pool, "_recv", spying_recv)
            rng = np.random.default_rng(0)
            size = untrained_classifier.config.input_size
            batch = rng.standard_normal((4, 4, size, size)).astype(
                np.float32
            )
            pool.predict_proba(batch)
            assert observed and all(value == 0 for value in observed)
            assert pool.available_capacity == 2  # free again after

    def test_serve_loop_records_capacity_per_flush(
        self, untrained_classifier
    ):
        frames = _frames(8, seed=11)
        with InferenceWorkerPool(num_workers=2) as pool:
            pool.publish(untrained_classifier)
            blocker = _served_blocker(untrained_classifier, pool)
            report = ServeLoop(
                blocker,
                ServeSettings(max_batch=8, max_wait_ms=1.0, max_depth=32),
            ).run(_burst(frames))
        assert report.stats.capacity_samples == [2]


class TestFallbackCounterBaseline:
    def test_healthy_pool_never_increments_fallbacks(
        self, untrained_classifier
    ):
        frames = _frames(12, seed=13)
        with InferenceWorkerPool(num_workers=2) as pool:
            pool.publish(untrained_classifier)
            blocker = _served_blocker(untrained_classifier, pool)
            blocker.decide_many(frames)
        assert blocker.pool_fallbacks == 0

    def test_poolless_blocker_never_counts_fallbacks(
        self, untrained_classifier
    ):
        blocker = PercivalBlocker(
            untrained_classifier, calibrated_latency_ms=1.0
        )
        blocker.decide_many(_frames(6, seed=17))
        assert blocker.pool_fallbacks == 0
