"""Multiprocess inference sharding: equivalence and failure modes.

The contract under test: sharding changes *where* a probability is
computed, never its value — worker death, a closed pool, or a disabled
knob (``PERCIVAL_WORKERS=0``) must all degrade to the single-process
fast path with identical verdicts.
"""

import numpy as np
import pytest

from repro.core import (
    AdClassifier,
    InferenceWorkerPool,
    ModelStore,
    PercivalBlocker,
    PercivalConfig,
    WorkerPoolError,
    configured_worker_count,
)


def _nchw_batch(classifier, count, seed=0):
    rng = np.random.default_rng(seed)
    size = classifier.config.input_size
    return rng.standard_normal((count, 4, size, size)).astype(np.float32)


def _bitmaps(count, seed=7):
    rng = np.random.default_rng(seed)
    return [rng.random((10, 12, 4)).astype(np.float32) for _ in range(count)]


@pytest.fixture()
def pool(untrained_classifier):
    pool = InferenceWorkerPool(num_workers=2)
    pool.publish(untrained_classifier)
    yield pool
    pool.close()


class TestShardedEquivalence:
    def test_matches_in_process_probabilities(self, pool, untrained_classifier):
        batch = _nchw_batch(untrained_classifier, 9)
        sharded = pool.predict_proba(batch)
        serial = untrained_classifier.predict_proba_tensor(batch)
        assert sharded.dtype == np.float32
        assert np.allclose(sharded, serial, atol=1e-6)

    def test_batch_smaller_than_worker_count(self, pool, untrained_classifier):
        batch = _nchw_batch(untrained_classifier, 1)
        sharded = pool.predict_proba(batch)
        serial = untrained_classifier.predict_proba_tensor(batch)
        assert sharded.shape == (1,)
        assert np.allclose(sharded, serial, atol=1e-6)

    def test_empty_batch(self, pool, untrained_classifier):
        size = untrained_classifier.config.input_size
        empty = np.empty((0, 4, size, size), dtype=np.float32)
        result = pool.predict_proba(empty)
        assert result.shape == (0,)
        assert result.dtype == np.float32

    def test_republish_same_weights_is_noop(self, pool, untrained_classifier):
        first = pool.published_fingerprint
        assert pool.publish(untrained_classifier) == first
        assert pool.published_fingerprint == first


class TestFailureModes:
    def test_dead_worker_is_respawned(self, pool, untrained_classifier):
        batch = _nchw_batch(untrained_classifier, 6)
        victim = pool._workers[0].process
        victim.terminate()
        victim.join()
        sharded = pool.predict_proba(batch)
        serial = untrained_classifier.predict_proba_tensor(batch)
        assert np.allclose(sharded, serial, atol=1e-6)
        assert pool.alive_workers == 2

    def test_death_mid_batch_raises_not_corrupts(
        self, untrained_classifier, monkeypatch
    ):
        pool = InferenceWorkerPool(num_workers=2, timeout_s=10.0)
        try:
            pool.publish(untrained_classifier)
            victim = pool._workers[0].process
            victim.terminate()
            victim.join()
            # freeze self-healing so the death looks mid-batch
            monkeypatch.setattr(pool, "_sync_workers", lambda: None)
            with pytest.raises(WorkerPoolError):
                pool.predict_proba(_nchw_batch(untrained_classifier, 6))
        finally:
            pool.close()

    def test_blocker_falls_back_on_dead_pool(self, untrained_classifier, monkeypatch):
        """A worker dying mid-batch must not change any verdict."""
        pool = InferenceWorkerPool(num_workers=2, timeout_s=10.0)
        try:
            pool.publish(untrained_classifier)
            victim = pool._workers[0].process
            victim.terminate()
            victim.join()
            monkeypatch.setattr(pool, "_sync_workers", lambda: None)
            blocker = PercivalBlocker(
                untrained_classifier,
                calibrated_latency_ms=1.0,
                pool=pool,
                shard_min_batch=4,
            )
            reference = PercivalBlocker(untrained_classifier, calibrated_latency_ms=1.0)
            bitmaps = _bitmaps(6)
            decisions = blocker.decide_many(bitmaps)
            expected = reference.decide_many(bitmaps)
            assert [d.is_ad for d in decisions] == [e.is_ad for e in expected]
            assert np.allclose(
                [d.probability for d in decisions],
                [e.probability for e in expected],
                atol=1e-6,
            )
            assert blocker.classifications == len(bitmaps)
        finally:
            pool.close()

    def test_pool_recovers_after_out_of_sync_reply(self, pool, untrained_classifier):
        """One bad batch must not poison the pipes for the next one."""
        batch = _nchw_batch(untrained_classifier, 6)
        # inject an orphan task directly: its reply will desync the pipe
        pool._workers[0].conn.send(("run", 999_999, batch[:1]))
        with pytest.raises(WorkerPoolError):
            pool.predict_proba(batch)
        sharded = pool.predict_proba(batch)  # pipes are clean again
        serial = untrained_classifier.predict_proba_tensor(batch)
        assert np.allclose(sharded, serial, atol=1e-6)
        assert pool.alive_workers == 2

    def test_blocker_falls_back_on_failed_republication(self, tmp_path, monkeypatch):
        """A publication failure (e.g. /dev/shm full) must degrade to
        in-process inference, not crash decide_many."""
        classifier = AdClassifier(PercivalConfig())
        pool = InferenceWorkerPool(num_workers=1)
        try:
            pool.publish(classifier)
            donor = AdClassifier(PercivalConfig(seed=5))
            path = str(tmp_path / "donor.npz")
            donor.save(path)
            classifier.load(path)  # fingerprint now differs from published

            def broken_pack(export, buffer):
                raise OSError("No space left on device")

            monkeypatch.setattr(classifier, "pack_weights_into", broken_pack)
            blocker = PercivalBlocker(
                classifier,
                calibrated_latency_ms=1.0,
                pool=pool,
                shard_min_batch=1,
            )
            reference = PercivalBlocker(classifier, calibrated_latency_ms=1.0)
            bitmaps = _bitmaps(4)
            decisions = blocker.decide_many(bitmaps)
            expected = reference.decide_many(bitmaps)
            assert [d.probability for d in decisions] == [
                e.probability for e in expected
            ]
        finally:
            pool.close()

    def test_blocker_falls_back_on_closed_pool(self, untrained_classifier):
        pool = InferenceWorkerPool(num_workers=1)
        pool.publish(untrained_classifier)
        pool.close()
        blocker = PercivalBlocker(
            untrained_classifier,
            calibrated_latency_ms=1.0,
            pool=pool,
            shard_min_batch=1,
        )
        decisions = blocker.decide_many(_bitmaps(3))
        assert len(decisions) == 3
        assert blocker.classifications == 3

    def test_small_batches_never_touch_the_pool(self, untrained_classifier):
        class ExplodingPool:
            closed = False
            published_fingerprint = "irrelevant"

            def publish(self, classifier):
                raise AssertionError("publish must not be called")

            def predict_proba(self, batch):
                raise AssertionError("predict_proba must not be called")

        blocker = PercivalBlocker(
            untrained_classifier,
            calibrated_latency_ms=1.0,
            pool=ExplodingPool(),
            shard_min_batch=64,
        )
        decisions = blocker.decide_many(_bitmaps(5))
        assert len(decisions) == 5


class TestTeardown:
    def test_close_is_idempotent(self, untrained_classifier):
        pool = InferenceWorkerPool(num_workers=1)
        pool.publish(untrained_classifier)
        pool.close()
        pool.close()
        assert pool.closed
        assert pool.alive_workers == 0

    def test_closed_pool_raises(self, untrained_classifier):
        pool = InferenceWorkerPool(num_workers=1)
        pool.publish(untrained_classifier)
        pool.close()
        with pytest.raises(WorkerPoolError):
            pool.predict_proba(_nchw_batch(untrained_classifier, 2))
        with pytest.raises(WorkerPoolError):
            pool.publish(untrained_classifier)

    def test_context_manager_closes(self, untrained_classifier):
        with InferenceWorkerPool(num_workers=1) as pool:
            pool.publish(untrained_classifier)
            pool.predict_proba(_nchw_batch(untrained_classifier, 2))
        assert pool.closed

    def test_shared_segment_unlinked_on_close(self, untrained_classifier):
        from multiprocessing import shared_memory

        pool = InferenceWorkerPool(num_workers=1)
        pool.publish(untrained_classifier)
        name = pool._segment.name
        pool.close()
        assert pool._segment is None
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestResize:
    """The autoscaling hook: capacity follows the lane count, verdicts
    never move."""

    def test_grow_spawns_workers_and_keeps_verdicts(self, untrained_classifier):
        batch = _nchw_batch(untrained_classifier, 9)
        with InferenceWorkerPool(num_workers=1) as pool:
            pool.publish(untrained_classifier)
            before = pool.predict_proba(batch)
            assert pool.resize(3) == 3
            assert pool.num_workers == 3
            assert pool.available_capacity == 3
            after = pool.predict_proba(batch)
        assert np.array_equal(before, after)

    def test_shrink_stops_highest_indexed_workers(self, untrained_classifier):
        batch = _nchw_batch(untrained_classifier, 9)
        with InferenceWorkerPool(num_workers=3) as pool:
            pool.publish(untrained_classifier)
            before = pool.predict_proba(batch)
            assert pool.resize(1) == 1
            assert pool.alive_workers == 1
            assert pool.available_capacity == 1
            after = pool.predict_proba(batch)
        assert np.array_equal(before, after)

    def test_resize_before_publish_defers_spawning(self, untrained_classifier):
        with InferenceWorkerPool(num_workers=1) as pool:
            assert pool.resize(2) == 2
            assert pool.num_workers == 2
            pool.publish(untrained_classifier)
            assert pool.available_capacity == 2

    def test_rejects_invalid_and_closed(self, untrained_classifier):
        pool = InferenceWorkerPool(num_workers=1)
        pool.publish(untrained_classifier)
        with pytest.raises(ValueError):
            pool.resize(0)
        pool.close()
        with pytest.raises(WorkerPoolError):
            pool.resize(2)

    def test_rejects_resize_mid_dispatch(self, untrained_classifier):
        """An in-flight batch's scatter order is already fixed; the
        resize must refuse rather than tear workers out from under it."""
        with InferenceWorkerPool(num_workers=1) as pool:
            pool.publish(untrained_classifier)
            pool._dispatching = True
            try:
                with pytest.raises(WorkerPoolError):
                    pool.resize(2)
            finally:
                pool._dispatching = False
            assert pool.num_workers == 1


class TestConfigKnob:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_WORKERS", "7")
        assert configured_worker_count(2) == 2
        assert configured_worker_count(0) == 0

    def test_env_integer(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_WORKERS", "3")
        assert configured_worker_count() == 3

    def test_env_auto_is_cores_minus_one(self, monkeypatch):
        import os

        monkeypatch.setenv("PERCIVAL_WORKERS", "auto")
        assert configured_worker_count() == max((os.cpu_count() or 1) - 1, 0)

    def test_env_invalid_raises(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_WORKERS", "many")
        with pytest.raises(ValueError):
            configured_worker_count()

    def test_negative_clamps_to_zero(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_WORKERS", "-2")
        assert configured_worker_count() == 0

    def test_cache_key_ignores_deployment_knobs(self):
        base = PercivalConfig()
        tuned = PercivalConfig(num_workers=4, shard_min_batch=8)
        assert base.cache_key() == tuned.cache_key()


class TestModelStorePool:
    def test_workers_zero_disables_sharding(
        self, monkeypatch, untrained_classifier, tmp_path
    ):
        monkeypatch.setenv("PERCIVAL_WORKERS", "0")
        store = ModelStore(cache_dir=str(tmp_path))
        assert store.worker_pool(untrained_classifier) is None

    def test_workers_zero_reproduces_single_process_path(
        self, monkeypatch, untrained_classifier, tmp_path
    ):
        """PERCIVAL_WORKERS=0 must walk exactly the PR 1 code path."""
        monkeypatch.setenv("PERCIVAL_WORKERS", "0")
        store = ModelStore(cache_dir=str(tmp_path))
        pool = store.worker_pool(untrained_classifier)
        blocker = PercivalBlocker(
            untrained_classifier, calibrated_latency_ms=1.0, pool=pool
        )
        assert blocker.pool is None
        bitmaps = _bitmaps(4)
        decisions = blocker.decide_many(bitmaps)
        reference = PercivalBlocker(untrained_classifier, calibrated_latency_ms=1.0)
        singles = [reference.decide(bitmap) for bitmap in bitmaps]
        assert [d.probability for d in decisions] == [s.probability for s in singles]
        assert blocker.classifications == len(bitmaps)

    def test_pool_shared_and_shut_down(self, untrained_classifier, tmp_path):
        store = ModelStore(cache_dir=str(tmp_path))
        pool = store.worker_pool(untrained_classifier, num_workers=1)
        again = store.worker_pool(untrained_classifier, num_workers=1)
        assert pool is again
        store.shutdown_pool()
        store.shutdown_pool()
        assert pool.closed

    def test_republish_after_load_ships_new_weights(
        self, untrained_classifier, tmp_path
    ):
        store = ModelStore(cache_dir=str(tmp_path))
        classifier = AdClassifier(untrained_classifier.config)
        try:
            pool = store.worker_pool(classifier, num_workers=1)
            stale = pool.published_fingerprint
            donor = AdClassifier(
                PercivalConfig(seed=untrained_classifier.config.seed + 9)
            )
            path = str(tmp_path / "donor.npz")
            donor.save(path)
            classifier.load(path)
            pool = store.worker_pool(classifier, num_workers=1)
            assert pool.published_fingerprint != stale
            assert pool.published_fingerprint == classifier.weights_fingerprint()
            batch = _nchw_batch(classifier, 5)
            assert np.allclose(
                pool.predict_proba(batch),
                classifier.predict_proba_tensor(batch),
                atol=1e-6,
            )
        finally:
            store.shutdown_pool()
