"""Adversarial attack/defense machinery (§6 extension)."""

import numpy as np
import pytest

from repro.core.adversarial import (
    EvasionReport,
    adversarial_finetune,
    evasion_rate,
    fgsm_perturb,
    input_gradient,
)
from repro.core.preprocessing import preprocess_batch
from repro.models.percivalnet import LABEL_AD
from repro.synth.adgen import AdSpec, generate_ad
from repro.utils.rng import spawn_rng


@pytest.fixture(scope="module")
def ad_tensors(reference_classifier):
    rng = spawn_rng(8, "adv")
    bitmaps = [
        generate_ad(rng, AdSpec(cue_strength=0.95)) for _ in range(24)
    ]
    return preprocess_batch(
        bitmaps, reference_classifier.config.input_size
    )


class TestInputGradient:
    def test_shape_matches_input(self, reference_classifier, ad_tensors):
        labels = np.full(ad_tensors.shape[0], LABEL_AD, dtype=np.int64)
        grad = input_gradient(reference_classifier, ad_tensors, labels)
        assert grad.shape == ad_tensors.shape

    def test_parameter_grads_cleared(self, reference_classifier,
                                     ad_tensors):
        labels = np.full(ad_tensors.shape[0], LABEL_AD, dtype=np.int64)
        input_gradient(reference_classifier, ad_tensors, labels)
        for param in reference_classifier.network.parameters():
            assert not param.grad.any()


class TestFGSM:
    def test_stays_in_feasible_range(self, reference_classifier,
                                     ad_tensors):
        labels = np.full(ad_tensors.shape[0], LABEL_AD, dtype=np.int64)
        perturbed = fgsm_perturb(
            reference_classifier, ad_tensors, labels, epsilon=0.1
        )
        assert perturbed.min() >= -1.0
        assert perturbed.max() <= 1.0

    def test_perturbation_bounded_by_epsilon(self, reference_classifier,
                                             ad_tensors):
        labels = np.full(ad_tensors.shape[0], LABEL_AD, dtype=np.int64)
        eps = 0.05
        perturbed = fgsm_perturb(
            reference_classifier, ad_tensors, labels, eps
        )
        assert np.abs(perturbed - ad_tensors).max() <= eps + 1e-6

    def test_zero_epsilon_identity(self, reference_classifier,
                                   ad_tensors):
        labels = np.full(ad_tensors.shape[0], LABEL_AD, dtype=np.int64)
        perturbed = fgsm_perturb(
            reference_classifier, ad_tensors, labels, 0.0
        )
        assert np.allclose(perturbed, ad_tensors)

    def test_negative_epsilon_rejected(self, reference_classifier,
                                       ad_tensors):
        labels = np.full(ad_tensors.shape[0], LABEL_AD, dtype=np.int64)
        with pytest.raises(ValueError):
            fgsm_perturb(reference_classifier, ad_tensors, labels, -0.1)


class TestEvasion:
    def test_attack_reduces_recall(self, reference_classifier,
                                   ad_tensors):
        """The §6 vulnerability: perceptible-budget FGSM evades the
        classifier on a meaningful share of ads."""
        report = evasion_rate(
            reference_classifier, ad_tensors, epsilon=0.25
        )
        assert report.clean_recall > 0.8
        assert report.perturbed_recall < report.clean_recall
        assert report.evasion_rate > 0.0

    def test_monotone_in_epsilon(self, reference_classifier, ad_tensors):
        small = evasion_rate(reference_classifier, ad_tensors, 0.02)
        large = evasion_rate(reference_classifier, ad_tensors, 0.4)
        assert large.perturbed_recall <= small.perturbed_recall + 0.1

    def test_report_rates_consistent(self):
        report = EvasionReport(
            epsilon=0.1, total_ads=10, detected_clean=8,
            detected_perturbed=4,
        )
        assert report.clean_recall == 0.8
        assert report.evasion_rate == 0.5

    def test_zero_detected_no_division_error(self):
        report = EvasionReport(
            epsilon=0.1, total_ads=5, detected_clean=0,
            detected_perturbed=0,
        )
        assert report.evasion_rate == 0.0


class TestAdversarialTraining:
    def test_defense_restores_recall(self, reference_classifier):
        """Adversarial fine-tuning reduces the evasion rate — the
        client-side-retraining mitigation the paper sketches.  Runs on
        a *clone* so the shared reference model stays untouched."""
        from repro.core.adversarial import clone_classifier
        from repro.data.corpus import CorpusConfig, build_training_corpus

        corpus = build_training_corpus(CorpusConfig(
            seed=2, num_ads=120, num_nonads=120,
            input_size=reference_classifier.config.input_size,
        ))
        defended = clone_classifier(reference_classifier)
        ads = corpus.images[corpus.labels == 1][:40]
        eps = 0.15
        before = evasion_rate(defended, ads, eps, steps=8)
        assert before.evasion_rate > 0.2  # the attack works pre-defense

        adversarial_finetune(
            defended, corpus.images, corpus.labels,
            epsilon=eps, epochs=2,
        )
        after = evasion_rate(defended, ads, eps, steps=8)
        assert after.perturbed_recall > before.perturbed_recall

    def test_clone_does_not_alias_weights(self, reference_classifier):
        from repro.core.adversarial import clone_classifier
        clone = clone_classifier(reference_classifier)
        original = reference_classifier.network.parameters()[0].data
        clone.network.parameters()[0].data[...] = -1.0
        assert not np.allclose(original, -1.0)
