"""Classifier fast-path routing, plan invalidation, batched verdicts."""

import numpy as np
import pytest

from repro.core import AdClassifier, PercivalBlocker


@pytest.fixture()
def bitmaps(rng):
    return [rng.random((12, 16, 4)).astype(np.float32) for _ in range(6)]


class TestClassifierFastPath:
    def test_plan_compiles_lazily(self, untrained_classifier):
        assert untrained_classifier.inference_plan is not None

    def test_fast_path_matches_reference(self, reference_classifier, rng):
        size = reference_classifier.config.input_size
        batch = rng.standard_normal((5, 4, size, size)).astype(np.float32)
        reference = reference_classifier.predict_proba_tensor(
            batch, fast_path=False
        )
        fast = reference_classifier.predict_proba_tensor(
            batch, fast_path=True
        )
        # tolerance widens with the storage precision in effect
        # (PERCIVAL_PRECISION matrix entries run this same suite)
        tolerance = reference_classifier.fast_path_tolerance
        assert np.abs(reference - fast).max() < tolerance

    def test_probabilities_stay_float32(self, reference_classifier, rng):
        size = reference_classifier.config.input_size
        batch = rng.standard_normal((3, 4, size, size)).astype(np.float32)
        for fast_path in (False, True):
            probabilities = reference_classifier.predict_proba_tensor(
                batch, fast_path=fast_path
            )
            assert probabilities.dtype == np.float32

    def test_empty_batch_both_paths(self, untrained_classifier):
        size = untrained_classifier.config.input_size
        empty = np.empty((0, 4, size, size), dtype=np.float32)
        for fast_path in (False, True):
            probabilities = untrained_classifier.predict_proba_tensor(
                empty, fast_path=fast_path
            )
            assert probabilities.shape == (0,)
            assert probabilities.dtype == np.float32

    def test_load_invalidates_plan(self, reference_classifier, tmp_path):
        path = str(tmp_path / "weights.npz")
        reference_classifier.save(path)
        fresh = AdClassifier(reference_classifier.config)
        stale_plan = fresh.inference_plan
        fresh.load(path)
        assert fresh.inference_plan is not stale_plan

    def test_invalidate_plan_recompiles(self, untrained_classifier):
        first = untrained_classifier.inference_plan
        untrained_classifier.invalidate_plan()
        second = untrained_classifier.inference_plan
        assert first is not second

    def test_loaded_weights_flow_into_plan(self, reference_classifier,
                                           tmp_path, rng):
        path = str(tmp_path / "weights.npz")
        reference_classifier.save(path)
        fresh = AdClassifier(reference_classifier.config)
        size = fresh.config.input_size
        batch = rng.standard_normal((2, 4, size, size)).astype(np.float32)
        before = fresh.predict_proba_tensor(batch)
        fresh.load(path)
        after = fresh.predict_proba_tensor(batch)
        assert not np.array_equal(before, after)
        assert np.abs(
            after - reference_classifier.predict_proba_tensor(batch)
        ).max() < 1e-5


class TestDecideMany:
    def test_matches_single_decides(self, reference_classifier, bitmaps):
        batched = PercivalBlocker(reference_classifier,
                                  calibrated_latency_ms=11.0)
        singles = PercivalBlocker(reference_classifier,
                                  calibrated_latency_ms=11.0)
        batched_decisions = batched.decide_many(bitmaps)
        for bitmap, decision in zip(bitmaps, batched_decisions):
            single = singles.decide(bitmap)
            assert single.is_ad == decision.is_ad
            assert single.probability == pytest.approx(
                decision.probability, abs=1e-5
            )

    def test_fills_memo(self, reference_classifier, bitmaps):
        blocker = PercivalBlocker(reference_classifier,
                                  calibrated_latency_ms=11.0)
        first = blocker.decide_many(bitmaps)
        assert not any(d.from_cache for d in first)
        assert blocker.classifications == len(bitmaps)
        second = blocker.decide_many(bitmaps)
        assert all(d.from_cache for d in second)
        assert blocker.classifications == len(bitmaps)

    def test_duplicates_classified_once(self, reference_classifier,
                                        bitmaps):
        blocker = PercivalBlocker(reference_classifier,
                                  calibrated_latency_ms=11.0)
        decisions = blocker.decide_many([bitmaps[0], bitmaps[1],
                                         bitmaps[0]])
        assert blocker.classifications == 2
        assert decisions[0].probability == decisions[2].probability

    def test_empty_input(self, reference_classifier):
        blocker = PercivalBlocker(reference_classifier,
                                  calibrated_latency_ms=11.0)
        assert blocker.decide_many([]) == []
        assert blocker.classifications == 0

    def test_precomputed_keys(self, reference_classifier, bitmaps):
        blocker = PercivalBlocker(reference_classifier,
                                  calibrated_latency_ms=11.0)
        keys = [blocker.fingerprint(bitmap) for bitmap in bitmaps]
        decisions = blocker.decide_many(bitmaps, keys=keys)
        assert len(decisions) == len(bitmaps)
        for key, decision in zip(keys, decisions):
            assert (
                blocker.memoized_verdict(bitmaps[0], key=key)
                == decision.is_ad
            )

    def test_mismatched_keys_rejected(self, reference_classifier,
                                      bitmaps):
        blocker = PercivalBlocker(reference_classifier,
                                  calibrated_latency_ms=11.0)
        with pytest.raises(ValueError):
            blocker.decide_many(bitmaps, keys=["only-one"])

    def test_memo_capacity_respected(self, reference_classifier, rng):
        blocker = PercivalBlocker(
            reference_classifier, calibrated_latency_ms=11.0,
            memo_capacity=2,
        )
        blocker.decide_many([
            rng.random((8, 8, 4)).astype(np.float32) for _ in range(5)
        ])
        assert blocker.memo_size == 2


class TestKeyedEntryPoints:
    def test_decide_with_key_skips_rehash(self, reference_classifier,
                                          bitmaps):
        blocker = PercivalBlocker(reference_classifier,
                                  calibrated_latency_ms=11.0)
        key = blocker.fingerprint(bitmaps[0])
        first = blocker.decide(bitmaps[0], key=key)
        assert not first.from_cache
        again = blocker.decide(bitmaps[0], key=key)
        assert again.from_cache
        # the same memo entry serves the un-keyed path too
        assert blocker.decide(bitmaps[0]).from_cache

    def test_memoized_verdict_with_key(self, reference_classifier,
                                       bitmaps):
        blocker = PercivalBlocker(reference_classifier,
                                  calibrated_latency_ms=11.0)
        key = blocker.fingerprint(bitmaps[0])
        assert blocker.memoized_verdict(bitmaps[0], key=key) is None
        decision = blocker.decide(bitmaps[0], key=key)
        assert (
            blocker.memoized_verdict(bitmaps[0], key=key)
            == decision.is_ad
        )
