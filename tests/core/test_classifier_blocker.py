"""AdClassifier and PercivalBlocker behaviour (uses the cached model)."""

import numpy as np
import pytest

from repro.core import AdClassifier, PercivalBlocker, PercivalConfig
from repro.browser.skia import SkImageInfo
from repro.synth.adgen import AdSpec, generate_ad
from repro.synth.contentgen import ContentKind, generate_content
from repro.utils.rng import spawn_rng


@pytest.fixture(scope="module")
def overt_ad():
    return generate_ad(spawn_rng(0, "ad"), AdSpec(cue_strength=1.0))


@pytest.fixture(scope="module")
def photo():
    return generate_content(spawn_rng(0, "photo"), kind=ContentKind.PHOTO)


class TestAdClassifier:
    def test_probability_in_unit_interval(
        self, reference_classifier, overt_ad
    ):
        p = reference_classifier.ad_probability(overt_ad)
        assert 0.0 <= p <= 1.0

    def test_detects_overt_ad(self, reference_classifier, overt_ad):
        assert reference_classifier.is_ad(overt_ad)

    def test_passes_photo(self, reference_classifier, photo):
        assert not reference_classifier.is_ad(photo)

    def test_batch_matches_single(self, reference_classifier, overt_ad,
                                  photo):
        batch = reference_classifier.ad_probabilities([overt_ad, photo])
        assert batch[0] == pytest.approx(
            reference_classifier.ad_probability(overt_ad), abs=1e-5
        )
        assert batch[1] == pytest.approx(
            reference_classifier.ad_probability(photo), abs=1e-5
        )

    def test_empty_batch(self, reference_classifier):
        assert reference_classifier.ad_probabilities([]).shape == (0,)

    def test_threshold_changes_verdict(self, photo, reference_classifier):
        # a lenient threshold below the photo's score flips the verdict
        p = reference_classifier.ad_probability(photo)
        lenient = AdClassifier(
            PercivalConfig(ad_threshold=max(p / 2, 1e-9)),
            network=reference_classifier.network,
        )
        assert lenient.is_ad(photo)

    def test_save_load_roundtrip(self, reference_classifier, tmp_path,
                                 overt_ad):
        path = str(tmp_path / "model.npz")
        reference_classifier.save(path)
        fresh = AdClassifier(reference_classifier.config)
        fresh.load(path)
        assert fresh.ad_probability(overt_ad) == pytest.approx(
            reference_classifier.ad_probability(overt_ad), abs=1e-6
        )

    def test_model_size_reported(self, reference_classifier):
        assert reference_classifier.model_size_mb > 0

    def test_latency_positive(self, reference_classifier):
        assert reference_classifier.measured_latency_ms(repeats=1) > 0


class TestPercivalBlocker:
    def test_implements_renderer_protocol(self, reference_classifier,
                                          overt_ad):
        blocker = PercivalBlocker(reference_classifier,
                                  calibrated_latency_ms=11.0)
        info = SkImageInfo(width=overt_ad.shape[1],
                           height=overt_ad.shape[0])
        assert blocker.classify_bitmap(overt_ad, info) is True
        assert blocker.classify_cost_ms(info) == 11.0

    def test_memoization_caches_verdicts(self, reference_classifier,
                                         overt_ad):
        blocker = PercivalBlocker(reference_classifier,
                                  calibrated_latency_ms=11.0)
        first = blocker.decide(overt_ad)
        second = blocker.decide(overt_ad)
        assert not first.from_cache
        assert second.from_cache
        assert first.is_ad == second.is_ad
        assert blocker.classifications == 1

    def test_memoized_verdict_lookup(self, reference_classifier,
                                     overt_ad, photo):
        blocker = PercivalBlocker(reference_classifier,
                                  calibrated_latency_ms=11.0)
        assert blocker.memoized_verdict(overt_ad) is None
        blocker.decide(overt_ad)
        assert blocker.memoized_verdict(overt_ad) is True
        assert blocker.memoized_verdict(photo) is None

    def test_memo_capacity_evicts_lru(self, reference_classifier, rng):
        blocker = PercivalBlocker(
            reference_classifier, calibrated_latency_ms=11.0,
            memo_capacity=2,
        )
        bitmaps = [
            rng.random((8, 8, 4)).astype(np.float32) for _ in range(3)
        ]
        for bitmap in bitmaps:
            blocker.decide(bitmap)
        assert blocker.memo_size == 2
        assert blocker.memoized_verdict(bitmaps[0]) is None

    def test_clear_memo(self, reference_classifier, overt_ad):
        blocker = PercivalBlocker(reference_classifier,
                                  calibrated_latency_ms=11.0)
        blocker.decide(overt_ad)
        blocker.clear_memo()
        assert blocker.memo_size == 0

    def test_calibration_falls_back_to_measurement(
        self, reference_classifier
    ):
        blocker = PercivalBlocker(reference_classifier)
        assert blocker.calibrated_latency_ms > 0
