"""The precision pipeline end to end: knob -> artifact -> plan ->
shared-memory workers.

The contract under test: ``PERCIVAL_PRECISION`` selects *storage* only
— compute stays fp32 — and fp32 reproduces the pre-precision pipeline
bit for bit.  Quantized exports round-trip through the worker-pool
manifest so every worker computes over exactly the bytes the parent
compiled with.
"""

import numpy as np
import pytest

from repro.core import (
    AdClassifier,
    InferenceWorkerPool,
    PercivalBlocker,
    PercivalConfig,
    configured_precision,
)
from repro.core.classifier import PrecisionRejectedError


def _nchw(classifier, count, seed=0):
    rng = np.random.default_rng(seed)
    size = classifier.config.input_size
    return rng.standard_normal((count, 4, size, size)).astype(np.float32)


class TestConfiguredPrecision:
    def test_default_is_fp32(self, monkeypatch):
        monkeypatch.delenv("PERCIVAL_PRECISION", raising=False)
        assert configured_precision() == "fp32"

    def test_env_sets_precision(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_PRECISION", "int8")
        assert configured_precision() == "int8"

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_PRECISION", "int8")
        assert configured_precision("fp16") == "fp16"

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_PRECISION", "int4")
        with pytest.raises(ValueError):
            configured_precision()

    def test_empty_env_is_fp32(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_PRECISION", "")
        assert configured_precision() == "fp32"

    def test_config_field_resolves(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_PRECISION", "fp16")
        env_driven = AdClassifier(PercivalConfig())
        pinned = AdClassifier(PercivalConfig(precision="fp32"))
        assert env_driven.precision == "fp16"
        assert pinned.precision == "fp32"

    def test_cache_key_ignores_precision(self):
        base = PercivalConfig()
        quantized = PercivalConfig(
            precision="int8", quantization_drift_tolerance=0.5
        )
        assert base.cache_key() == quantized.cache_key()


class TestPrecisionFingerprints:
    def test_fingerprints_diverge_per_precision(self):
        fp32 = AdClassifier(PercivalConfig(precision="fp32"))
        int8 = AdClassifier(
            PercivalConfig(precision="int8"), network=fp32.network
        )
        assert fp32.weights_fingerprint() != int8.weights_fingerprint()

    def test_fp32_is_bit_for_bit_the_default_pipeline(self, monkeypatch):
        monkeypatch.delenv("PERCIVAL_PRECISION", raising=False)
        shared = AdClassifier(PercivalConfig())
        pinned = AdClassifier(
            PercivalConfig(precision="fp32"), network=shared.network
        )
        batch = _nchw(shared, 4)
        assert np.array_equal(
            shared.predict_proba_tensor(batch),
            pinned.predict_proba_tensor(batch),
        )


class TestCalibrationGate:
    def test_quantized_precision_adopted_when_drift_small(self):
        classifier = AdClassifier(PercivalConfig(precision="int8"))
        # untrained nets may legitimately reject; the adopted artifact
        # must match whatever effective_precision reports either way
        artifact = classifier.weight_artifact()
        assert artifact.precision == classifier.effective_precision

    def test_impossible_tolerance_falls_back_to_fp32(self):
        classifier = AdClassifier(PercivalConfig(
            precision="int8", quantization_drift_tolerance=0.0,
        ))
        assert classifier.effective_precision == "fp32"
        assert classifier.weight_artifact().precision == "fp32"
        assert classifier.fast_path_tolerance == 1e-5

    def test_gate_raises_internally(self):
        classifier = AdClassifier(PercivalConfig(
            precision="int8", quantization_drift_tolerance=0.0,
        ))
        from repro.nn.artifact import WeightArtifact

        candidate = WeightArtifact.from_network(classifier.network, "int8")
        with pytest.raises(PrecisionRejectedError):
            classifier._calibrate_artifact(candidate)

    def test_gated_drift_bound_holds_on_calibration_batch(self):
        classifier = AdClassifier(PercivalConfig(precision="int8"))
        if classifier.effective_precision != "int8":
            pytest.skip("gate rejected int8 on this seed")
        reference = AdClassifier(
            PercivalConfig(precision="fp32"), network=classifier.network
        )
        batch = classifier.calibration_batch()
        drift = np.abs(
            classifier.predict_proba_tensor(batch)
            - reference.predict_proba_tensor(batch)
        ).max()
        assert drift <= classifier.config.quantization_drift_tolerance


@pytest.mark.parametrize("precision", ["fp16", "int8"])
class TestQuantizedExportRoundTrip:
    def test_manifest_rows_and_buffer_shrink(self, precision):
        quantized = AdClassifier(PercivalConfig(precision=precision))
        fp32 = AdClassifier(
            PercivalConfig(precision="fp32"), network=quantized.network
        )
        if quantized.effective_precision != precision:
            pytest.skip("gate rejected the precision on this seed")
        export = quantized.export_plan()
        assert export.precision == precision
        assert export.total_bytes < fp32.export_plan().total_bytes
        dtypes = {np.dtype(row[2]) for row in export.manifest}
        if precision == "fp16":
            assert dtypes == {np.dtype(np.float16)}
        else:
            # int8 weights with per-channel scales; biases stay fp32
            assert dtypes == {np.dtype(np.int8), np.dtype(np.float32)}

    def test_from_plan_export_matches_parent_exactly(self, precision):
        parent = AdClassifier(PercivalConfig(precision=precision))
        export = parent.export_plan()
        buffer = bytearray(export.total_bytes)
        parent.pack_weights_into(export, buffer)
        worker = AdClassifier.from_plan_export(export, buffer)
        assert worker.precision == export.precision
        assert worker.effective_precision == export.precision
        batch = _nchw(parent, 6)
        assert np.array_equal(
            worker.predict_proba_tensor(batch),
            parent.predict_proba_tensor(batch),
        )

    def test_pool_publish_then_compile_matches_parent(self, precision):
        parent = AdClassifier(PercivalConfig(precision=precision))
        batch = _nchw(parent, 6)
        with InferenceWorkerPool(num_workers=2) as pool:
            pool.publish(parent)
            assert pool.published_fingerprint == parent.weights_fingerprint()
            sharded = pool.predict_proba(batch)
        assert np.allclose(
            sharded, parent.predict_proba_tensor(batch),
            atol=1e-7, rtol=0.0,
        )

    def test_stale_export_rejected_by_pack(self, precision, tmp_path):
        parent = AdClassifier(PercivalConfig(precision=precision))
        export = parent.export_plan()
        donor = AdClassifier(PercivalConfig(seed=parent.config.seed + 1))
        path = str(tmp_path / "donor.npz")
        donor.save(path)
        parent.load(path)  # export fingerprint is now stale
        buffer = bytearray(export.total_bytes)
        with pytest.raises(ValueError):
            parent.pack_weights_into(export, buffer)


class TestMemoGenerations:
    def test_memo_cleared_when_weights_replaced(self, tmp_path):
        classifier = AdClassifier(PercivalConfig())
        blocker = PercivalBlocker(classifier, calibrated_latency_ms=1.0)
        rng = np.random.default_rng(3)
        bitmap = rng.random((10, 12, 4)).astype(np.float32)
        blocker.decide(bitmap)
        assert blocker.memo_size == 1
        donor = AdClassifier(PercivalConfig(seed=9))
        path = str(tmp_path / "donor.npz")
        donor.save(path)
        classifier.load(path)  # bumps weights_version
        assert blocker.memoized_verdict(bitmap) is None
        decision = blocker.decide(bitmap)
        assert not decision.from_cache
        assert blocker.classifications == 2

    def test_memo_survives_unchanged_weights(self):
        classifier = AdClassifier(PercivalConfig())
        blocker = PercivalBlocker(classifier, calibrated_latency_ms=1.0)
        rng = np.random.default_rng(4)
        bitmap = rng.random((10, 12, 4)).astype(np.float32)
        blocker.decide(bitmap)
        assert blocker.decide(bitmap).from_cache
