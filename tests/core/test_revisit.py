"""Revisit memory: the §6 dangling-slot fix."""

import pytest

from repro.browser.network import MockNetwork, NetworkConfig
from repro.browser.renderer import CHROMIUM, Renderer
from repro.core import PercivalBlocker
from repro.core.revisit import RevisitMemory
from repro.synth.webgen import SyntheticWeb, WebConfig, url_registry


class TestRevisitMemory:
    def test_records_and_collapses(self):
        memory = RevisitMemory()
        memory.record_blocked("https://ads.example/a.png")
        assert memory.should_collapse("https://ads.example/a.png")
        assert not memory.should_collapse("https://other.example/b.png")

    def test_empty_url_ignored(self):
        memory = RevisitMemory()
        memory.record_blocked("")
        assert len(memory) == 0

    def test_capacity_evicts_lru(self):
        memory = RevisitMemory(capacity=2)
        memory.record_blocked("u1")
        memory.record_blocked("u2")
        memory.record_blocked("u3")
        assert len(memory) == 2
        assert not memory.should_collapse("u1")
        assert memory.should_collapse("u3")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RevisitMemory(capacity=0)

    def test_clear(self):
        memory = RevisitMemory()
        memory.record_blocked("u")
        memory.clear()
        assert len(memory) == 0

    def test_stats_tracked(self):
        memory = RevisitMemory()
        memory.record_blocked("u")
        memory.should_collapse("u")
        assert memory.stats.recorded == 1
        assert memory.stats.collapsed == 1

    def test_contains_is_a_read_only_probe(self):
        """``contains`` never counts a collapse and never refreshes
        LRU order — a speculative probe (the differ's semantic filter)
        must not keep entries alive or inflate the §6 stats."""
        memory = RevisitMemory(capacity=2)
        memory.record_blocked("u1")
        memory.record_blocked("u2")
        assert memory.contains("u1")
        assert memory.stats.collapsed == 0
        # u1 was probed but not refreshed: still the eviction victim
        memory.record_blocked("u3")
        assert not memory.contains("u1")
        assert memory.contains("u2") and memory.contains("u3")

    def test_commit_collapse_refreshes_and_counts(self):
        memory = RevisitMemory(capacity=2)
        memory.record_blocked("u1")
        memory.record_blocked("u2")
        memory.commit_collapse("u1")  # proved useful: keep resident
        assert memory.stats.collapsed == 1
        memory.record_blocked("u3")
        assert memory.contains("u1")
        assert not memory.contains("u2")

    def test_commit_collapse_on_unknown_url_is_a_no_op(self):
        memory = RevisitMemory()
        memory.commit_collapse("never-seen")
        assert memory.stats.collapsed == 0

    def test_should_collapse_composes_probe_and_commit(self):
        """The renderer hook is exactly contains() + commit_collapse():
        a hit counts one collapse, a miss commits nothing."""
        memory = RevisitMemory()
        memory.record_blocked("u")
        assert memory.should_collapse("u")
        assert memory.stats.collapsed == 1
        assert not memory.should_collapse("other")
        assert memory.stats.collapsed == 1


class TestRevisitInRenderer:
    @pytest.fixture(scope="class")
    def setup(self, reference_classifier):
        web = SyntheticWeb(WebConfig(seed=311, num_sites=3,
                                     images_per_page=(8, 12)))
        pages = [web.build_page(s) for s in web.top_sites(3)]
        network = MockNetwork(url_registry(pages), NetworkConfig(seed=3))
        renderer = Renderer(CHROMIUM, network)
        blocker = PercivalBlocker(reference_classifier,
                                  calibrated_latency_ms=11.0)
        return pages, renderer, blocker

    def test_second_visit_collapses_blocked_slots(self, setup):
        pages, renderer, blocker = setup
        memory = RevisitMemory()
        first = renderer.render(pages[0], percival=blocker,
                                mode="sync", revisit_memory=memory)
        assert first.elements_collapsed_by_memory == 0
        second = renderer.render(pages[0], percival=blocker,
                                 mode="sync", revisit_memory=memory)
        # everything blocked on visit 1 is collapsed pre-layout now
        assert (second.elements_collapsed_by_memory
                == first.images_blocked_by_percival)

    def test_second_visit_cheaper(self, setup):
        pages, renderer, blocker = setup
        memory = RevisitMemory()
        first = renderer.render(pages[1], percival=blocker,
                                mode="sync", revisit_memory=memory)
        second = renderer.render(pages[1], percival=blocker,
                                 mode="sync", revisit_memory=memory)
        if first.images_blocked_by_percival:
            assert second.classify_cost_ms < first.classify_cost_ms
            assert second.images_decoded < first.images_decoded

    def test_without_memory_no_collapse(self, setup):
        pages, renderer, blocker = setup
        metrics = renderer.render(pages[2], percival=blocker,
                                  mode="sync")
        assert metrics.elements_collapsed_by_memory == 0
