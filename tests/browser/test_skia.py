"""Skia analog classes: deferred decoding and the PERCIVAL hook."""

import numpy as np
import pytest

from repro.browser.codecs import ImageFormat, encode_image
from repro.browser.skia import (
    BitmapImage,
    DecodingImageGenerator,
    SkImage,
    SkImageInfo,
)


@pytest.fixture()
def encoded(rng):
    pixels = rng.random((10, 8, 4)).astype(np.float32)
    return encode_image(pixels, ImageFormat.DEFLATE)


class TestDecodingImageGenerator:
    def test_populates_bitmap(self, encoded):
        generator = DecodingImageGenerator(encoded)
        bitmap = np.zeros((10, 8, 4), dtype=np.float32)
        blocked = generator.on_get_pixels(bitmap)
        assert not blocked
        assert bitmap.any()
        assert generator.decode_count == 1

    def test_shape_mismatch_rejected(self, encoded):
        generator = DecodingImageGenerator(encoded)
        with pytest.raises(ValueError):
            generator.on_get_pixels(np.zeros((4, 4, 4), dtype=np.float32))

    def test_hook_sees_unmodified_pixels(self, encoded):
        seen = {}

        def hook(bitmap, info):
            seen["mean"] = float(bitmap.mean())
            seen["info"] = info
            return False

        generator = DecodingImageGenerator(encoded)
        bitmap = np.zeros((10, 8, 4), dtype=np.float32)
        generator.on_get_pixels(bitmap, hook)
        assert seen["mean"] == pytest.approx(float(bitmap.mean()))
        assert seen["info"] == SkImageInfo(width=8, height=10)

    def test_blocking_clears_buffer(self, encoded):
        generator = DecodingImageGenerator(encoded)
        bitmap = np.zeros((10, 8, 4), dtype=np.float32)
        blocked = generator.on_get_pixels(bitmap, lambda b, i: True)
        assert blocked
        assert not bitmap.any()  # the frame never reaches the screen


class TestBitmapImage:
    def test_deferred_until_ensure(self, encoded):
        image = BitmapImage(encoded)
        assert not image.is_decoded
        image.ensure_decoded()
        assert image.is_decoded

    def test_decode_happens_once(self, encoded):
        image = BitmapImage(encoded)
        calls = []
        hook = lambda b, i: calls.append(1) and False  # noqa: E731
        image.ensure_decoded(hook)
        image.ensure_decoded(hook)
        assert len(calls) == 1
        assert image.sk_image.generator.decode_count == 1

    def test_blocked_flag_persists(self, encoded):
        image = BitmapImage(encoded)
        image.ensure_decoded(lambda b, i: True)
        assert image.blocked
        assert not image.ensure_decoded().any()

    def test_info_from_sk_image(self, encoded):
        image = BitmapImage(encoded)
        assert image.sk_image.info.pixel_count == 80


class TestSkImage:
    def test_wraps_encoded(self, encoded):
        sk = SkImage(encoded)
        assert sk.encoded is encoded
        assert sk.info.width == encoded.width
