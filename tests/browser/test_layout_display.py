"""Layout tree and display-list generation."""


from repro.browser.display_list import (
    DisplayItem,
    DisplayItemKind,
    build_display_list,
)
from repro.browser.html import parse_html
from repro.browser.layout import build_layout_tree


def _layout(html):
    return build_layout_tree(parse_html(html))


class TestLayout:
    def test_images_use_declared_size(self):
        root = _layout('<img src="a" width="300" height="250">')
        box = root.children[0]
        assert box.width == 300
        assert box.height == 250

    def test_blocks_stack_vertically(self):
        root = _layout(
            '<img src="a" width="10" height="100">'
            '<img src="b" width="10" height="50">'
        )
        first, second = root.children
        assert second.y == first.y + first.height
        assert root.height == 150

    def test_hidden_elements_produce_no_boxes(self):
        doc = parse_html('<img src="a" width="10" height="10">')
        doc.resource_elements()[0].hidden = True
        root = build_layout_tree(doc)
        assert root.children == []
        assert root.height == 0

    def test_width_clamped_to_viewport(self):
        root = _layout('<img src="a" width="99999" height="10">')
        assert root.children[0].width <= 1280

    def test_nested_containers_accumulate_height(self):
        root = _layout(
            '<div><img src="a" width="10" height="40">'
            '<img src="b" width="10" height="60"></div>'
        )
        assert root.height >= 100

    def test_text_gets_line_boxes(self):
        root = _layout("<p>" + "word " * 100 + "</p>")
        assert root.height > 18  # multiple lines

    def test_walk_covers_all_boxes(self):
        root = _layout('<div><img src="a" width="5" height="5"></div>')
        tags = [box.node.tag for box in root.walk()]
        assert "img" in tags


class TestDisplayList:
    def test_image_items_carry_urls(self):
        root = _layout('<img src="https://x/img.png" width="10" height="10">')
        items = build_display_list(root)
        image_items = [i for i in items
                       if i.kind is DisplayItemKind.IMAGE]
        assert len(image_items) == 1
        assert image_items[0].url == "https://x/img.png"

    def test_band_intersection(self):
        item = DisplayItem(DisplayItemKind.IMAGE, 0, 100, 50, 50)
        assert item.intersects_band(0, 256)
        assert item.intersects_band(100, 150)
        assert not item.intersects_band(151, 300)
        assert not item.intersects_band(0, 100)  # exclusive bottom

    def test_hidden_images_absent(self):
        doc = parse_html('<img src="a" width="10" height="10">')
        doc.resource_elements()[0].hidden = True
        items = build_display_list(build_layout_tree(doc))
        assert all(i.kind is not DisplayItemKind.IMAGE for i in items)

    def test_text_and_rect_items_emitted(self):
        root = _layout("<div><p>text here</p></div>")
        kinds = {i.kind for i in build_display_list(root)}
        assert DisplayItemKind.TEXT in kinds
        assert DisplayItemKind.RECT in kinds
