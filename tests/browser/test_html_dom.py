"""HTML parsing and DOM semantics."""


from repro.browser.dom import DomNode
from repro.browser.html import parse_html


class TestParser:
    def test_simple_document(self):
        doc = parse_html("<html><body><p>hi</p></body></html>")
        assert doc.body is not None
        assert doc.body.children[0].tag == "p"

    def test_attributes_parsed(self):
        doc = parse_html(
            '<img src="https://x.example/a.png" class="hero big" '
            "id='main' width=300 height=250/>"
        )
        img = doc.root.find_all("img")[0]
        assert img.src == "https://x.example/a.png"
        assert img.css_classes == ("hero", "big")
        assert img.element_id == "main"
        assert img.int_attribute("width") == 300

    def test_void_elements_dont_nest(self):
        doc = parse_html("<div><img src='a'><img src='b'></div>")
        div = doc.root.find_all("div")[0]
        assert len(div.find_all("img")) == 2
        for img in div.find_all("img"):
            assert img.children == []

    def test_nested_structure(self):
        doc = parse_html(
            "<div id='outer'><div id='inner'><span>x</span></div></div>"
        )
        outer = doc.root.find_all("div")[0]
        inner = outer.children[0]
        assert inner.element_id == "inner"
        assert inner.children[0].tag == "span"

    def test_comments_ignored(self):
        doc = parse_html("<div><!-- <img src='ghost'> --></div>")
        assert doc.root.find_all("img") == []

    def test_unclosed_tags_recovered(self):
        doc = parse_html("<div><p>text</div>")
        assert doc.root.find_all("p")

    def test_stray_close_tag_dropped(self):
        doc = parse_html("</div><p>ok</p>")
        assert doc.root.find_all("p")

    def test_text_nodes_captured(self):
        doc = parse_html("<p>hello world</p>")
        texts = [n.text for n in doc.root.walk() if n.tag == "#text"]
        assert "hello world" in texts

    def test_case_insensitive_tags(self):
        doc = parse_html("<DIV><IMG SRC='x'/></DIV>")
        assert doc.root.find_all("div")
        assert doc.root.find_all("img")

    def test_single_quoted_and_unquoted_attrs(self):
        doc = parse_html("<img src=plain class='single'>")
        img = doc.root.find_all("img")[0]
        assert img.src == "plain"
        assert img.css_classes == ("single",)

    def test_iframe_is_resource_element(self):
        doc = parse_html(
            '<iframe src="https://ads.example/f"></iframe>'
            '<img src="https://x.example/i.png">'
            '<img alt="no src">'
        )
        resources = doc.resource_elements()
        assert len(resources) == 2

    def test_synthetic_page_roundtrip(self):
        from repro.synth.webgen import SyntheticWeb, WebConfig
        web = SyntheticWeb(WebConfig(seed=0, num_sites=2))
        page = web.build_page(web.top_sites(1)[0])
        doc = parse_html(page.html)
        parsed_urls = {n.src for n in doc.resource_elements()}
        generated_urls = {e.url for e in page.image_elements()}
        assert parsed_urls == generated_urls


class TestDomNode:
    def test_walk_preorder(self):
        root = DomNode("a")
        b = root.append(DomNode("b"))
        b.append(DomNode("c"))
        root.append(DomNode("d"))
        assert [n.tag for n in root.walk()] == ["a", "b", "c", "d"]

    def test_parent_links(self):
        root = DomNode("a")
        child = root.append(DomNode("b"))
        assert child.parent is root

    def test_int_attribute_fallback(self):
        node = DomNode("img", {"width": "nope"})
        assert node.int_attribute("width", 7) == 7

    def test_element_count_excludes_text(self):
        doc = parse_html("<div><p>one two</p></div>")
        count_all = sum(1 for _ in doc.root.walk())
        assert doc.element_count() < count_all
