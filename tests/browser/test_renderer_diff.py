"""Renderer-side incremental re-classification (the diff layer).

The contract pinned here, in both deployment modes:

* visit 1 classifies every frame and commits a page snapshot; visit 2
  inherits every unchanged region — zero classification cost, zero
  model calls — and the inherited verdicts are bit-identical to what a
  diff-free revisit computes,
* inherited-blocked frames never decode (the §6 collapse economics,
  now applied page-wide), while inherited-allowed frames still pay
  their decode cost — only classification is skipped,
* sessions are isolated: one session's snapshot never answers another
  session's page.
"""

import numpy as np
import pytest

from repro.browser.network import MockNetwork, NetworkConfig
from repro.browser.renderer import CHROMIUM, Renderer
from repro.core import PercivalBlocker, ServeSettings
from repro.core.revisit import RevisitMemory
from repro.diff import FrameDiffer
from repro.serve import RenderServeBridge
from repro.synth.webgen import SyntheticWeb, WebConfig, url_registry


@pytest.fixture(scope="module")
def small_web():
    web = SyntheticWeb(WebConfig(seed=47, num_sites=4,
                                 images_per_page=(6, 10)))
    pages = [web.build_page(s) for s in web.top_sites(4)]
    network = MockNetwork(url_registry(pages), NetworkConfig(seed=7))
    return pages, network


def _blocker(classifier):
    return PercivalBlocker(classifier, calibrated_latency_ms=11.0)


class TestSyncDiff:
    def test_second_visit_inherits_everything(
        self, small_web, reference_classifier
    ):
        pages, network = small_web
        renderer = Renderer(CHROMIUM, network)
        blocker = _blocker(reference_classifier)
        differ = FrameDiffer()
        first = renderer.render(pages[0], percival=blocker, mode="sync",
                                differ=differ)
        assert first.diff_inherited == 0
        assert first.diff_reclassified == first.images_decoded > 0
        second = renderer.render(pages[0], percival=blocker, mode="sync",
                                 differ=differ)
        # the whole page settles from the snapshot: no classification
        assert second.diff_inherited == first.diff_reclassified
        assert second.diff_reclassified == 0
        assert second.classify_cost_ms == 0.0
        assert second.memo_hits == 0  # settled before the memo tier
        assert second.images_decoded == first.images_decoded
        assert differ.stats.identical_pages == 1

    def test_inherited_verdicts_match_the_diff_free_revisit(
        self, small_web, reference_classifier
    ):
        """Same warm blocker, same page: the diff-on revisit blocks
        exactly the frames the diff-off (memo) revisit blocks."""
        pages, network = small_web
        renderer = Renderer(CHROMIUM, network)

        plain_blocker = _blocker(reference_classifier)
        renderer.render(pages[1], percival=plain_blocker, mode="sync")
        plain = renderer.render(pages[1], percival=plain_blocker,
                                mode="sync")

        diff_blocker = _blocker(reference_classifier)
        differ = FrameDiffer()
        renderer.render(pages[1], percival=diff_blocker, mode="sync",
                        differ=differ)
        inherited = renderer.render(pages[1], percival=diff_blocker,
                                    mode="sync", differ=differ)
        assert (inherited.images_blocked_by_percival
                == plain.images_blocked_by_percival)
        assert inherited.flashed_ads == plain.flashed_ads == 0

    def test_sessions_are_isolated(self, small_web, reference_classifier):
        pages, network = small_web
        renderer = Renderer(CHROMIUM, network)
        blocker = _blocker(reference_classifier)
        differ = FrameDiffer()
        renderer.render(pages[2], percival=blocker, mode="sync",
                        differ=differ, session_id="alice")
        other = renderer.render(pages[2], percival=blocker, mode="sync",
                                differ=differ, session_id="bob")
        # bob never inherits alice's snapshot (the memo still answers,
        # but the diff layer itself reports a first visit)
        assert other.diff_inherited == 0
        assert other.diff_reclassified > 0

    def test_no_differ_is_the_pre_diff_path(
        self, small_web, reference_classifier
    ):
        pages, network = small_web
        renderer = Renderer(CHROMIUM, network)
        blocker = _blocker(reference_classifier)
        metrics = renderer.render(pages[3], percival=blocker, mode="sync")
        assert metrics.diff_inherited == 0
        assert metrics.diff_reclassified == 0

    def test_settled_blocked_frames_skip_decode_at_raster(self, rng):
        """A region settled as blocked paints a cleared buffer and
        never decodes; a settled-allowed region still pays its decode
        (only classification is skipped)."""
        from repro.browser.codecs import ImageFormat, encode_image
        from repro.browser.display_list import (
            DisplayItem,
            DisplayItemKind,
        )
        from repro.browser.raster import RasterConfig, rasterize
        from repro.browser.skia import BitmapImage

        def _image():
            pixels = rng.random((8, 8, 4)).astype(np.float32)
            return BitmapImage(encode_image(pixels, ImageFormat.RAW))

        blocked, allowed = _image(), _image()
        blocked.settle_verdict(True)
        allowed.settle_verdict(False)  # defers: decode happens at paint
        items = [
            DisplayItem(DisplayItemKind.IMAGE, 0, 0, 10, 10, url="b"),
            DisplayItem(DisplayItemKind.IMAGE, 0, 300, 10, 10, url="a"),
        ]
        result = rasterize(
            items, 600, {"b": blocked, "a": allowed},
            RasterConfig(num_workers=1),
            percival_hook=lambda b, i: pytest.fail(
                "settled frames must never reach the hook"
            ),
            settled_urls={"b", "a"},
        )
        assert result.images_settled == 2
        assert result.images_blocked == 1
        assert blocked.blocked and np.all(blocked.decode_only() == 0)
        assert allowed.is_decoded and not allowed.blocked
        # only the allowed frame's decode was charged
        assert result.decode_cost_ms > 0
        assert result.classify_cost_ms == 0.0

    def test_revisit_memory_composes_with_the_differ(
        self, small_web, reference_classifier
    ):
        """With both layers on, the §6 memory collapses blocked slots
        pre-layout and the differ inherits whatever still paints —
        nothing is classified twice and nothing double-counts."""
        pages, network = small_web
        renderer = Renderer(CHROMIUM, network)
        blocker = _blocker(reference_classifier)
        differ = FrameDiffer()
        memory = RevisitMemory()
        first = renderer.render(pages[1], percival=blocker, mode="sync",
                                differ=differ, revisit_memory=memory,
                                session_id="combo")
        second = renderer.render(pages[1], percival=blocker, mode="sync",
                                 differ=differ, revisit_memory=memory,
                                 session_id="combo")
        assert (second.elements_collapsed_by_memory
                == first.images_blocked_by_percival)
        # the collapsed slots never reach the display list, so the
        # differ only sees (and inherits) the surviving regions
        assert second.diff_reclassified == 0
        assert second.classify_cost_ms == 0.0


class TestAsyncBridgeDiff:
    def test_bridge_differ_settles_the_revisit(
        self, small_web, untrained_classifier
    ):
        """The bridge's own differ is picked up without an explicit
        ``differ=`` argument; the revisit settles from the snapshot
        before the memo is ever probed."""
        pages, network = small_web
        renderer = Renderer(CHROMIUM, network)
        blocker = _blocker(untrained_classifier)
        bridge = RenderServeBridge(
            blocker, ServeSettings(max_batch=8), differ=FrameDiffer()
        )
        first = renderer.render(pages[2], percival=blocker, mode="async",
                                serve_bridge=bridge)
        second = renderer.render(pages[2], percival=blocker, mode="async",
                                 serve_bridge=bridge)
        assert first.images_decoded > 0
        assert second.diff_inherited == first.images_decoded
        assert second.memo_hits == 0  # settled before the memo tier
        assert second.classify_cost_ms == 0.0
        assert second.async_classify_ms == 0.0
        assert bridge.depth == 0

    def test_async_snapshot_records_drain_time_decisions(
        self, small_web, untrained_classifier
    ):
        """Async mode classifies at drain time — the snapshot commit
        back-fills those verdicts from the memo, so visit 2 inherits
        full decisions, not verdict-less records."""
        pages, network = small_web
        renderer = Renderer(CHROMIUM, network)
        blocker = _blocker(untrained_classifier)
        differ = FrameDiffer()
        bridge = RenderServeBridge(
            blocker, ServeSettings(max_batch=8), differ=differ
        )
        renderer.render(pages[3], percival=blocker, mode="async",
                        serve_bridge=bridge)
        snapshot = differ.store.get("local", pages[3].url)
        assert snapshot is not None
        assert all(r.inheritable for r in snapshot.regions.values())
