"""The batched image-decode drain: semantics vs the per-frame path.

The sync-mode drain classifies a page's frames in one batched forward;
the virtual-clock metrics must be bit-identical to the per-frame hook
deployment (raster still charges decode + classification per image).
"""

import numpy as np
import pytest

from repro.browser.codecs import ImageFormat, encode_image
from repro.browser.network import MockNetwork, NetworkConfig
from repro.browser.renderer import CHROMIUM, Renderer
from repro.browser.skia import BitmapImage
from repro.core import PercivalBlocker
from repro.synth.webgen import SyntheticWeb, WebConfig, url_registry


@pytest.fixture(scope="module")
def small_web():
    web = SyntheticWeb(WebConfig(seed=7, num_sites=3,
                                 images_per_page=(6, 10)))
    pages = list(web.iter_pages(web.top_sites(3), pages_per_site=1))
    network = MockNetwork(url_registry(pages), NetworkConfig(seed=2))
    return pages, network


class _PerFrameOnly:
    """Strips the batched API off a blocker: protocol methods only."""

    def __init__(self, blocker):
        self._blocker = blocker

    def classify_bitmap(self, bitmap, info):
        return self._blocker.classify_bitmap(bitmap, info)

    def classify_cost_ms(self, info):
        return self._blocker.classify_cost_ms(info)

    def memoized_verdict(self, bitmap):
        return self._blocker.memoized_verdict(bitmap)


class TestBatchedDrain:
    def test_sync_metrics_match_per_frame_path(self, small_web,
                                               untrained_classifier):
        pages, network = small_web
        renderer = Renderer(CHROMIUM, network)
        batched_metrics = []
        per_frame_metrics = []
        for page in pages:
            batched = PercivalBlocker(untrained_classifier,
                                      calibrated_latency_ms=11.0)
            batched_metrics.append(
                renderer.render(page, percival=batched, mode="sync")
            )
            per_frame = _PerFrameOnly(PercivalBlocker(
                untrained_classifier, calibrated_latency_ms=11.0
            ))
            per_frame_metrics.append(
                renderer.render(page, percival=per_frame, mode="sync")
            )
        for fast, reference in zip(batched_metrics, per_frame_metrics):
            assert fast.render_time_ms == pytest.approx(
                reference.render_time_ms
            )
            assert fast.classify_cost_ms == pytest.approx(
                reference.classify_cost_ms
            )
            assert (
                fast.images_blocked_by_percival
                == reference.images_blocked_by_percival
            )
            assert fast.images_decoded == reference.images_decoded

    def test_drain_classifies_in_one_batch(self, small_web,
                                           untrained_classifier, rng):
        pages, network = small_web
        renderer = Renderer(CHROMIUM, network)
        blocker = PercivalBlocker(untrained_classifier,
                                  calibrated_latency_ms=11.0)
        calls = []
        original = untrained_classifier.predict_proba_tensor

        def counting(tensors, *args, **kwargs):
            calls.append(tensors.shape[0])
            return original(tensors, *args, **kwargs)

        untrained_classifier.predict_proba_tensor = counting
        try:
            metrics = renderer.render(pages[0], percival=blocker,
                                      mode="sync")
        finally:
            untrained_classifier.predict_proba_tensor = original
        assert metrics.images_decoded > 1
        # all unique frames of the page classified in a single batch
        assert len(calls) == 1
        assert calls[0] == blocker.classifications


class TestTwoPhaseDecode:
    def _bitmap_image(self, rng):
        pixels = rng.random((6, 6, 4)).astype(np.float32)
        return BitmapImage(encode_image(pixels, ImageFormat.RAW))

    def test_decode_only_then_block(self, rng):
        image = self._bitmap_image(rng)
        pixels = image.decode_only()
        assert image.is_decoded
        assert not image.blocked
        assert pixels.any()
        image.apply_verdict(True)
        assert image.blocked
        assert not image.ensure_decoded().any()  # buffer cleared

    def test_decode_only_then_pass(self, rng):
        image = self._bitmap_image(rng)
        image.decode_only()
        image.apply_verdict(False)
        assert not image.blocked
        assert image.ensure_decoded().any()

    def test_apply_verdict_requires_decode(self, rng):
        image = self._bitmap_image(rng)
        with pytest.raises(RuntimeError):
            image.apply_verdict(True)

    def test_verdict_cannot_unblock(self, rng):
        image = self._bitmap_image(rng)
        image.decode_only()
        image.apply_verdict(True)
        image.apply_verdict(False)
        assert image.blocked
