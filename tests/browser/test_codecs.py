"""Image codec round trips."""

import numpy as np
import pytest

from repro.browser.codecs import (
    EncodedImage,
    ImageFormat,
    decode_image,
    encode_image,
    format_for_url,
)


@pytest.fixture()
def pixels(rng):
    return rng.random((12, 18, 4)).astype(np.float32)


class TestRoundTrips:
    @pytest.mark.parametrize("fmt", [
        ImageFormat.RAW, ImageFormat.RLE, ImageFormat.DEFLATE,
    ])
    def test_lossless_formats(self, pixels, fmt):
        encoded = encode_image(pixels, fmt)
        decoded = decode_image(encoded)
        # lossless up to the uint8 wire quantization
        assert np.abs(decoded - pixels).max() <= 1.0 / 255.0 + 1e-6

    def test_quant_is_lossy_but_close(self, pixels):
        encoded = encode_image(pixels, ImageFormat.QUANT)
        decoded = decode_image(encoded)
        assert np.abs(decoded - pixels).max() <= 8.0 / 255.0 + 1e-6
        assert decoded.shape == pixels.shape

    def test_shape_metadata(self, pixels):
        encoded = encode_image(pixels, ImageFormat.RAW)
        assert encoded.width == 18
        assert encoded.height == 12
        assert encoded.pixel_count == 12 * 18


class TestCompression:
    def test_deflate_compresses_flat_images(self):
        flat = np.full((32, 32, 4), 0.5, dtype=np.float32)
        raw = encode_image(flat, ImageFormat.RAW)
        deflated = encode_image(flat, ImageFormat.DEFLATE)
        assert deflated.byte_size < raw.byte_size / 4

    def test_rle_compresses_runs(self):
        flat = np.zeros((16, 16, 4), dtype=np.float32)
        raw = encode_image(flat, ImageFormat.RAW)
        rle = encode_image(flat, ImageFormat.RLE)
        assert rle.byte_size < raw.byte_size


class TestValidation:
    def test_bad_magic_rejected(self):
        bogus = EncodedImage(
            format=ImageFormat.RAW, payload=b"XXXX" + b"\0" * 20,
            width=1, height=1,
        )
        with pytest.raises(ValueError):
            decode_image(bogus)

    def test_format_header_mismatch_rejected(self, pixels):
        encoded = encode_image(pixels, ImageFormat.RAW)
        tampered = EncodedImage(
            format=ImageFormat.RLE, payload=encoded.payload,
            width=encoded.width, height=encoded.height,
        )
        with pytest.raises(ValueError):
            decode_image(tampered)

    def test_rgb_input_rejected(self, rng):
        with pytest.raises(ValueError):
            encode_image(rng.random((4, 4, 3)).astype(np.float32),
                         ImageFormat.RAW)

    def test_corrupt_rle_rejected(self):
        from repro.browser.codecs import _rle_decode
        with pytest.raises(ValueError):
            _rle_decode(b"\x01\x02\x03")


class TestFormatForUrl:
    def test_extension_mapping(self):
        assert format_for_url("https://x/img.png") is ImageFormat.DEFLATE
        assert format_for_url("https://x/img.jpg") is ImageFormat.QUANT
        assert format_for_url("https://x/img.jpeg") is ImageFormat.QUANT
        assert format_for_url("https://x/img.gif") is ImageFormat.RLE
        assert format_for_url("https://x/img.bin") is ImageFormat.RAW

    def test_decode_cost_factors_ordered(self):
        assert (ImageFormat.RAW.decode_cost_factor
                < ImageFormat.RLE.decode_cost_factor
                < ImageFormat.DEFLATE.decode_cost_factor
                < ImageFormat.QUANT.decode_cost_factor)
