"""Async-mode serving: memo-hit cost accounting + the bridge route.

Two behaviours pinned here:

* the metric fix: a memo-hit frame in async mode enqueues nothing, so
  it charges *zero* classification cost to the raster lane (previously
  every decode paid the enqueue cost, memoized or not), and
* the serve bridge: async-mode misses drain through micro-batched
  ``decide_many`` chunks after raster, with amortized virtual costs on
  the async lanes and verdicts identical to the per-frame deployment.
"""

import pytest

from repro.browser.network import MockNetwork, NetworkConfig
from repro.browser.renderer import CHROMIUM, Renderer
from repro.core import PercivalBlocker, ServeSettings
from repro.serve import RenderServeBridge
from repro.synth.webgen import SyntheticWeb, WebConfig, url_registry


@pytest.fixture(scope="module")
def small_web():
    web = SyntheticWeb(WebConfig(seed=19, num_sites=3,
                                 images_per_page=(6, 10)))
    pages = list(web.iter_pages(web.top_sites(3), pages_per_site=1))
    network = MockNetwork(url_registry(pages), NetworkConfig(seed=4))
    return pages, network


def _blocker(classifier):
    return PercivalBlocker(classifier, calibrated_latency_ms=11.0)


class TestAsyncMemoCost:
    def test_memo_hits_charge_no_enqueue_cost(
        self, small_web, untrained_classifier
    ):
        """Second visit in async mode: all verdicts come from the memo,
        so the raster lanes are charged zero classification cost and no
        async work is submitted."""
        pages, network = small_web
        renderer = Renderer(CHROMIUM, network)
        blocker = _blocker(untrained_classifier)
        first = renderer.render(pages[0], percival=blocker, mode="async")
        second = renderer.render(pages[0], percival=blocker, mode="async")
        assert first.images_decoded > 0
        # first sight: every decoded frame enqueued work
        assert first.classify_cost_ms == pytest.approx(
            0.05 * first.images_decoded
        )
        assert first.async_classify_ms > 0
        # revisit: all memo hits -> no enqueue cost, no async compute
        assert second.memo_hits == second.images_decoded
        assert second.classify_cost_ms == 0.0
        assert second.async_classify_ms == 0.0

    def test_unmemoized_frames_still_pay_enqueue(
        self, small_web, untrained_classifier
    ):
        """A mixed page (some memoized, some fresh) charges exactly the
        fresh frames."""
        pages, network = small_web
        renderer = Renderer(CHROMIUM, network)
        blocker = _blocker(untrained_classifier)
        renderer.render(pages[1], percival=blocker, mode="async")
        mixed = renderer.render(pages[1], percival=blocker, mode="async")
        fresh = mixed.images_decoded - mixed.memo_hits
        assert mixed.classify_cost_ms == pytest.approx(0.05 * fresh)


class TestServeBridgeRoute:
    def test_bridge_batches_misses_and_matches_per_frame_verdicts(
        self, small_web, untrained_classifier
    ):
        pages, network = small_web
        renderer = Renderer(CHROMIUM, network)

        plain_blocker = _blocker(untrained_classifier)
        plain = renderer.render(
            pages[0], percival=plain_blocker, mode="async"
        )

        bridged_blocker = _blocker(untrained_classifier)
        bridge = RenderServeBridge(
            bridged_blocker, ServeSettings(max_batch=4)
        )
        bridged = renderer.render(
            pages[0], percival=bridged_blocker, mode="async",
            serve_bridge=bridge,
        )

        # identical classification outcomes, batched execution
        assert bridged.images_decoded == plain.images_decoded
        assert bridged.flashed_ads == plain.flashed_ads
        assert bridged_blocker.classifications == plain_blocker.classifications
        assert bridge.frames_enqueued == bridged.images_decoded
        assert bridge.batches_flushed == -(-bridged.images_decoded // 4)
        # amortized batch costs land on the async lanes: strictly less
        # virtual work than one calibrated latency per frame
        assert 0 < bridged.async_classify_ms
        total_async = bridge.compute_model(1) * bridged.images_decoded
        assert bridged.async_classify_ms < total_async
        # paint path only ever pays the enqueue cost
        assert bridged.classify_cost_ms == pytest.approx(
            0.05 * bridged.images_decoded
        )

    def test_bridge_memo_shared_across_renders(
        self, small_web, untrained_classifier
    ):
        """The bridge outlives a page: a second session rendering the
        same creatives resolves entirely from the shared memo."""
        pages, network = small_web
        renderer = Renderer(CHROMIUM, network)
        blocker = _blocker(untrained_classifier)
        bridge = RenderServeBridge(blocker, ServeSettings(max_batch=8))
        first = renderer.render(
            pages[2], percival=blocker, mode="async", serve_bridge=bridge
        )
        second = renderer.render(
            pages[2], percival=blocker, mode="async", serve_bridge=bridge
        )
        assert first.images_decoded > 0
        # with the diff layer on (PERCIVAL_DIFF), the revisit settles
        # from the page snapshot instead of probing the memo — either
        # way every frame resolves without fresh classification
        assert (
            second.memo_hits + second.diff_inherited
            == second.images_decoded
        )
        assert second.classify_cost_ms == 0.0
        assert second.async_classify_ms == 0.0
        assert bridge.depth == 0

    def test_bridge_rejected_in_sync_mode(
        self, small_web, untrained_classifier
    ):
        pages, network = small_web
        renderer = Renderer(CHROMIUM, network)
        blocker = _blocker(untrained_classifier)
        bridge = RenderServeBridge(blocker)
        with pytest.raises(ValueError, match="async"):
            renderer.render(
                pages[0], percival=blocker, mode="sync",
                serve_bridge=bridge,
            )
