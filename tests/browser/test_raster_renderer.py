"""Raster scheduling and the end-to-end renderer."""

import numpy as np
import pytest

from repro.browser.codecs import ImageFormat, encode_image
from repro.browser.display_list import DisplayItem, DisplayItemKind
from repro.browser.network import MockNetwork, NetworkConfig
from repro.browser.raster import RasterConfig, rasterize
from repro.browser.renderer import BRAVE, CHROMIUM, Renderer
from repro.browser.skia import BitmapImage
from repro.synth.webgen import SyntheticWeb, WebConfig, url_registry


@pytest.fixture(scope="module")
def small_web():
    web = SyntheticWeb(WebConfig(seed=42, num_sites=4,
                                 images_per_page=(6, 10)))
    pages = list(web.iter_pages(web.top_sites(4), pages_per_site=1))
    network = MockNetwork(url_registry(pages), NetworkConfig(seed=1))
    return pages, network


def _bitmap_image(rng, h=8, w=8):
    pixels = rng.random((h, w, 4)).astype(np.float32)
    return BitmapImage(encode_image(pixels, ImageFormat.RAW))


class TestRasterize:
    def test_decode_charged_once(self, rng):
        image = _bitmap_image(rng)
        items = [
            DisplayItem(DisplayItemKind.IMAGE, 0, 0, 10, 10, url="u"),
            DisplayItem(DisplayItemKind.IMAGE, 0, 300, 10, 10, url="u"),
        ]
        result = rasterize(items, 600, {"u": image},
                           RasterConfig(num_workers=1))
        assert result.images_decoded == 1

    def test_classification_cost_on_lane(self, rng):
        image = _bitmap_image(rng)
        items = [DisplayItem(DisplayItemKind.IMAGE, 0, 0, 10, 10, url="u")]
        base = rasterize(
            items, 256, {"u": _bitmap_image(rng)},
            RasterConfig(num_workers=1),
        )
        with_hook = rasterize(
            items, 256, {"u": image}, RasterConfig(num_workers=1),
            percival_hook=lambda b, i: False,
            classify_cost_ms=lambda url: 11.0,
        )
        assert with_hook.makespan_ms == pytest.approx(
            base.makespan_ms + 11.0
        )
        assert with_hook.classify_cost_ms == 11.0

    def test_blocking_counted(self, rng):
        image = _bitmap_image(rng)
        items = [DisplayItem(DisplayItemKind.IMAGE, 0, 0, 10, 10, url="u")]
        result = rasterize(
            items, 256, {"u": image}, RasterConfig(num_workers=1),
            percival_hook=lambda b, i: True,
        )
        assert result.images_blocked == 1
        assert image.blocked

    def test_parallel_lanes_reduce_makespan(self, rng):
        items = [
            DisplayItem(DisplayItemKind.IMAGE, 0, 300 * k, 10, 10,
                        url=f"u{k}")
            for k in range(4)
        ]
        images = {f"u{k}": _bitmap_image(rng) for k in range(4)}
        serial = rasterize(items, 1200, dict(images),
                           RasterConfig(num_workers=1),
                           percival_hook=lambda b, i: False,
                           classify_cost_ms=lambda url: 10.0)
        images2 = {f"u{k}": _bitmap_image(rng) for k in range(4)}
        parallel = rasterize(items, 1200, images2,
                             RasterConfig(num_workers=4),
                             percival_hook=lambda b, i: False,
                             classify_cost_ms=lambda url: 10.0)
        assert parallel.makespan_ms < serial.makespan_ms

    def test_tile_count(self, rng):
        result = rasterize([], 1000, {}, RasterConfig(tile_height=256))
        assert result.tiles == 4


class TestMockNetwork:
    def test_fetch_returns_encoded(self, small_web):
        pages, network = small_web
        url = pages[0].image_elements()[0].url
        encoded = network.fetch(url)
        assert encoded.byte_size > 0

    def test_fetch_cached(self, small_web):
        pages, network = small_web
        url = pages[0].image_elements()[0].url
        assert network.fetch(url) is network.fetch(url)

    def test_unknown_url_raises(self, small_web):
        _, network = small_web
        with pytest.raises(KeyError):
            network.fetch("https://nowhere.example/x.png")

    def test_cost_deterministic_per_url(self, small_web):
        pages, network = small_web
        url = pages[0].image_elements()[0].url
        encoded = network.fetch(url)
        assert network.request_cost_ms(url, encoded) == pytest.approx(
            network.request_cost_ms(url, encoded)
        )

    def test_parallel_fetch_less_than_serial(self, small_web):
        pages, network = small_web
        urls = [e.url for e in pages[0].image_elements()]
        makespan = network.fetch_all_cost_ms(urls)
        serial = sum(
            network.request_cost_ms(u, network.fetch(u)) for u in urls
        )
        assert makespan <= serial


class TestRenderer:
    def test_baseline_render_metrics(self, small_web):
        pages, network = small_web
        renderer = Renderer(CHROMIUM, network)
        metrics = renderer.render(pages[0])
        assert metrics.render_time_ms > 0
        assert metrics.images_total == len(pages[0].image_elements())
        assert metrics.images_blocked_by_percival == 0

    def test_brave_blocks_requests(self, small_web):
        pages, network = small_web
        renderer = Renderer(BRAVE, network)
        metrics = renderer.render(pages[0])
        assert metrics.images_blocked_by_list > 0
        assert metrics.images_decoded < metrics.images_total

    def test_brave_faster_than_chromium(self, small_web):
        pages, network = small_web
        chromium_times = [
            Renderer(CHROMIUM, network).render(p).render_time_ms
            for p in pages
        ]
        brave_times = [
            Renderer(BRAVE, network).render(p).render_time_ms
            for p in pages
        ]
        assert np.median(brave_times) < np.median(chromium_times)

    def test_sync_percival_adds_overhead(self, small_web):
        pages, network = small_web

        class StubBlocker:
            def classify_bitmap(self, bitmap, info):
                return False

            def classify_cost_ms(self, info):
                return 11.0

            def memoized_verdict(self, bitmap):
                return None

        renderer = Renderer(CHROMIUM, network)
        base = renderer.render(pages[0]).render_time_ms
        treated = renderer.render(
            pages[0], percival=StubBlocker(), mode="sync"
        )
        assert treated.render_time_ms > base
        assert treated.classify_cost_ms > 0

    def test_async_mode_does_not_block_paint(self, small_web):
        pages, network = small_web

        class AdEverything:
            def classify_bitmap(self, bitmap, info):
                return True

            def classify_cost_ms(self, info):
                return 11.0

            def memoized_verdict(self, bitmap):
                return None

        renderer = Renderer(CHROMIUM, network)
        metrics = renderer.render(
            pages[0], percival=AdEverything(), mode="async"
        )
        # nothing blocked this paint; everything flagged as flashed
        assert metrics.images_blocked_by_percival == 0
        assert metrics.flashed_ads == metrics.images_decoded
        assert metrics.async_classify_ms > 0

    def test_invalid_mode_rejected(self, small_web):
        pages, network = small_web
        renderer = Renderer(CHROMIUM, network)
        with pytest.raises(ValueError):
            renderer.render(pages[0], mode="eventually")

    def test_metrics_components_sum(self, small_web):
        pages, network = small_web
        metrics = Renderer(CHROMIUM, network).render(pages[0])
        total = (
            metrics.fetch_html_ms + metrics.parse_ms + metrics.script_ms
            + metrics.style_ms + metrics.image_fetch_ms
            + metrics.layout_ms + metrics.display_list_ms
            + metrics.raster_ms
        )
        assert metrics.render_time_ms == pytest.approx(total)
