"""Evaluation metrics and table formatting."""

import numpy as np
import pytest

from repro.eval.metrics import BinaryMetrics, confusion_metrics
from repro.eval.reporting import format_table, paper_vs_measured


class TestBinaryMetrics:
    def test_perfect_classifier(self):
        m = BinaryMetrics(tp=5, tn=5, fp=0, fn=0)
        assert m.accuracy == 1.0
        assert m.precision == 1.0
        assert m.recall == 1.0
        assert m.f1 == 1.0

    def test_paper_facebook_numbers(self):
        """Figure 10's counts reproduce its derived rates."""
        m = BinaryMetrics(tp=248, tn=1762, fp=68, fn=106)
        assert m.accuracy == pytest.approx(0.92, abs=0.005)
        assert m.precision == pytest.approx(0.784, abs=0.005)
        assert m.recall == pytest.approx(0.7, abs=0.005)

    def test_degenerate_cases_nan(self):
        no_predictions = BinaryMetrics(tp=0, tn=4, fp=0, fn=0)
        assert np.isnan(no_predictions.precision)
        empty = BinaryMetrics(tp=0, tn=0, fp=0, fn=0)
        assert np.isnan(empty.accuracy)

    def test_str_includes_counts(self):
        text = str(BinaryMetrics(tp=1, tn=2, fp=3, fn=4))
        assert "tp=1" in text and "fn=4" in text


class TestConfusionMetrics:
    def test_counts(self):
        predictions = np.array([1, 1, 0, 0, 1])
        truths = np.array([1, 0, 0, 1, 1])
        m = confusion_metrics(predictions, truths)
        assert (m.tp, m.fp, m.tn, m.fn) == (2, 1, 1, 1)

    def test_bool_and_int_inputs_equal(self):
        p_int = np.array([1, 0])
        t_int = np.array([1, 1])
        a = confusion_metrics(p_int, t_int)
        b = confusion_metrics(p_int.astype(bool), t_int.astype(bool))
        assert (a.tp, a.fn) == (b.tp, b.fn)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_metrics(np.array([1]), np.array([1, 0]))


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(
            ("name", "value"), [("a", 1), ("long-name", 2.5)]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].index("value") == lines[2].index("1") or True
        assert "long-name" in text

    def test_paper_vs_measured_header(self):
        text = paper_vs_measured("Test", [("x", 1.0, 2.0)])
        assert text.startswith("== Test ==")
        assert "measured" in text

    def test_float_formatting(self):
        text = format_table(("v",), [(0.96764,)])
        assert "0.9676" in text
