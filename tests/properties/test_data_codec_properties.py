"""Property-based tests: codecs round-trip, dataset invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.browser.codecs import ImageFormat, decode_image, encode_image
from repro.data.dataset import LabeledImageDataset
from repro.synth.drawing import resize_bitmap


@settings(max_examples=20, deadline=None)
@given(
    height=st.integers(2, 24), width=st.integers(2, 24),
    seed=st.integers(0, 10_000),
    fmt=st.sampled_from([ImageFormat.RAW, ImageFormat.RLE,
                         ImageFormat.DEFLATE]),
)
def test_lossless_codecs_roundtrip_any_size(height, width, seed, fmt):
    rng = np.random.default_rng(seed)
    pixels = rng.random((height, width, 4)).astype(np.float32)
    decoded = decode_image(encode_image(pixels, fmt))
    assert decoded.shape == pixels.shape
    assert np.abs(decoded - pixels).max() <= 1.0 / 255.0 + 1e-6


@settings(max_examples=20, deadline=None)
@given(
    height=st.integers(2, 40), width=st.integers(2, 40),
    target_h=st.integers(2, 40), target_w=st.integers(2, 40),
    seed=st.integers(0, 10_000),
)
def test_resize_always_exact_target(height, width, target_h, target_w,
                                    seed):
    rng = np.random.default_rng(seed)
    img = rng.random((height, width, 4)).astype(np.float32)
    out = resize_bitmap(img, target_h, target_w)
    assert out.shape == (target_h, target_w, 4)
    assert out.min() >= 0.0 and out.max() <= 1.0


@settings(max_examples=20, deadline=None)
@given(
    n_ads=st.integers(1, 20), n_nonads=st.integers(1, 20),
    seed=st.integers(0, 1000),
)
def test_balancing_always_equalizes(n_ads, n_nonads, seed):
    total = n_ads + n_nonads
    rng = np.random.default_rng(seed)
    data = LabeledImageDataset(
        rng.random((total, 4, 2, 2)).astype(np.float32),
        np.array([1] * n_ads + [0] * n_nonads, dtype=np.int64),
    )
    balanced = data.balanced(seed=seed)
    assert balanced.num_ads == balanced.num_nonads
    assert balanced.num_ads == min(n_ads, n_nonads)


@settings(max_examples=20, deadline=None)
@given(
    count=st.integers(2, 30), fraction=st.floats(0.1, 0.9),
    seed=st.integers(0, 1000),
)
def test_split_partitions_exactly(count, fraction, seed):
    rng = np.random.default_rng(seed)
    data = LabeledImageDataset(
        rng.random((count, 4, 2, 2)).astype(np.float32),
        rng.integers(0, 2, count).astype(np.int64),
        [{"i": i} for i in range(count)],
    )
    first, second = data.split(fraction, seed=seed)
    assert len(first) + len(second) == count
    ids = sorted(
        [m["i"] for m in first.metadata] + [m["i"] for m in second.metadata]
    )
    assert ids == list(range(count))
