"""Property-based tests of the NN kernels (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.nn import functional as F
from repro.nn.loss import softmax

_dims = st.integers(min_value=1, max_value=4)
_sizes = st.integers(min_value=3, max_value=9)


@settings(max_examples=25, deadline=None)
@given(
    batch=_dims, channels=_dims, size=_sizes,
    kernel=st.integers(1, 3), stride=st.integers(1, 2),
    seed=st.integers(0, 10_000),
)
def test_conv_shape_formula_holds(batch, channels, size, kernel, stride,
                                  seed):
    """conv2d output shape always matches the formula for any geometry
    where the formula yields a positive extent."""
    pad = kernel // 2
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((batch, channels, size, size))
    w = rng.standard_normal((2, channels, kernel, kernel))
    b = np.zeros(2)
    out, _ = F.conv2d_forward(x, w, b, stride, pad)
    expected = F.conv_output_size(size, kernel, stride, pad)
    assert out.shape == (batch, 2, expected, expected)


@settings(max_examples=25, deadline=None)
@given(
    size=st.integers(2, 8), kernel=st.integers(1, 2),
    seed=st.integers(0, 10_000),
)
def test_maxpool_upper_bounds_avgpool(size, kernel, seed):
    """max over a window is always >= mean over the same window."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((1, 2, size * kernel, size * kernel))
    max_out, _ = F.maxpool2d_forward(x, kernel, kernel)
    avg_out = F.avgpool2d_forward(x, kernel, kernel)
    assert (max_out >= avg_out - 1e-12).all()


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 6), cols=st.integers(2, 6),
    seed=st.integers(0, 10_000),
    scale=st.floats(0.1, 100.0),
)
def test_softmax_is_distribution(rows, cols, seed, scale):
    rng = np.random.default_rng(seed)
    logits = rng.standard_normal((rows, cols)) * scale
    probs = softmax(logits, axis=1)
    assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-6)
    assert (probs >= 0).all()


@settings(max_examples=25, deadline=None)
@given(
    size=st.integers(4, 10), seed=st.integers(0, 10_000),
)
def test_col2im_adjoint_of_im2col(size, seed):
    """<im2col(x), y> == <x, col2im(y)> — the adjoint identity that
    guarantees the conv backward pass is the true gradient."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((1, 2, size, size))
    cols = F.im2col(x, 3, 3, 1, 1)
    y = rng.standard_normal(cols.shape)
    lhs = float((cols * y).sum())
    x_back = F.col2im(y, x.shape, 3, 3, 1, 1)
    rhs = float((x * x_back).sum())
    assert np.isclose(lhs, rhs, rtol=1e-9)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_global_avgpool_invariant_to_spatial_shuffle(seed):
    """GAP is permutation-invariant over spatial positions."""
    from repro.nn import GlobalAvgPool2d
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((1, 3, 4, 4))
    flat = x.reshape(1, 3, -1)
    permutation = rng.permutation(16)
    shuffled = flat[:, :, permutation].reshape(1, 3, 4, 4)
    gap = GlobalAvgPool2d()
    assert np.allclose(gap.forward(x), gap.forward(shuffled))


@settings(max_examples=50, deadline=None)
@given(
    out_channels=st.integers(1, 6),
    fan_in=st.integers(1, 24),
    scale_exp=st.integers(-6, 6),
    seed=st.integers(0, 10_000),
)
def test_int8_quantize_error_within_per_channel_scale_bound(
    out_channels, fan_in, scale_exp, seed
):
    """quantize -> dequantize reconstruction error never exceeds half a
    quantization step per output channel (the artifact layer's int8
    accuracy contract), across magnitudes from 1e-6 to 1e6."""
    from repro.nn.quantize import dequantize_int8, quantize_int8

    rng = np.random.default_rng(seed)
    weights = (
        rng.standard_normal((out_channels, fan_in)) * 10.0 ** scale_exp
    ).astype(np.float32)
    quantized, scales = quantize_int8(weights)
    restored = dequantize_int8(quantized, scales)
    per_channel_error = np.abs(restored - weights).max(axis=1)
    assert np.all(per_channel_error <= scales / 2 * (1 + 1e-5))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_quantize_fp32_is_identity(seed):
    """fp32 "quantization" is a bit-exact passthrough."""
    from repro.nn.quantize import quantize_array

    rng = np.random.default_rng(seed)
    weights = rng.standard_normal((3, 5)).astype(np.float32)
    stored, scales = quantize_array(weights, "fp32")
    assert scales is None
    assert np.array_equal(stored, weights)
