"""Property-based tests of the filter engine."""

import string

from hypothesis import given, settings, strategies as st

from repro.filterlist.engine import FilterEngine
from repro.filterlist.matcher import best_token, rule_tokens
from repro.filterlist.rules import parse_rule

_domain_label = st.text(
    alphabet=string.ascii_lowercase + string.digits, min_size=3,
    max_size=10,
).filter(lambda s: not s[0].isdigit())

_domains = st.builds(lambda a, b: f"{a}.{b}", _domain_label,
                     st.sampled_from(["example", "test", "invalid"]))


@settings(max_examples=40, deadline=None)
@given(domain=_domains)
def test_domain_anchor_always_matches_own_domain(domain):
    rule = parse_rule(f"||{domain}^")
    assert rule.matches_url(f"https://{domain}/anything.png")
    assert rule.matches_url(f"https://sub.{domain}/x")


@settings(max_examples=40, deadline=None)
@given(domain=_domains, prefix=_domain_label)
def test_domain_anchor_never_matches_lookalike(domain, prefix):
    rule = parse_rule(f"||{domain}^")
    assert not rule.matches_url(f"https://{prefix}{domain}.evil/x")


@settings(max_examples=40, deadline=None)
@given(domain=_domains)
def test_exception_always_wins(domain):
    """For any domain, a block rule + identical exception = allowed."""
    engine = FilterEngine.from_text(
        f"||{domain}^\n@@||{domain}^"
    )
    decision = engine.check_request(
        f"https://{domain}/img.png", "publisher.example"
    )
    assert not decision.blocked
    assert decision.exception is not None


@settings(max_examples=40, deadline=None)
@given(pattern=st.text(
    alphabet=string.ascii_lowercase + "*^|./", min_size=1, max_size=20,
))
def test_tokenizer_never_crashes_and_tokens_in_pattern(pattern):
    tokens = rule_tokens(pattern)
    for token in tokens:
        assert token in pattern.lower()
    best = best_token(pattern)
    assert best == "" or best in tokens


@settings(max_examples=30, deadline=None)
@given(domain=_domains)
def test_engine_block_decision_idempotent(domain):
    engine = FilterEngine.from_text(f"||{domain}^")
    url = f"https://{domain}/x.png"
    first = engine.check_request(url, "pub.example").blocked
    second = engine.check_request(url, "pub.example").blocked
    assert first == second
