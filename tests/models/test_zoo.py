"""Model accounting and stem-transfer (§4.3)."""

import numpy as np
import pytest

from repro.models.percivalnet import PercivalNet
from repro.models.zoo import (
    SENTINEL_MODEL_BYTES,
    describe_model,
    model_size_bytes,
    model_size_mb,
    pretrain_stem,
    transfer_stem_weights,
)


class TestAccounting:
    def test_size_bytes_is_param_bytes(self):
        net = PercivalNet.small()
        assert model_size_bytes(net) == sum(
            p.nbytes for p in net.parameters()
        )

    def test_mb_conversion(self):
        net = PercivalNet.small()
        assert model_size_mb(net) == pytest.approx(
            model_size_bytes(net) / 2**20
        )

    def test_describe_model(self):
        info = describe_model(PercivalNet.small(), "x")
        assert info.name == "x"
        assert info.num_parameters > 0
        assert "params" in str(info)

    def test_sentinel_reduction_factor(self):
        """Paper: 'smaller by factor of 74' vs Sentinel-class models."""
        net = PercivalNet.paper()
        reduction = SENTINEL_MODEL_BYTES / model_size_bytes(net)
        assert reduction > 50


class TestStemTransfer:
    def test_transfer_copies_matching_blocks(self):
        donor = PercivalNet.small(seed=1)
        target = PercivalNet.small(seed=2)
        copied = transfer_stem_weights(donor, target, num_blocks=5)
        assert copied == 5
        donor_params = donor.parameters()
        target_params = target.parameters()
        # first conv weights now identical
        assert np.array_equal(donor_params[0].data, target_params[0].data)

    def test_transfer_skips_mismatched_shapes(self):
        donor = PercivalNet.small(seed=1, width=0.25)
        target = PercivalNet.small(seed=2, width=0.5)
        copied = transfer_stem_weights(donor, target, num_blocks=5)
        assert copied == 0  # every block differs in width

    def test_later_blocks_untouched(self):
        donor = PercivalNet.small(seed=1)
        target = PercivalNet.small(seed=2)
        before = [p.data.copy() for p in target.parameters()]
        transfer_stem_weights(donor, target, num_blocks=2)
        # the final classifier conv must not have been overwritten
        assert np.array_equal(before[-2], target.parameters()[-2].data)

    def test_pretrain_stem_learns_proxy_task(self):
        net = PercivalNet.small(seed=0)
        accuracy = pretrain_stem(net, seed=0, samples=64, epochs=4)
        assert accuracy > 0.8  # ramps vs checkerboards is easy
