"""The PERCIVAL compressed fork (Figure 3 right)."""

import numpy as np
import pytest

from repro.models.percivalnet import (
    LABEL_AD,
    LABEL_NONAD,
    NUM_CLASSES,
    PERCIVAL_FIRES,
    PercivalNet,
    build_percival_net,
)
from repro.nn import Conv2d, FireModule, GlobalAvgPool2d, MaxPool2d


class TestArchitecture:
    def test_six_fire_modules(self):
        net = PercivalNet.paper()
        fires = [l for l in net.layers if isinstance(l, FireModule)]
        assert len(fires) == 6

    def test_fire_channel_schedule_matches_figure3(self):
        net = PercivalNet.paper()
        fires = [l for l in net.layers if isinstance(l, FireModule)]
        for fire, (squeeze, expand) in zip(fires, PERCIVAL_FIRES):
            assert fire.squeeze_channels == squeeze
            assert fire.expand_channels == expand

    def test_pool_after_stem_and_every_two_fires(self):
        net = PercivalNet.paper()
        kinds = [type(l).__name__ for l in net.layers]
        # stem conv, relu, pool, F,F, pool, F,F, pool, F,F, pool, conv, gap
        assert kinds.count("MaxPool2d") == 4
        pool_positions = [i for i, k in enumerate(kinds)
                          if k == "MaxPool2d"]
        fire_positions = [i for i, k in enumerate(kinds)
                          if k == "FireModule"]
        # a pool follows every second fire module
        assert pool_positions[1] == fire_positions[1] + 1
        assert pool_positions[2] == fire_positions[3] + 1
        assert pool_positions[3] == fire_positions[5] + 1

    def test_head_is_conv_gap(self):
        net = PercivalNet.paper()
        assert isinstance(net.layers[-2], Conv2d)
        assert net.layers[-2].out_channels == NUM_CLASSES
        assert isinstance(net.layers[-1], GlobalAvgPool2d)

    def test_two_classes(self):
        assert NUM_CLASSES == 2
        assert LABEL_AD == 1
        assert LABEL_NONAD == 0

    def test_under_two_megabytes(self):
        """The paper's headline claim: model size < 2 MB."""
        net = PercivalNet.paper()
        size_mb = sum(p.nbytes for p in net.parameters()) / 2**20
        assert size_mb < 2.0

    def test_rgba_input_default(self):
        assert PercivalNet.paper().in_channels == 4


class TestForward:
    def test_paper_input_size(self):
        net = PercivalNet.paper().eval()
        out = net.forward(np.zeros((1, 4, 224, 224), dtype=np.float32))
        assert out.shape == (1, 2)

    def test_input_size_agnostic(self):
        """GAP head accepts any input size — the reduced-scale lever."""
        net = PercivalNet.small().eval()
        for size in (32, 48, 64):
            out = net.forward(np.zeros((2, 4, size, size),
                                       dtype=np.float32))
            assert out.shape == (2, 2)

    def test_deterministic_given_seed(self):
        a = PercivalNet.small(seed=3).eval()
        b = PercivalNet.small(seed=3).eval()
        x = np.random.default_rng(0).random((1, 4, 32, 32)).astype(
            np.float32
        )
        assert np.allclose(a.forward(x), b.forward(x))

    def test_different_seeds_differ(self):
        a = PercivalNet.small(seed=3).eval()
        b = PercivalNet.small(seed=4).eval()
        x = np.random.default_rng(0).random((1, 4, 32, 32)).astype(
            np.float32
        )
        assert not np.allclose(a.forward(x), b.forward(x))


class TestWidthScaling:
    def test_width_shrinks_parameters(self):
        full = PercivalNet(width=1.0, stem_stride=1)
        quarter = PercivalNet(width=0.25, stem_stride=1)
        full_params = sum(p.size for p in full.parameters())
        quarter_params = sum(p.size for p in quarter.parameters())
        assert quarter_params < full_params / 4

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            PercivalNet(width=0.0)

    def test_builder_picks_stride_from_input_size(self):
        small = build_percival_net(input_size=32)
        large = build_percival_net(input_size=224)
        assert small.layers[0].stride == 1
        assert large.layers[0].stride == 2

    def test_feature_indices_point_at_features(self):
        net = PercivalNet.small()
        assert isinstance(net.layers[net.feature_indices[0]], Conv2d)
        for index in net.feature_indices[1:]:
            assert isinstance(net.layers[index], FireModule)
