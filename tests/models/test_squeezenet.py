"""Stock SqueezeNet baseline."""

import numpy as np

from repro.models.squeezenet import SqueezeNet, build_squeezenet
from repro.nn import FireModule


class TestSqueezeNet:
    def test_eight_fire_modules(self):
        net = SqueezeNet(num_classes=10)
        fires = [l for l in net.layers if isinstance(l, FireModule)]
        assert len(fires) == 8

    def test_output_classes(self):
        net = SqueezeNet(num_classes=10, in_channels=3, stem_stride=1)
        net.eval()
        out = net.forward(np.zeros((1, 3, 48, 48), dtype=np.float32))
        assert out.shape == (1, 10)

    def test_1000_class_size_band(self):
        """Stock SqueezeNet-1000 lands in the ~4-5 MB band the paper
        quotes (4.8 MB)."""
        net = build_squeezenet(num_classes=1000)
        size_mb = sum(p.nbytes for p in net.parameters()) / 2**20
        assert 3.0 < size_mb < 6.0

    def test_bigger_than_percival_fork(self):
        from repro.models.percivalnet import PercivalNet
        squeezenet = build_squeezenet(num_classes=1000)
        percival = PercivalNet.paper()
        assert (
            sum(p.size for p in squeezenet.parameters())
            > 2 * sum(p.size for p in percival.parameters())
        )

    def test_builder_stride_heuristic(self):
        small = build_squeezenet(num_classes=2, input_size=48)
        assert small.layers[0].stride == 1
        large = build_squeezenet(num_classes=2, input_size=224)
        assert large.layers[0].stride == 2
