"""Wall-clock measurement helpers."""

import pytest

from repro.utils.timing import Timer, measure_latency


class TestTimer:
    def test_measures_nonnegative(self):
        with Timer() as timer:
            sum(range(100))
        assert timer.elapsed_ms >= 0

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed_ms
        with timer:
            sum(range(10000))
        assert timer.elapsed_ms >= 0
        assert first >= 0


class TestMeasureLatency:
    def test_returns_median(self):
        calls = []
        result = measure_latency(lambda: calls.append(1), repeats=5,
                                 warmup=2)
        assert result >= 0
        assert len(calls) == 7  # 2 warmup + 5 measured

    def test_zero_repeats_rejected(self):
        with pytest.raises(ValueError):
            measure_latency(lambda: None, repeats=0)

    def test_warmup_excluded_from_median(self):
        # a function that is slow only on its first call
        state = {"first": True}

        def fn():
            if state["first"]:
                state["first"] = False
                sum(range(2_000_00))

        latency = measure_latency(fn, repeats=3, warmup=1)
        assert latency < 50  # warmup absorbed the slow call
