"""Virtual clock and worker-lane scheduling."""

import pytest

from repro.utils.clock import VirtualClock, WorkerLanes


class TestVirtualClock:
    def test_starts_at_given_time(self):
        assert VirtualClock(5.0).now_ms == 5.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(10)
        clock.advance(2.5)
        assert clock.now_ms == 12.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1)

    def test_advance_to_only_moves_forward(self):
        clock = VirtualClock(10)
        clock.advance_to(5)
        assert clock.now_ms == 10
        clock.advance_to(20)
        assert clock.now_ms == 20


class TestWorkerLanes:
    def test_single_lane_serializes(self):
        lanes = WorkerLanes(1)
        lanes.submit(5)
        lanes.submit(7)
        assert lanes.makespan_ms == 12

    def test_least_loaded_assignment(self):
        lanes = WorkerLanes(2)
        lanes.submit(10)
        lanes.submit(1)   # goes to lane 1
        lanes.submit(1)   # still lane 1 (load 2 < 10)
        assert lanes.makespan_ms == 10
        assert lanes.total_work_ms == 12

    def test_makespan_at_least_mean_load(self):
        lanes = WorkerLanes(4)
        for cost in (3, 3, 3, 3, 3, 3, 3, 3):
            lanes.submit(cost)
        assert lanes.makespan_ms == pytest.approx(6.0)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            WorkerLanes(0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            WorkerLanes(1).submit(-1)

    def test_submit_returns_lane_index(self):
        lanes = WorkerLanes(3)
        assert lanes.submit(1) in range(3)
