"""Stable hashing and image fingerprints."""

import numpy as np
import pytest

from repro.utils.hashing import image_fingerprint, stable_hash


class TestStableHash:
    def test_dict_key_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_value_sensitivity(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_numpy_scalars_supported(self):
        assert stable_hash(np.int64(3)) == stable_hash(3)
        assert stable_hash({"x": np.float64(0.5)}) == stable_hash({"x": 0.5})

    def test_numpy_arrays_supported(self):
        assert stable_hash(np.array([1, 2])) == stable_hash([1, 2])

    def test_unhashable_type_raises(self):
        with pytest.raises(TypeError):
            stable_hash({"f": object()})


class TestImageFingerprint:
    def test_identical_pixels_identical_digest(self):
        img = np.random.default_rng(0).random((8, 8, 4)).astype(np.float32)
        assert image_fingerprint(img) == image_fingerprint(img.copy())

    def test_pixel_change_changes_digest(self):
        img = np.zeros((4, 4, 4), dtype=np.float32)
        other = img.copy()
        other[0, 0, 0] = 1.0
        assert image_fingerprint(img) != image_fingerprint(other)

    def test_shape_disambiguates(self):
        flat = np.zeros((2, 8, 4), dtype=np.float32)
        square = np.zeros((4, 4, 4), dtype=np.float32)
        assert image_fingerprint(flat) != image_fingerprint(square)

    def test_dtype_disambiguates(self):
        a = np.zeros((4, 4, 4), dtype=np.float32)
        b = np.zeros((4, 4, 4), dtype=np.float64)
        assert image_fingerprint(a) != image_fingerprint(b)

    def test_non_contiguous_input_ok(self):
        img = np.random.default_rng(1).random((8, 8, 4)).astype(np.float32)
        view = img[::2]
        assert image_fingerprint(view) == image_fingerprint(view.copy())
