"""Seed derivation and generator independence."""

import numpy as np

from repro.utils.rng import derive, spawn_rng


class TestDerive:
    def test_deterministic(self):
        assert derive(0, "a") == derive(0, "a")

    def test_label_changes_seed(self):
        assert derive(0, "a") != derive(0, "b")

    def test_parent_changes_seed(self):
        assert derive(0, "a") != derive(1, "a")

    def test_fits_32_bits(self):
        for seed in (0, 1, 2**31, 2**63 - 1):
            assert 0 <= derive(seed, "x") < 2**32

    def test_stable_across_processes(self):
        # regression pin: the derivation must never depend on hash()
        assert derive(0, "crawler") == derive(0, "crawler")
        assert isinstance(derive(42, "unicode-é"), int)


class TestSpawnRng:
    def test_same_seed_same_stream(self):
        a = spawn_rng(7, "x").random(5)
        b = spawn_rng(7, "x").random(5)
        assert np.allclose(a, b)

    def test_different_labels_different_streams(self):
        a = spawn_rng(7, "x").random(5)
        b = spawn_rng(7, "y").random(5)
        assert not np.allclose(a, b)

    def test_empty_label_uses_raw_seed(self):
        a = spawn_rng(7).random(3)
        b = np.random.default_rng(7).random(3)
        assert np.allclose(a, b)
