"""Training-corpus builder."""

import numpy as np

from repro.data.corpus import CorpusConfig, build_training_corpus
from repro.synth.languages import Language


class TestBuildTrainingCorpus:
    def test_size_and_balance(self):
        corpus = build_training_corpus(CorpusConfig(
            seed=0, num_ads=20, num_nonads=30, input_size=16,
        ))
        assert len(corpus) == 50
        assert corpus.num_ads == 20
        assert corpus.num_nonads == 30

    def test_tensor_shape_and_range(self):
        corpus = build_training_corpus(CorpusConfig(
            seed=0, num_ads=5, num_nonads=5, input_size=16,
        ))
        assert corpus.images.shape == (10, 4, 16, 16)
        # normalized to [-1, 1]
        assert corpus.images.min() >= -1.0 - 1e-6
        assert corpus.images.max() <= 1.0 + 1e-6

    def test_deterministic(self):
        config = CorpusConfig(seed=7, num_ads=6, num_nonads=6,
                              input_size=16)
        a = build_training_corpus(config)
        b = build_training_corpus(config)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_language_shift_applied(self):
        english = build_training_corpus(CorpusConfig(
            seed=1, num_ads=8, num_nonads=2, input_size=16,
            language=Language.ENGLISH,
        ))
        korean = build_training_corpus(CorpusConfig(
            seed=1, num_ads=8, num_nonads=2, input_size=16,
            language=Language.KOREAN,
        ))
        assert not np.array_equal(english.images, korean.images)

    def test_metadata_kinds(self):
        corpus = build_training_corpus(CorpusConfig(
            seed=0, num_ads=3, num_nonads=3, input_size=16,
        ))
        kinds = {m["kind"] for m in corpus.metadata}
        assert kinds == {"ad", "content"}
